//! R-tree error type.

use cpq_storage::{PageId, StorageError};
use std::fmt;

/// Result alias for R-tree operations.
pub type RTreeResult<T> = Result<T, RTreeError>;

/// Errors raised by R-tree operations.
#[derive(Debug)]
pub enum RTreeError {
    /// Failure in the underlying paged store.
    Storage(StorageError),
    /// A node page could not be decoded.
    CorruptNode {
        /// Page holding the node.
        page: PageId,
        /// Description of the defect.
        reason: String,
    },
    /// The tree parameters do not fit the page size.
    InvalidParams(String),
    /// Structural invariant violated (reported by the validator).
    InvariantViolation(String),
    /// A cooperative cancellation point observed a tripped token (deadline
    /// expiry or explicit cancel). Query drivers catch this to return the
    /// partial result accumulated so far; it never escapes the cancellable
    /// entry points.
    Cancelled,
}

impl fmt::Display for RTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RTreeError::Storage(e) => write!(f, "storage error: {e}"),
            RTreeError::CorruptNode { page, reason } => {
                write!(f, "corrupt node on {page}: {reason}")
            }
            RTreeError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            RTreeError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
            RTreeError::Cancelled => write!(f, "operation cancelled"),
        }
    }
}

impl std::error::Error for RTreeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RTreeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for RTreeError {
    fn from(e: StorageError) -> Self {
        RTreeError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RTreeError::CorruptNode {
            page: PageId(3),
            reason: "bad level".into(),
        };
        assert!(e.to_string().contains("PageId(3)"));
        let e: RTreeError = StorageError::PageOutOfBounds(PageId(1)).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
