//! Node entries: leaf entries hold data objects, inner entries hold child
//! pointers with MBRs and subtree cardinalities.

use cpq_geo::{Point, Rect, SpatialObject};
use cpq_storage::PageId;

/// An entry of a leaf node: one indexed spatial object (a [`Point`] by
/// default — the paper's setting — or any other [`SpatialObject`], e.g. a
/// [`Rect`] for extended objects).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafEntry<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// The indexed object.
    pub object: O,
    /// Opaque object identifier supplied by the application (e.g. row id).
    pub oid: u64,
}

impl<const D: usize, O: SpatialObject<D>> LeafEntry<D, O> {
    /// Creates a leaf entry.
    pub fn new(object: O, oid: u64) -> Self {
        LeafEntry { object, oid }
    }

    /// MBR of the object (degenerate for points).
    #[inline]
    pub fn mbr(&self) -> Rect<D> {
        self.object.mbr()
    }
}

impl<const D: usize> LeafEntry<D, Point<D>> {
    /// The indexed point (point-object trees only).
    #[inline]
    pub fn point(&self) -> Point<D> {
        self.object
    }
}

/// An entry of an inner node: child pointer, its MBR, and the number of data
/// objects stored in the child's subtree.
///
/// The cardinality is not part of the classical R*-tree; it is the aggregate
/// needed by the MAXMAXDIST-based K-closest-pair pruning bound (Section 3.8
/// of the paper, detailed in its technical-report companion) and costs four
/// bytes per entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InnerEntry<const D: usize> {
    /// Minimum bounding rectangle of the child's subtree.
    pub mbr: Rect<D>,
    /// Page of the child node.
    pub child: PageId,
    /// Number of data objects in the child's subtree.
    pub count: u64,
}

impl<const D: usize> InnerEntry<D> {
    /// Creates an inner entry.
    pub fn new(mbr: Rect<D>, child: PageId, count: u64) -> Self {
        InnerEntry { mbr, child, count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_entry_mbr_is_degenerate_for_points() {
        let e = LeafEntry::new(Point([1.0, 2.0]), 7);
        assert!(e.mbr().is_degenerate());
        assert!(e.mbr().contains_point(&Point([1.0, 2.0])));
        assert_eq!(e.point(), Point([1.0, 2.0]));
    }

    #[test]
    fn leaf_entry_with_rect_object() {
        let r = Rect::from_corners([0.0, 0.0], [2.0, 3.0]);
        let e: LeafEntry<2, Rect<2>> = LeafEntry::new(r, 9);
        assert_eq!(e.mbr(), r);
        assert_eq!(e.oid, 9);
    }
}
