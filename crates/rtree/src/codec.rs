//! Node ⟷ page serialization.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset 0   u8   node kind: 0 = leaf, 1 = inner
//! offset 1   u8   level (0 for leaves)
//! offset 2   u16  entry count
//! offset 4   entries …
//!
//! leaf entry   : object encoding (O::encoded_size()), u64 oid
//! inner entry  : 2·D × f64 MBR corners, u32 child, u32 count (16·D + 8 bytes)
//! ```
//!
//! Subtree cardinalities are stored as `u32` on disk (4 G objects per
//! subtree is far beyond any experiment here) and widened to `u64` in
//! memory.

use crate::entry::{InnerEntry, LeafEntry};
use crate::error::{RTreeError, RTreeResult};
use crate::node::Node;
use cpq_geo::{Rect, SpatialObject};
use cpq_storage::PageId;

const KIND_LEAF: u8 = 0;
const KIND_INNER: u8 = 1;
/// Bytes of fixed header per node page.
pub const NODE_HEADER_LEN: usize = 4;

/// Size in bytes of one serialized leaf entry holding an object of
/// `obj_size` encoded bytes.
pub const fn leaf_entry_size(obj_size: usize) -> usize {
    obj_size + 8
}

/// Size in bytes of one serialized inner entry.
pub const fn inner_entry_size(d: usize) -> usize {
    16 * d + 8
}

/// Encodes `node` into `buf` (a full page). Unused tail bytes are zeroed.
pub fn encode_node<const D: usize, O: SpatialObject<D>>(
    node: &Node<D, O>,
    buf: &mut [u8],
) -> RTreeResult<()> {
    buf.fill(0);
    let osz = O::encoded_size();
    let needed = NODE_HEADER_LEN
        + match node {
            Node::Leaf(es) => es.len() * leaf_entry_size(osz),
            Node::Inner { entries, .. } => entries.len() * inner_entry_size(D),
        };
    if needed > buf.len() {
        return Err(RTreeError::InvalidParams(format!(
            "node with {} entries needs {needed} bytes, page holds {}",
            node.len(),
            buf.len()
        )));
    }
    match node {
        Node::Leaf(es) => {
            buf[0] = KIND_LEAF;
            buf[1] = 0;
            buf[2..4].copy_from_slice(&(es.len() as u16).to_le_bytes());
            let mut off = NODE_HEADER_LEN;
            for e in es {
                e.object.encode(&mut buf[off..off + osz]);
                off += osz;
                buf[off..off + 8].copy_from_slice(&e.oid.to_le_bytes());
                off += 8;
            }
        }
        Node::Inner { level, entries } => {
            buf[0] = KIND_INNER;
            buf[1] = *level;
            buf[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
            let mut off = NODE_HEADER_LEN;
            for e in entries {
                for d in 0..D {
                    buf[off..off + 8].copy_from_slice(&e.mbr.lo().coord(d).to_le_bytes());
                    off += 8;
                }
                for d in 0..D {
                    buf[off..off + 8].copy_from_slice(&e.mbr.hi().coord(d).to_le_bytes());
                    off += 8;
                }
                buf[off..off + 4].copy_from_slice(&e.child.0.to_le_bytes());
                off += 4;
                let count: u32 = e.count.try_into().map_err(|_| {
                    RTreeError::InvalidParams(format!("subtree count {} exceeds u32", e.count))
                })?;
                buf[off..off + 4].copy_from_slice(&count.to_le_bytes());
                off += 4;
            }
        }
    }
    Ok(())
}

fn read_f64(buf: &[u8], off: usize) -> f64 {
    // analyze: allow(panic-path) — fixed 8-byte window; callers check the
    // page length, so the conversion cannot fail.
    f64::from_le_bytes(buf[off..off + 8].try_into().expect("8-byte slice"))
}

/// Decodes a node from the page `buf` that was read from `page`.
pub fn decode_node<const D: usize, O: SpatialObject<D>>(
    page: PageId,
    buf: &[u8],
) -> RTreeResult<Node<D, O>> {
    if buf.len() < NODE_HEADER_LEN {
        return Err(RTreeError::CorruptNode {
            page,
            reason: "page shorter than node header".into(),
        });
    }
    let kind = buf[0];
    let level = buf[1];
    // analyze: allow(panic-path) — fixed-width header field of a
    // length-checked page.
    let count = u16::from_le_bytes(buf[2..4].try_into().expect("2-byte slice")) as usize;
    match kind {
        KIND_LEAF => {
            if level != 0 {
                return Err(RTreeError::CorruptNode {
                    page,
                    reason: format!("leaf with nonzero level {level}"),
                });
            }
            let osz = O::encoded_size();
            let esz = leaf_entry_size(osz);
            if NODE_HEADER_LEN + count * esz > buf.len() {
                return Err(RTreeError::CorruptNode {
                    page,
                    reason: format!("leaf entry count {count} exceeds page"),
                });
            }
            let mut entries = Vec::with_capacity(count);
            let mut off = NODE_HEADER_LEN;
            for _ in 0..count {
                let object = O::decode(&buf[off..off + osz]);
                off += osz;
                // analyze: allow(panic-path) — fixed-width field of a length-checked
                // entry region.
                let oid = u64::from_le_bytes(buf[off..off + 8].try_into().expect("8-byte slice"));
                off += 8;
                entries.push(LeafEntry::new(object, oid));
            }
            Ok(Node::Leaf(entries))
        }
        KIND_INNER => {
            if level == 0 {
                return Err(RTreeError::CorruptNode {
                    page,
                    reason: "inner node with level 0".into(),
                });
            }
            let esz = inner_entry_size(D);
            if NODE_HEADER_LEN + count * esz > buf.len() {
                return Err(RTreeError::CorruptNode {
                    page,
                    reason: format!("inner entry count {count} exceeds page"),
                });
            }
            let mut entries = Vec::with_capacity(count);
            let mut off = NODE_HEADER_LEN;
            for _ in 0..count {
                let mut lo = [0.0; D];
                for c in lo.iter_mut() {
                    *c = read_f64(buf, off);
                    off += 8;
                }
                let mut hi = [0.0; D];
                for c in hi.iter_mut() {
                    *c = read_f64(buf, off);
                    off += 8;
                }
                let child = PageId(u32::from_le_bytes(
                    // analyze: allow(panic-path) — fixed-width field of a length-checked
                    // entry region.
                    buf[off..off + 4].try_into().expect("4-byte slice"),
                ));
                off += 4;
                // analyze: allow(panic-path) — fixed-width field of a length-checked
                // entry region.
                let cnt = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4-byte slice"));
                off += 4;
                if (0..D).any(|d| lo[d] > hi[d]) {
                    return Err(RTreeError::CorruptNode {
                        page,
                        reason: "inner entry MBR corners out of order".into(),
                    });
                }
                entries.push(InnerEntry::new(
                    Rect::from_corners(lo, hi),
                    child,
                    cnt as u64,
                ));
            }
            Ok(Node::Inner { level, entries })
        }
        other => Err(RTreeError::CorruptNode {
            page,
            reason: format!("unknown node kind {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_geo::Point;

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf(vec![
            LeafEntry::new(Point([1.5, -2.5]), 42),
            LeafEntry::new(Point([0.0, 7.25]), u64::MAX),
        ]);
        let mut buf = vec![0u8; 1024];
        encode_node(&node, &mut buf).unwrap();
        let back: Node<2> = decode_node(PageId(0), &buf).unwrap();
        assert_eq!(node, back);
    }

    #[test]
    fn rect_object_leaf_roundtrip() {
        let node: Node<2, Rect<2>> = Node::Leaf(vec![
            LeafEntry::new(Rect::from_corners([0.0, 0.0], [1.0, 2.0]), 1),
            LeafEntry::new(Rect::from_corners([-3.0, -4.0], [5.0, 6.0]), 2),
        ]);
        let mut buf = vec![0u8; 1024];
        encode_node(&node, &mut buf).unwrap();
        let back: Node<2, Rect<2>> = decode_node(PageId(0), &buf).unwrap();
        assert_eq!(node, back);
    }

    #[test]
    fn inner_roundtrip() {
        let node: Node<2> = Node::Inner {
            level: 3,
            entries: vec![
                InnerEntry::new(
                    Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
                    PageId(17),
                    12345,
                ),
                InnerEntry::new(Rect::from_corners([-5.0, -5.0], [5.0, 5.0]), PageId(99), 1),
            ],
        };
        let mut buf = vec![0u8; 1024];
        encode_node(&node, &mut buf).unwrap();
        let back: Node<2> = decode_node(PageId(0), &buf).unwrap();
        assert_eq!(node, back);
    }

    #[test]
    fn three_d_roundtrip() {
        let node: Node<3> = Node::Leaf(vec![LeafEntry::new(Point([1.0, 2.0, 3.0]), 5)]);
        let mut buf = vec![0u8; 256];
        encode_node(&node, &mut buf).unwrap();
        let back: Node<3> = decode_node(PageId(0), &buf).unwrap();
        assert_eq!(node, back);
    }

    #[test]
    fn oversized_node_rejected() {
        let node = Node::Leaf(vec![LeafEntry::new(Point([0.0, 0.0]), 0); 100]);
        let mut buf = vec![0u8; 64];
        assert!(encode_node(&node, &mut buf).is_err());
    }

    #[test]
    fn corrupt_pages_rejected() {
        // Unknown kind.
        let mut buf = vec![0u8; 64];
        buf[0] = 9;
        assert!(decode_node::<2, Point<2>>(PageId(0), &buf).is_err());
        // Leaf with nonzero level.
        buf[0] = 0;
        buf[1] = 2;
        assert!(decode_node::<2, Point<2>>(PageId(0), &buf).is_err());
        // Inner with level 0.
        buf[0] = 1;
        buf[1] = 0;
        assert!(decode_node::<2, Point<2>>(PageId(0), &buf).is_err());
        // Entry count beyond page.
        buf[0] = 0;
        buf[1] = 0;
        buf[2..4].copy_from_slice(&1000u16.to_le_bytes());
        assert!(decode_node::<2, Point<2>>(PageId(0), &buf).is_err());
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let node: Node<2> = Node::empty_leaf();
        let mut buf = vec![0u8; 64];
        encode_node(&node, &mut buf).unwrap();
        let back: Node<2> = decode_node(PageId(0), &buf).unwrap();
        assert_eq!(node, back);
    }
}
