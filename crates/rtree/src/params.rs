//! Tree parameters.

use crate::codec::{inner_entry_size, leaf_entry_size, NODE_HEADER_LEN};
use crate::error::{RTreeError, RTreeResult};

/// Which member of the R-tree family the tree behaves as.
///
/// The paper (Section 2.2) runs on R*-trees, "considered the most efficient
/// variant of the R-tree family"; the classic Guttman variants are provided
/// so that claim is testable — all variants share the same on-page layout
/// and search code, differing only in insertion heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Beckmann et al. 1990: overlap-minimizing `ChooseSubtree` at the leaf
    /// level, forced reinsertion, margin-driven split.
    #[default]
    RStar,
    /// Guttman 1984 quadratic: dead-area seed picking, greedy distribution.
    /// No forced reinsertion; `ChooseSubtree` by least enlargement.
    GuttmanQuadratic,
    /// Guttman 1984 linear: normalized-separation seed picking, arbitrary
    /// distribution. No forced reinsertion.
    GuttmanLinear,
}

impl SplitPolicy {
    /// All variants, for ablation sweeps.
    pub const ALL: [SplitPolicy; 3] = [
        SplitPolicy::RStar,
        SplitPolicy::GuttmanQuadratic,
        SplitPolicy::GuttmanLinear,
    ];

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SplitPolicy::RStar => "rstar",
            SplitPolicy::GuttmanQuadratic => "quadratic",
            SplitPolicy::GuttmanLinear => "linear",
        }
    }
}

/// R-tree shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum entries per node, `M`.
    pub max_entries: usize,
    /// Minimum entries per node (except the root), `m`.
    pub min_entries: usize,
    /// Entries removed by forced reinsertion on overflow, `p`
    /// (Beckmann et al. recommend 30 % of `M`). Ignored by the Guttman
    /// variants, which never reinsert.
    pub reinsert_count: usize,
    /// Insertion/split heuristics: R* (the paper's choice) or a Guttman
    /// variant.
    pub split_policy: SplitPolicy,
}

impl RTreeParams {
    /// The paper's experimental configuration: 1 KiB pages give `M = 21`,
    /// `m = M/3 = 7` ("a reasonable choice according to \[1\]"), `p = 30 % · M`.
    pub fn paper() -> Self {
        RTreeParams {
            max_entries: 21,
            min_entries: 7,
            reinsert_count: 6,
            split_policy: SplitPolicy::RStar,
        }
    }

    /// Parameters with a given `M` and the paper's ratios `m = M/3`,
    /// `p = 30 % · M` (at least 1 each).
    pub fn with_max_entries(max_entries: usize) -> Self {
        RTreeParams {
            max_entries,
            min_entries: (max_entries / 3).max(1),
            reinsert_count: (max_entries * 3 / 10).max(1),
            split_policy: SplitPolicy::default(),
        }
    }

    /// Largest `M` such that both a leaf and an inner node with `M` entries
    /// fit a page of `page_size` bytes in `D` dimensions for **point**
    /// objects, with the paper's ratios for `m` and `p`.
    pub fn for_page_size(page_size: usize, d: usize) -> Self {
        Self::for_page_size_with(page_size, d, 8 * d)
    }

    /// Like [`for_page_size`](Self::for_page_size) but for leaf objects of
    /// `obj_size` encoded bytes (e.g. `16·D` for rectangle objects).
    pub fn for_page_size_with(page_size: usize, d: usize, obj_size: usize) -> Self {
        let per_entry = leaf_entry_size(obj_size).max(inner_entry_size(d));
        let m = (page_size.saturating_sub(NODE_HEADER_LEN)) / per_entry;
        Self::with_max_entries(m.max(2))
    }

    /// Checks internal consistency and that `M` **point** entries fit
    /// `page_size`.
    pub fn validate(&self, page_size: usize, d: usize) -> RTreeResult<()> {
        self.validate_with(page_size, d, 8 * d)
    }

    /// Checks internal consistency and that `M` entries of leaf objects with
    /// `obj_size` encoded bytes fit `page_size`.
    pub fn validate_with(&self, page_size: usize, d: usize, obj_size: usize) -> RTreeResult<()> {
        if self.max_entries < 2 {
            return Err(RTreeError::InvalidParams("M must be at least 2".into()));
        }
        if self.min_entries < 1 || self.min_entries * 2 > self.max_entries {
            return Err(RTreeError::InvalidParams(format!(
                "m = {} must satisfy 1 <= m <= M/2 = {}",
                self.min_entries,
                self.max_entries / 2
            )));
        }
        if self.reinsert_count == 0 || self.reinsert_count > self.max_entries - self.min_entries {
            return Err(RTreeError::InvalidParams(format!(
                "p = {} must satisfy 1 <= p <= M - m = {}",
                self.reinsert_count,
                self.max_entries - self.min_entries
            )));
        }
        let per_entry = leaf_entry_size(obj_size).max(inner_entry_size(d));
        let needed = NODE_HEADER_LEN + self.max_entries * per_entry;
        if needed > page_size {
            return Err(RTreeError::InvalidParams(format!(
                "M = {} needs {needed} bytes per page, page size is {page_size}",
                self.max_entries
            )));
        }
        Ok(())
    }
}

impl Default for RTreeParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_fit_1k_pages() {
        let p = RTreeParams::paper();
        assert_eq!(p.max_entries, 21);
        assert_eq!(p.min_entries, 7);
        p.validate(1024, 2).unwrap();
    }

    #[test]
    fn derived_params_fit_their_page() {
        for (ps, d) in [(512, 2), (1024, 2), (4096, 2), (1024, 3), (8192, 4)] {
            let p = RTreeParams::for_page_size(ps, d);
            p.validate(ps, d)
                .unwrap_or_else(|e| panic!("page {ps} d {d}: {e}"));
            // Maximality: M+1 must not fit.
            let bigger = RTreeParams::with_max_entries(p.max_entries + 1);
            assert!(
                bigger.validate(ps, d).is_err(),
                "page {ps} d {d} not maximal"
            );
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(RTreeParams {
            max_entries: 1,
            min_entries: 1,
            reinsert_count: 1,
            split_policy: SplitPolicy::RStar
        }
        .validate(1024, 2)
        .is_err());
        assert!(RTreeParams {
            max_entries: 10,
            min_entries: 6,
            reinsert_count: 3,
            split_policy: SplitPolicy::RStar
        }
        .validate(1024, 2)
        .is_err());
        assert!(RTreeParams {
            max_entries: 10,
            min_entries: 3,
            reinsert_count: 0,
            split_policy: SplitPolicy::RStar
        }
        .validate(1024, 2)
        .is_err());
        assert!(RTreeParams {
            max_entries: 10,
            min_entries: 3,
            reinsert_count: 8,
            split_policy: SplitPolicy::RStar
        }
        .validate(1024, 2)
        .is_err());
        // Page too small.
        assert!(RTreeParams::paper().validate(128, 2).is_err());
    }
}
