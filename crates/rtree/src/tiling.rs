//! Sort-Tile-Recursive partitioning, shared by the bulk loader and the
//! shard planner.
//!
//! Two layers live here:
//!
//! * The crate-internal tiling primitives ([`Tileable`], [`chunk_balanced`],
//!   [`tile`]) that [`RTree::bulk_load`](crate::RTree::bulk_load) packs
//!   nodes with.
//! * The public [`StrTiling`]: a *recorded* STR partition of a point set
//!   into `S` spatial tiles. Unlike the bulk loader — which only needs the
//!   grouped output — the shard planner must later route arbitrary points
//!   (and rectangles) to tiles, so the tiling keeps the recursive cut tree
//!   and exposes a total assignment function [`StrTiling::tile_of`].
//!
//! The assignment rule is exact and deterministic: at a cut value `c` along
//! dimension `d`, points with `coord(d) < c` go left and points with
//! `coord(d) >= c` go right — the same rule the builder partitions with, so
//! build-time grouping and query-time assignment can never disagree.

use cpq_geo::{Point, Rect, SpatialObject};

use crate::entry::{InnerEntry, LeafEntry};

/// Items that can be tiled: data points and already-built subtree entries.
pub(crate) trait Tileable<const D: usize>: Clone {
    fn key(&self, dim: usize) -> f64;
}

impl<const D: usize, O: SpatialObject<D>> Tileable<D> for LeafEntry<D, O> {
    fn key(&self, dim: usize) -> f64 {
        self.mbr().center().coord(dim)
    }
}

impl<const D: usize> Tileable<D> for InnerEntry<D> {
    fn key(&self, dim: usize) -> f64 {
        self.mbr.center().coord(dim)
    }
}

fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Splits `items` into consecutive chunks of roughly `target` items, merging
/// or rebalancing the tail so no chunk falls below `min` (chunks may exceed
/// `target` up to `max` to absorb a short tail).
pub(crate) fn chunk_balanced<T>(
    mut rest: Vec<T>,
    target: usize,
    min: usize,
    max: usize,
) -> Vec<Vec<T>> {
    debug_assert!(min <= target && target <= max);
    let mut out = Vec::new();
    while !rest.is_empty() {
        let mut take = target.min(rest.len());
        let rem = rest.len() - take;
        if rem > 0 && rem < min {
            if take + rem <= max {
                take += rem; // absorb the short tail
            } else {
                take = rest.len() - min; // leave a minimal valid tail
            }
        }
        let tail = rest.split_off(take);
        out.push(rest);
        rest = tail;
    }
    out
}

/// Recursively tiles `items` into groups of `min..=max` items (targeting
/// `cap` per group), preserving spatial locality along every dimension.
pub(crate) fn tile<const D: usize, T: Tileable<D>>(
    mut items: Vec<T>,
    cap: usize,
    min: usize,
    max: usize,
    dim: usize,
    out: &mut Vec<Vec<T>>,
) {
    if items.len() <= max {
        // Either the top-level call on a tiny dataset (a lone root may be
        // under-full) or a slab already no bigger than one node.
        if !items.is_empty() {
            out.push(items);
        }
        return;
    }
    items.sort_by(|a, b| a.key(dim).total_cmp(&b.key(dim)));
    if dim == D - 1 {
        out.extend(chunk_balanced(items, cap, min, max));
        return;
    }
    // Number of tiles needed overall, spread across the remaining dims.
    let tiles = ceil_div(items.len(), cap);
    let dims_left = (D - dim) as f64;
    let slabs = (tiles as f64).powf(1.0 / dims_left).ceil() as usize;
    let per_slab = ceil_div(items.len(), slabs.max(1)).max(min);
    for slab in chunk_balanced(items, per_slab, min, usize::MAX) {
        tile(slab, cap, min, max, dim + 1, out);
    }
}

/// One node of the recorded cut tree.
enum TileNode {
    /// A finished tile, identified by its dense index in `0..tiles`.
    Leaf(u32),
    /// An axis-aligned split: `cuts` is strictly increasing; child `i`
    /// covers coordinates in `[cuts[i-1], cuts[i])` along `dim` (the first
    /// and last children are open toward the workspace boundary).
    Split {
        dim: usize,
        cuts: Vec<f64>,
        children: Vec<TileNode>,
    },
}

/// A recorded STR partition of a point set into spatial tiles.
///
/// Built once from the data with [`StrTiling::build`]; afterwards
/// [`StrTiling::tile_of`] assigns *any* point of the space to exactly one
/// tile (the partition is total: tiles jointly cover all of `R^D`, and
/// [`StrTiling::tile_rects`] reports their restriction to the dataset MBR).
///
/// The tile count actually produced may be lower than requested when the
/// data cannot support that many distinct cuts (duplicate coordinates,
/// tiny inputs); it is never higher.
pub struct StrTiling<const D: usize> {
    root: TileNode,
    mbr: Option<Rect<D>>,
    tiles: usize,
}

impl<const D: usize> StrTiling<D> {
    /// Partitions `points` into (at most) `tiles` spatial tiles by
    /// sort-tile-recursive cuts: slabs along dimension 0, each slab cut
    /// again along dimension 1, and so on — the same sweep order the bulk
    /// loader packs nodes with.
    pub fn build(points: &[Point<D>], tiles: usize) -> Self {
        let budget = tiles.max(1);
        let mbr = Rect::bounding(points.iter().copied());
        let mut pts = points.to_vec();
        let mut next = 0u32;
        let root = Self::split_node(&mut pts, 0, budget, &mut next);
        StrTiling {
            root,
            mbr,
            tiles: next as usize,
        }
    }

    fn split_node(points: &mut [Point<D>], dim: usize, budget: usize, next: &mut u32) -> TileNode {
        if budget <= 1 || points.len() <= 1 || dim >= D {
            let id = *next;
            *next += 1;
            return TileNode::Leaf(id);
        }
        points.sort_by(|a, b| a.coord(dim).total_cmp(&b.coord(dim)));
        let n = points.len();
        let dims_left = D - dim;
        let slabs = if dims_left <= 1 {
            budget
        } else {
            ((budget as f64).powf(1.0 / dims_left as f64).ceil() as usize).clamp(1, budget)
        };
        // Budget split across slabs, heavier slabs first.
        let base = budget / slabs;
        let rem = budget % slabs;
        // Choose cut values at budget-proportional sorted positions, then
        // snap each to the *first* occurrence of its value so the grouping
        // below agrees exactly with the `coord >= cut` assignment rule.
        // Degenerate cuts (empty side, duplicate value) are dropped and
        // their budget merges into the following slab.
        let mut cuts: Vec<f64> = Vec::new();
        let mut bounds: Vec<usize> = Vec::new();
        let mut budgets: Vec<usize> = Vec::new();
        let mut cum = 0usize;
        let mut pending = 0usize;
        let mut prev = 0usize;
        for i in 0..slabs {
            let share = base + usize::from(i < rem);
            pending += share;
            cum += share;
            if i + 1 == slabs {
                break;
            }
            let idx = (n * cum) / budget;
            if idx == 0 || idx >= n {
                continue;
            }
            let cut = points[idx].coord(dim);
            let split_at = points.partition_point(|p| p.coord(dim) < cut);
            if split_at <= prev || split_at >= n {
                continue;
            }
            cuts.push(cut);
            bounds.push(split_at);
            budgets.push(pending);
            pending = 0;
            prev = split_at;
        }
        budgets.push(pending);
        if cuts.is_empty() {
            // No usable cut along this dimension (all coordinates equal):
            // spend the whole budget on the remaining dimensions.
            if dim + 1 < D {
                return Self::split_node(points, dim + 1, budget, next);
            }
            let id = *next;
            *next += 1;
            return TileNode::Leaf(id);
        }
        let mut children = Vec::with_capacity(bounds.len() + 1);
        let mut rest = points;
        let mut consumed = 0usize;
        for (i, &b) in bounds.iter().enumerate() {
            let (seg, tail) = rest.split_at_mut(b - consumed);
            consumed = b;
            rest = tail;
            children.push(Self::split_node(seg, dim + 1, budgets[i], next));
        }
        // analyze: allow(panic-path) — budgets has exactly bounds.len() + 1 entries.
        let last_budget = *budgets.last().expect("last slab budget");
        children.push(Self::split_node(rest, dim + 1, last_budget, next));
        TileNode::Split {
            dim,
            cuts,
            children,
        }
    }

    /// Number of tiles actually produced (`1..=` the requested count).
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// MBR of the points the tiling was built from (`None` for an empty
    /// input).
    pub fn mbr(&self) -> Option<Rect<D>> {
        self.mbr
    }

    /// Assigns a point to its tile. Total over all of `R^D`: every point —
    /// in the build set or not — lands in exactly one tile.
    pub fn tile_of(&self, p: &Point<D>) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                TileNode::Leaf(id) => return *id as usize,
                TileNode::Split {
                    dim,
                    cuts,
                    children,
                } => {
                    let c = p.coord(*dim);
                    let i = cuts.partition_point(|&cut| c >= cut);
                    node = &children[i];
                }
            }
        }
    }

    /// The tiles' rectangles, restricted to the dataset MBR, indexed by
    /// tile id. Pairwise interior-disjoint; their union is exactly the MBR.
    /// Empty for an empty build set.
    pub fn tile_rects(&self) -> Vec<Rect<D>> {
        let Some(mbr) = self.mbr else {
            return Vec::new();
        };
        let mut out: Vec<(u32, Rect<D>)> = Vec::new();
        Self::collect_rects(&self.root, mbr, &mut out);
        out.sort_by_key(|&(id, _)| id);
        out.into_iter().map(|(_, r)| r).collect()
    }

    fn collect_rects(node: &TileNode, current: Rect<D>, out: &mut Vec<(u32, Rect<D>)>) {
        match node {
            TileNode::Leaf(id) => out.push((*id, current)),
            TileNode::Split {
                dim,
                cuts,
                children,
            } => {
                for (i, child) in children.iter().enumerate() {
                    let lo_d = if i == 0 {
                        current.lo().coord(*dim)
                    } else {
                        cuts[i - 1]
                    };
                    let hi_d = if i == cuts.len() {
                        current.hi().coord(*dim)
                    } else {
                        cuts[i]
                    };
                    let mut lo = *current.lo().coords();
                    let mut hi = *current.hi().coords();
                    lo[*dim] = lo_d;
                    hi[*dim] = hi_d;
                    Self::collect_rects(child, Rect::from_corners(lo, hi), out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_geo::Point2;

    /// Deterministic pseudo-random points (splitmix64 over the unit square
    /// scaled to the workspace) — no RNG dependency needed here.
    fn gen_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        (0..n)
            .map(|_| Point::new([next() * 1000.0, next() * 1000.0]))
            .collect()
    }

    #[test]
    fn every_point_lands_in_exactly_one_tile_and_tiles_cover_the_mbr() {
        for &(n, s) in &[(1usize, 4usize), (57, 2), (500, 4), (2000, 8), (999, 7)] {
            let pts = gen_points(n, n as u64);
            let tiling = StrTiling::build(&pts, s);
            assert!(tiling.tiles() >= 1 && tiling.tiles() <= s, "tile count");
            let rects = tiling.tile_rects();
            assert_eq!(rects.len(), tiling.tiles());
            let mbr = tiling.mbr().expect("non-empty input");
            let mut counts = vec![0usize; tiling.tiles()];
            for p in &pts {
                // `tile_of` is a total function, so "exactly one tile" holds
                // by construction; check the assignment is *consistent*:
                // the point sits inside its tile's rectangle.
                let t = tiling.tile_of(p);
                counts[t] += 1;
                assert!(
                    rects[t].contains_point(p),
                    "point {p:?} assigned to tile {t} but outside its rect"
                );
                // And in no *other* tile's interior-exclusive rect per the
                // assignment rule: tile_of is deterministic, so re-asking
                // gives the same answer.
                assert_eq!(tiling.tile_of(p), t);
            }
            // Tiles cover the dataset MBR: rect areas sum to the MBR area
            // (they are interior-disjoint slices of it by construction).
            let area = |r: &Rect<2>| {
                (r.hi().coord(0) - r.lo().coord(0)) * (r.hi().coord(1) - r.lo().coord(1))
            };
            let total: f64 = rects.iter().map(area).sum();
            let want = area(&mbr);
            assert!(
                (total - want).abs() <= want.abs() * 1e-9 + 1e-9,
                "tile rects cover {total}, MBR is {want}"
            );
            for (t, &c) in counts.iter().enumerate() {
                assert!(c > 0, "tile {t} is empty");
            }
        }
    }

    #[test]
    fn duplicate_coordinates_collapse_tiles_instead_of_splitting_on_ties() {
        // All points identical: only one tile can exist, and assignment
        // still works for arbitrary probes.
        let pts = vec![Point::new([5.0, 5.0]); 64];
        let tiling = StrTiling::build(&pts, 8);
        assert_eq!(tiling.tiles(), 1);
        assert_eq!(tiling.tile_of(&Point::new([5.0, 5.0])), 0);
        assert_eq!(tiling.tile_of(&Point::new([-100.0, 300.0])), 0);

        // One column of x-ties: x yields no cut, y still partitions.
        let pts: Vec<Point2> = (0..100).map(|i| Point::new([1.0, i as f64])).collect();
        let tiling = StrTiling::build(&pts, 4);
        assert!(tiling.tiles() > 1, "y cuts should still apply");
        let rects = tiling.tile_rects();
        for p in &pts {
            assert!(rects[tiling.tile_of(p)].contains_point(p));
        }
    }

    #[test]
    fn assignment_is_total_for_points_outside_the_build_set() {
        let pts = gen_points(800, 99);
        let tiling = StrTiling::build(&pts, 8);
        let probes = gen_points(500, 7);
        for p in probes {
            let t = tiling.tile_of(&p);
            assert!(t < tiling.tiles());
        }
        // Points far outside the workspace still route somewhere.
        assert!(tiling.tile_of(&Point::new([-1e9, 1e9])) < tiling.tiles());
    }

    #[test]
    fn tiles_are_roughly_balanced_on_uniform_data() {
        let pts = gen_points(4000, 11);
        let tiling = StrTiling::build(&pts, 8);
        assert_eq!(tiling.tiles(), 8);
        let mut counts = vec![0usize; 8];
        for p in &pts {
            counts[tiling.tile_of(p)] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(
            max <= min * 3,
            "uniform data should tile roughly evenly: {counts:?}"
        );
    }
}
