//! Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al. 1997).
//!
//! The paper builds its R*-trees by repeated insertion; STR is provided for
//! callers that need to construct large trees quickly (e.g. ablation benches
//! comparing insertion-built vs packed trees). Packing sorts points by the
//! first coordinate, tiles them into slabs, recursively tiles each slab along
//! the remaining dimensions, and packs each tile into one leaf; upper levels
//! pack the resulting entries the same way by MBR center.

use crate::entry::{InnerEntry, LeafEntry};
use crate::error::RTreeResult;
use crate::node::Node;
use crate::params::RTreeParams;
use crate::tiling::tile;
use crate::tree::RTree;
use cpq_geo::SpatialObject;
use cpq_storage::BufferPool;

impl<const D: usize, O: SpatialObject<D>> RTree<D, O> {
    /// Builds a tree over `pool` by STR packing.
    ///
    /// `fill` in `(0, 1]` is the target node occupancy (e.g. `0.7` mimics
    /// the steady-state occupancy of insertion-built trees; `1.0` packs
    /// maximally). Nodes always satisfy the tree's `min_entries` bound
    /// except a lone root.
    pub fn bulk_load(
        pool: BufferPool,
        params: RTreeParams,
        objects: &[(O, u64)],
        fill: f64,
    ) -> RTreeResult<Self> {
        assert!(
            (0.0..=1.0).contains(&fill) && fill > 0.0,
            "fill must be in (0, 1]"
        );
        let mut tree = RTree::new(pool, params)?;
        if objects.is_empty() {
            return Ok(tree);
        }
        let cap = ((params.max_entries as f64 * fill).floor() as usize)
            .clamp(params.min_entries.max(1), params.max_entries);

        // Leaf level.
        let leaf_items: Vec<LeafEntry<D, O>> = objects
            .iter()
            .map(|&(o, oid)| LeafEntry::new(o, oid))
            .collect();
        let mut tiles: Vec<Vec<LeafEntry<D, O>>> = Vec::new();
        tile(
            leaf_items,
            cap,
            params.min_entries,
            params.max_entries,
            0,
            &mut tiles,
        );
        let mut entries: Vec<InnerEntry<D>> = Vec::with_capacity(tiles.len());
        for group in tiles {
            let node = Node::Leaf(group);
            let id = tree.alloc_write(&node)?;
            entries.push(InnerEntry::new(
                // analyze: allow(panic-path) — tiles are non-empty chunks of a
                // non-empty input.
                node.mbr().expect("non-empty tile"),
                id,
                node.subtree_count(),
            ));
        }
        let mut height = 1u8;

        // Upper levels until a single entry remains.
        while entries.len() > 1 {
            let mut tiles: Vec<Vec<InnerEntry<D>>> = Vec::new();
            tile(
                entries,
                cap,
                params.min_entries,
                params.max_entries,
                0,
                &mut tiles,
            );
            let mut next: Vec<InnerEntry<D>> = Vec::with_capacity(tiles.len());
            for group in tiles {
                let node = Node::Inner {
                    level: height,
                    entries: group,
                };
                let id = tree.alloc_write(&node)?;
                next.push(InnerEntry::new(
                    // analyze: allow(panic-path) — tiles are non-empty chunks of a
                    // non-empty input.
                    node.mbr().expect("non-empty tile"),
                    id,
                    node.subtree_count(),
                ));
            }
            entries = next;
            height += 1;
        }

        // analyze: allow(panic-path) — the packing loop terminates with
        // exactly one root entry.
        let root_entry = entries.pop().expect("at least one entry");
        tree.set_descriptor_after_bulk(root_entry.child, height, objects.len() as u64);
        Ok(tree)
    }
}
