//! The R*-tree proper: construction, insertion, deletion.

use crate::codec::{decode_node, encode_node};
use crate::entry::{InnerEntry, LeafEntry};
use crate::error::{RTreeError, RTreeResult};
use crate::node::Node;
use crate::params::RTreeParams;
use crate::params::SplitPolicy;
use crate::split::{linear_split, quadratic_split, rstar_split};
use cpq_geo::{Point, Rect, SpatialObject};
use cpq_storage::{BufferPool, PageId};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Either kind of entry, used by forced reinsertion and orphan handling,
/// which move both data objects (level 0) and whole subtrees (level ≥ 1).
#[derive(Debug, Clone, Copy)]
pub(crate) enum AnyEntry<const D: usize, O: SpatialObject<D>> {
    /// A data object destined for a leaf.
    Leaf(LeafEntry<D, O>),
    /// A subtree pointer destined for an inner node.
    Inner(InnerEntry<D>),
}

impl<const D: usize, O: SpatialObject<D>> AnyEntry<D, O> {
    pub(crate) fn mbr(&self) -> Rect<D> {
        match self {
            AnyEntry::Leaf(e) => e.mbr(),
            AnyEntry::Inner(e) => e.mbr,
        }
    }
}

/// An R*-tree storing `D`-dimensional spatial objects in a paged buffer
/// pool. The default object is a [`Point`] (the paper's setting); extended
/// objects like [`Rect`] work the same way with MBR distance semantics.
///
/// Levels count from the leaves: leaves are level 0 and the root is the
/// single node at level `height - 1`. Every node occupies one page; node
/// fetches go through the pool, so the pool's miss counter is exactly the
/// paper's "disk accesses" metric.
pub struct RTree<const D: usize, O: SpatialObject<D> = Point<D>> {
    pool: Arc<BufferPool>,
    params: RTreeParams,
    root: PageId,
    height: u8,
    len: u64,
    cow: Option<CowState>,
    _object: std::marker::PhantomData<O>,
}

/// Copy-on-write bookkeeping for one uncommitted update batch.
///
/// While active, every node write to a page that predates the batch is
/// redirected to a freshly allocated page (the old page is *retired*, not
/// freed), so pages reachable from any previously published root are never
/// overwritten in place. Pages allocated within the batch stay writable in
/// place; a fresh page freed within the same batch is released immediately
/// since no snapshot can reference it.
#[derive(Debug, Default)]
struct CowState {
    /// Pages allocated during the current batch (writable in place).
    fresh: HashSet<PageId>,
    /// Fresh pages in allocation order, for WAL / publication accounting.
    allocated: Vec<PageId>,
    /// Pre-batch pages superseded or logically freed by the batch; they
    /// stay allocated until the caller decides no snapshot needs them.
    retired: Vec<PageId>,
}

/// The page-level delta of one copy-on-write batch, drained by
/// [`RTree::cow_take`]: which pages the batch allocated (and therefore
/// wrote) and which pre-batch pages it retired.
#[derive(Debug, Default, Clone)]
pub struct CowDelta {
    /// Pages allocated and written by the batch, in allocation order.
    pub allocated: Vec<PageId>,
    /// Pre-batch pages the batch stopped referencing. The caller owns
    /// freeing them once no reader snapshot can still reach them.
    pub retired: Vec<PageId>,
}

impl CowDelta {
    /// `true` when the batch touched no pages.
    pub fn is_empty(&self) -> bool {
        self.allocated.is_empty() && self.retired.is_empty()
    }
}

impl<const D: usize, O: SpatialObject<D>> RTree<D, O> {
    /// Creates an empty tree over `pool`.
    pub fn new(pool: BufferPool, params: RTreeParams) -> RTreeResult<Self> {
        Self::new_shared(Arc::new(pool), params)
    }

    /// Creates an empty tree over a pool shared with other trees (the
    /// live-update path hands the same pool to a writer and to per-epoch
    /// snapshot readers).
    pub fn new_shared(pool: Arc<BufferPool>, params: RTreeParams) -> RTreeResult<Self> {
        params.validate_with(pool.page_size(), D, O::encoded_size())?;
        Ok(RTree {
            pool,
            params,
            root: PageId::INVALID,
            height: 0,
            len: 0,
            cow: None,
            _object: std::marker::PhantomData,
        })
    }

    /// Re-attaches a tree whose pages already live in `pool` (e.g. after
    /// reopening a [`DiskPageFile`](cpq_storage::DiskPageFile)); the caller
    /// supplies the descriptor returned by [`descriptor`](Self::descriptor).
    pub fn from_descriptor(
        pool: BufferPool,
        params: RTreeParams,
        descriptor: (PageId, u8, u64),
    ) -> RTreeResult<Self> {
        Self::from_descriptor_shared(Arc::new(pool), params, descriptor)
    }

    /// [`from_descriptor`](Self::from_descriptor) over a shared pool: this
    /// is how epoch snapshots are materialized — a published `(root,
    /// height, len)` descriptor plus the writer's pool yields a read-only
    /// view whose pages copy-on-write updates never touch.
    pub fn from_descriptor_shared(
        pool: Arc<BufferPool>,
        params: RTreeParams,
        descriptor: (PageId, u8, u64),
    ) -> RTreeResult<Self> {
        params.validate_with(pool.page_size(), D, O::encoded_size())?;
        let (root, height, len) = descriptor;
        Ok(RTree {
            pool,
            params,
            root,
            height,
            len,
            cow: None,
            _object: std::marker::PhantomData,
        })
    }

    /// `(root page, height, object count)` — enough to re-attach the tree.
    pub fn descriptor(&self) -> (PageId, u8, u64) {
        (self.root, self.height, self.len)
    }

    /// Number of indexed objects.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the tree holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 when empty; 1 when the root is a leaf).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Root page id ([`PageId::INVALID`] when empty).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Tree parameters.
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    /// The buffer pool backing the tree (for statistics and configuration).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// A shareable handle to the backing pool, for attaching snapshot
    /// readers via [`from_descriptor_shared`](Self::from_descriptor_shared).
    pub fn pool_shared(&self) -> Arc<BufferPool> {
        Arc::clone(&self.pool)
    }

    /// Enters copy-on-write mode: from now on, updates never overwrite a
    /// page that existed before the current batch — modified nodes move to
    /// fresh pages and the superseded ones are *retired* (kept allocated)
    /// so concurrently published snapshots stay readable. Idempotent.
    pub fn cow_enable(&mut self) {
        if self.cow.is_none() {
            self.cow = Some(CowState::default());
        }
    }

    /// `true` when copy-on-write mode is active.
    pub fn cow_enabled(&self) -> bool {
        self.cow.is_some()
    }

    /// Drains the current copy-on-write batch and starts the next one.
    /// Pages allocated by the drained batch become protected again: the
    /// caller is expected to publish the new descriptor, making them
    /// reachable from a snapshot. Panics outside COW mode (a programming
    /// error, not a data error).
    pub fn cow_take(&mut self) -> CowDelta {
        // analyze: allow(panic-path) — cow_take outside cow_enable is a caller
        // bug; the live layer always pairs them.
        let state = self.cow.as_mut().expect("cow_take without cow_enable");
        let delta = CowDelta {
            allocated: std::mem::take(&mut state.allocated),
            retired: std::mem::take(&mut state.retired),
        };
        state.fresh.clear();
        delta
    }

    /// Reads and decodes a node. Counts one logical page read.
    pub fn read_node(&self, id: PageId) -> RTreeResult<Node<D, O>> {
        let bytes = self.pool.read_page(id)?;
        decode_node(id, &bytes)
    }

    /// Reads and decodes several nodes through one batched pool fetch
    /// ([`BufferPool::get_many`]): the pool classifies hits/misses in one
    /// pass and serves all miss I/O under a single shared file guard, so
    /// concurrent callers (the parallel K-CPQ executor's prefetch workers)
    /// overlap their physical reads instead of serializing per page.
    pub fn read_nodes(&self, ids: &[PageId]) -> RTreeResult<Vec<Node<D, O>>> {
        let pages = self.pool.get_many(ids)?;
        ids.iter()
            .zip(pages.iter())
            .map(|(&id, bytes)| decode_node(id, bytes))
            .collect()
    }

    /// Hints that these node pages will likely be read soon. On a pool
    /// backed by the I/O scheduler the pages are fetched at low priority
    /// in idle disk gaps so a later [`read_node`](Self::read_node) finds
    /// them ready; on a plain pool this is a no-op. Never moves the
    /// logical read/hit/miss counters — the paper's disk-access metric
    /// only sees demand traffic.
    pub fn prefetch(&self, ids: &[PageId]) {
        self.pool.prefetch(ids);
    }

    /// MBR of the whole tree (reads the root page), or `None` when empty.
    pub fn root_mbr(&self) -> RTreeResult<Option<Rect<D>>> {
        if !self.root.is_valid() {
            return Ok(None);
        }
        Ok(self.read_node(self.root)?.mbr())
    }

    pub(crate) fn write_node(&self, id: PageId, node: &Node<D, O>) -> RTreeResult<()> {
        let mut buf = vec![0u8; self.pool.page_size()];
        encode_node(node, &mut buf)?;
        self.pool.write_page(id, &buf)?;
        Ok(())
    }

    /// Writes `node` "at" `id`, honoring copy-on-write: outside COW mode
    /// (or when `id` is fresh within the current batch) this is an
    /// in-place write returning `id`; otherwise the node lands on a fresh
    /// page, `id` is retired, and the new id is returned for the caller to
    /// thread into the parent entry.
    fn place_node(&mut self, id: PageId, node: &Node<D, O>) -> RTreeResult<PageId> {
        let redirect = match &self.cow {
            Some(state) => !state.fresh.contains(&id),
            None => false,
        };
        if redirect {
            let new_id = self.alloc_write(node)?;
            if let Some(state) = self.cow.as_mut() {
                state.retired.push(id);
            }
            Ok(new_id)
        } else {
            self.write_node(id, node)?;
            Ok(id)
        }
    }

    pub(crate) fn alloc_write(&mut self, node: &Node<D, O>) -> RTreeResult<PageId> {
        let id = self.pool.allocate()?;
        self.write_node(id, node)?;
        if let Some(state) = self.cow.as_mut() {
            state.fresh.insert(id);
            state.allocated.push(id);
        }
        Ok(id)
    }

    /// Releases a node page, honoring copy-on-write: a pre-batch page is
    /// retired (snapshots may still read it), while a page fresh within
    /// the current batch — invisible to every snapshot — is freed
    /// immediately and dropped from the batch delta.
    fn free_or_retire(&mut self, id: PageId) -> RTreeResult<()> {
        match self.cow.as_mut() {
            Some(state) => {
                if state.fresh.remove(&id) {
                    state.allocated.retain(|&p| p != id);
                    self.pool.free_page(id)?;
                } else {
                    state.retired.push(id);
                }
                Ok(())
            }
            None => Ok(self.pool.free_page(id)?),
        }
    }

    /// Installs the root descriptor after a bulk load.
    pub(crate) fn set_descriptor_after_bulk(&mut self, root: PageId, height: u8, len: u64) {
        self.root = root;
        self.height = height;
        self.len = len;
    }

    fn entry_for(&self, id: PageId, node: &Node<D, O>) -> InnerEntry<D> {
        InnerEntry::new(
            // analyze: allow(panic-path) — entry_for links only freshly written
            // non-empty nodes.
            node.mbr().expect("entry_for on empty node"),
            id,
            node.subtree_count(),
        )
    }

    /// Inserts an object with an application object id.
    ///
    /// Duplicate objects (same geometry, same or different oid) are
    /// allowed, like in the paper's uniform datasets.
    pub fn insert(&mut self, object: O, oid: u64) -> RTreeResult<()> {
        if !object.is_finite() {
            return Err(RTreeError::InvalidParams(
                "cannot index a non-finite object".into(),
            ));
        }
        if !self.root.is_valid() {
            let node = Node::Leaf(vec![LeafEntry::new(object, oid)]);
            self.root = self.alloc_write(&node)?;
            self.height = 1;
            self.len = 1;
            return Ok(());
        }
        self.insert_at_level(AnyEntry::Leaf(LeafEntry::new(object, oid)), 0)?;
        self.len += 1;
        Ok(())
    }

    /// Inserts `entry` into a node at `level`, with R* overflow treatment.
    /// Does **not** touch `self.len` (also used for reinsertions).
    pub(crate) fn insert_at_level(&mut self, entry: AnyEntry<D, O>, level: u8) -> RTreeResult<()> {
        // Forced reinsertion is permitted once per level per data insert
        // (Beckmann et al.'s OverflowTreatment).
        let mut overflowed = vec![false; self.height as usize];
        let mut queue: VecDeque<(AnyEntry<D, O>, u8)> = VecDeque::new();
        queue.push_back((entry, level));
        while let Some((e, lvl)) = queue.pop_front() {
            let root_level = self.height - 1;
            debug_assert!(lvl <= root_level, "entry level beyond root");
            let (updated, split) =
                self.insert_rec(self.root, root_level, e, lvl, &mut overflowed, &mut queue)?;
            if let Some(sibling) = split {
                let new_root = Node::Inner {
                    level: root_level + 1,
                    entries: vec![updated, sibling],
                };
                self.root = self.alloc_write(&new_root)?;
                self.height += 1;
                overflowed.push(false);
            } else {
                // Under copy-on-write the root node may have moved to a
                // fresh page; in place mode this is a no-op.
                self.root = updated.child;
            }
        }
        Ok(())
    }

    /// Recursive insertion step. Returns the refreshed entry describing
    /// `node_id` and, if the node split, the entry of the new sibling.
    #[allow(clippy::too_many_arguments)]
    fn insert_rec(
        &mut self,
        node_id: PageId,
        node_level: u8,
        entry: AnyEntry<D, O>,
        target_level: u8,
        overflowed: &mut [bool],
        queue: &mut VecDeque<(AnyEntry<D, O>, u8)>,
    ) -> RTreeResult<(InnerEntry<D>, Option<InnerEntry<D>>)> {
        let mut node = self.read_node(node_id)?;
        debug_assert_eq!(node.level(), node_level, "level mismatch on {node_id}");

        if node_level == target_level {
            match (&mut node, entry) {
                (Node::Leaf(es), AnyEntry::Leaf(e)) => es.push(e),
                (Node::Inner { entries, .. }, AnyEntry::Inner(e)) => entries.push(e),
                _ => {
                    return Err(RTreeError::InvariantViolation(format!(
                        "entry kind does not match node kind at level {node_level}"
                    )))
                }
            }
        } else {
            let idx = self.choose_subtree(&node, &entry.mbr());
            let child = node.inner_entries()[idx];
            let (updated, split) = self.insert_rec(
                child.child,
                node_level - 1,
                entry,
                target_level,
                overflowed,
                queue,
            )?;
            node.inner_entries_mut()[idx] = updated;
            if let Some(sibling) = split {
                node.inner_entries_mut().push(sibling);
            }
        }

        if node.len() > self.params.max_entries {
            let root_level = self.height - 1;
            // Forced reinsertion is an R*-only optimization; the Guttman
            // variants split immediately.
            let can_reinsert = self.params.split_policy == SplitPolicy::RStar
                && node_level < root_level
                && !overflowed[node_level as usize];
            if can_reinsert {
                overflowed[node_level as usize] = true;
                let removed = self.reinsert_select(&mut node);
                let placed = self.place_node(node_id, &node)?;
                for e in removed {
                    queue.push_back((e, node_level));
                }
                return Ok((self.entry_for(placed, &node), None));
            }
            let (a, b) = self.split_node(node);
            let a_id = self.place_node(node_id, &a)?;
            let b_id = self.alloc_write(&b)?;
            return Ok((self.entry_for(a_id, &a), Some(self.entry_for(b_id, &b))));
        }

        let placed = self.place_node(node_id, &node)?;
        Ok((self.entry_for(placed, &node), None))
    }

    /// `ChooseSubtree`: among the children of `node`, pick where an entry
    /// with MBR `mbr` should descend.
    ///
    /// R\* rule (the default):
    /// * Children are leaves (`node` at level 1): minimize **overlap
    ///   enlargement**, ties by area enlargement, then by area.
    /// * Otherwise: minimize **area enlargement**, ties by area.
    ///
    /// Guttman variants use the classic least-enlargement rule at every
    /// level.
    fn choose_subtree(&self, node: &Node<D, O>, mbr: &Rect<D>) -> usize {
        let entries = node.inner_entries();
        debug_assert!(!entries.is_empty(), "choose_subtree on empty node");
        if self.params.split_policy == SplitPolicy::RStar && node.level() == 1 {
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, e) in entries.iter().enumerate() {
                let enlarged = e.mbr.union(mbr);
                let mut overlap_delta = 0.0;
                for (j, other) in entries.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    overlap_delta += enlarged.intersection_area(&other.mbr)
                        - e.mbr.intersection_area(&other.mbr);
                }
                let key = (overlap_delta, enlarged.area() - e.mbr.area(), e.mbr.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, e) in entries.iter().enumerate() {
                let key = (e.mbr.enlargement(mbr), e.mbr.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    /// Forced-reinsert selection: removes the `p` entries whose centers are
    /// farthest from the node MBR's center and returns them sorted by
    /// *increasing* distance (Beckmann et al.'s "close reinsert").
    fn reinsert_select(&self, node: &mut Node<D, O>) -> Vec<AnyEntry<D, O>> {
        let p = self
            .params
            .reinsert_count
            .min(node.len() - self.params.min_entries);
        // analyze: allow(panic-path) — reinsert fires on overflowing (hence
        // non-empty) nodes.
        let center = node.mbr().expect("reinsert on empty node").center();
        match node {
            Node::Leaf(es) => {
                let mut idx: Vec<usize> = (0..es.len()).collect();
                idx.sort_by(|&a, &b| {
                    es[b]
                        .mbr()
                        .center()
                        .dist2(&center)
                        .total_cmp(&es[a].mbr().center().dist2(&center))
                });
                let removed_set: Vec<usize> = idx[..p].to_vec();
                let mut removed: Vec<(f64, AnyEntry<D, O>)> = removed_set
                    .iter()
                    .map(|&i| (es[i].mbr().center().dist2(&center), AnyEntry::Leaf(es[i])))
                    .collect();
                let mut keep: Vec<LeafEntry<D, O>> = Vec::with_capacity(es.len() - p);
                for (i, e) in es.iter().enumerate() {
                    if !removed_set.contains(&i) {
                        keep.push(*e);
                    }
                }
                *es = keep;
                removed.sort_by(|a, b| a.0.total_cmp(&b.0));
                removed.into_iter().map(|(_, e)| e).collect()
            }
            Node::Inner { entries, .. } => {
                let mut idx: Vec<usize> = (0..entries.len()).collect();
                idx.sort_by(|&a, &b| {
                    entries[b]
                        .mbr
                        .center()
                        .dist2(&center)
                        .total_cmp(&entries[a].mbr.center().dist2(&center))
                });
                let removed_set: Vec<usize> = idx[..p].to_vec();
                let mut removed: Vec<(f64, AnyEntry<D, O>)> = removed_set
                    .iter()
                    .map(|&i| {
                        (
                            entries[i].mbr.center().dist2(&center),
                            AnyEntry::Inner(entries[i]),
                        )
                    })
                    .collect();
                let mut keep: Vec<InnerEntry<D>> = Vec::with_capacity(entries.len() - p);
                for (i, e) in entries.iter().enumerate() {
                    if !removed_set.contains(&i) {
                        keep.push(*e);
                    }
                }
                *entries = keep;
                removed.sort_by(|a, b| a.0.total_cmp(&b.0));
                removed.into_iter().map(|(_, e)| e).collect()
            }
        }
    }

    fn split_node(&self, node: Node<D, O>) -> (Node<D, O>, Node<D, O>) {
        fn dispatch<const D: usize, T: crate::split::SplitItem<D>>(
            policy: SplitPolicy,
            items: Vec<T>,
            min: usize,
        ) -> (Vec<T>, Vec<T>) {
            match policy {
                SplitPolicy::RStar => rstar_split(items, min),
                SplitPolicy::GuttmanQuadratic => quadratic_split(items, min),
                SplitPolicy::GuttmanLinear => linear_split(items, min),
            }
        }
        let policy = self.params.split_policy;
        match node {
            Node::Leaf(es) => {
                let (a, b) = dispatch(policy, es, self.params.min_entries);
                (Node::Leaf(a), Node::Leaf(b))
            }
            Node::Inner { level, entries } => {
                let (a, b) = dispatch(policy, entries, self.params.min_entries);
                (
                    Node::Inner { level, entries: a },
                    Node::Inner { level, entries: b },
                )
            }
        }
    }

    /// Deletes one occurrence of `(object, oid)`. Returns `true` when found.
    ///
    /// Underflowing nodes are dissolved and their entries reinserted
    /// (Guttman's `CondenseTree`, as adopted by the R*-tree).
    pub fn delete(&mut self, object: O, oid: u64) -> RTreeResult<bool> {
        if !self.root.is_valid() {
            return Ok(false);
        }
        let mut orphans: Vec<(AnyEntry<D, O>, u8)> = Vec::new();
        let root_level = self.height - 1;
        let found =
            match self.delete_rec(self.root, root_level, true, &object, oid, &mut orphans)? {
                DeleteOutcome::NotFound => false,
                DeleteOutcome::Updated(e) => {
                    // Thread the root's possibly-new page id (copy-on-write).
                    self.root = e.child;
                    true
                }
                DeleteOutcome::Removed => {
                    unreachable!("the root is never condensed away by delete_rec")
                }
            };
        if !found {
            debug_assert!(orphans.is_empty());
            return Ok(false);
        }
        self.len -= 1;

        for (entry, level) in orphans {
            self.insert_at_level(entry, level)?;
        }

        // Shrink the root: an inner root with a single child is replaced by
        // that child; an empty leaf root empties the tree.
        loop {
            let node = self.read_node(self.root)?;
            match &node {
                Node::Inner { entries, .. } if entries.len() == 1 => {
                    let child = entries[0].child;
                    let old_root = self.root;
                    self.free_or_retire(old_root)?;
                    self.root = child;
                    self.height -= 1;
                }
                Node::Leaf(es) if es.is_empty() => {
                    let old_root = self.root;
                    self.free_or_retire(old_root)?;
                    self.root = PageId::INVALID;
                    self.height = 0;
                    debug_assert_eq!(self.len, 0);
                    break;
                }
                _ => break,
            }
        }
        Ok(true)
    }

    fn delete_rec(
        &mut self,
        node_id: PageId,
        node_level: u8,
        is_root: bool,
        object: &O,
        oid: u64,
        orphans: &mut Vec<(AnyEntry<D, O>, u8)>,
    ) -> RTreeResult<DeleteOutcome<D>> {
        let mut node = self.read_node(node_id)?;
        match &mut node {
            Node::Leaf(es) => {
                let Some(pos) = es.iter().position(|e| e.object == *object && e.oid == oid) else {
                    return Ok(DeleteOutcome::NotFound);
                };
                es.remove(pos);
                if !is_root && es.len() < self.params.min_entries {
                    for e in es.iter() {
                        orphans.push((AnyEntry::Leaf(*e), 0));
                    }
                    self.free_or_retire(node_id)?;
                    return Ok(DeleteOutcome::Removed);
                }
                let placed = self.place_node(node_id, &node)?;
                if node.is_empty() {
                    // Empty leaf root: report a placeholder entry; the caller
                    // shrinks the tree away.
                    return Ok(DeleteOutcome::Updated(InnerEntry::new(
                        object.mbr(),
                        placed,
                        0,
                    )));
                }
                Ok(DeleteOutcome::Updated(self.entry_for(placed, &node)))
            }
            Node::Inner { entries, .. } => {
                let mut found_at: Option<(usize, DeleteOutcome<D>)> = None;
                for (i, e) in entries.iter().enumerate() {
                    if !e.mbr.contains_rect(&object.mbr()) {
                        continue;
                    }
                    match self.delete_rec(e.child, node_level - 1, false, object, oid, orphans)? {
                        DeleteOutcome::NotFound => continue,
                        outcome => {
                            found_at = Some((i, outcome));
                            break;
                        }
                    }
                }
                let Some((idx, outcome)) = found_at else {
                    return Ok(DeleteOutcome::NotFound);
                };
                match outcome {
                    DeleteOutcome::Updated(e) => entries[idx] = e,
                    DeleteOutcome::Removed => {
                        entries.remove(idx);
                    }
                    DeleteOutcome::NotFound => unreachable!(),
                }
                if !is_root && entries.len() < self.params.min_entries {
                    for e in entries.iter() {
                        orphans.push((AnyEntry::Inner(*e), node_level));
                    }
                    self.free_or_retire(node_id)?;
                    return Ok(DeleteOutcome::Removed);
                }
                let placed = self.place_node(node_id, &node)?;
                Ok(DeleteOutcome::Updated(self.entry_for(placed, &node)))
            }
        }
    }
}

enum DeleteOutcome<const D: usize> {
    /// The object was not found under this node.
    NotFound,
    /// The object was removed; here is the refreshed entry for this node.
    Updated(InnerEntry<D>),
    /// This node underflowed and was dissolved into orphans.
    Removed,
}
