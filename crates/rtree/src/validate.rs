//! Structural invariant checker.
//!
//! Used pervasively by the test-suite: after arbitrary interleavings of
//! inserts and deletes (and after bulk loads), the tree must satisfy every
//! R*-tree invariant. Violations are collected, not panicked, so tests can
//! print them all.

use crate::error::RTreeResult;
use crate::node::Node;
use crate::tree::RTree;
use cpq_geo::{Rect, SpatialObject};
use cpq_storage::PageId;
use std::collections::{HashMap, HashSet};

/// Optional extra invariants for [`RTree::validate_with_options`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ValidateOptions<const D: usize> {
    /// Require every leaf `oid` to appear at most once in the tree.
    ///
    /// Duplicate oids are *allowed* by [`RTree::insert`] in general (the
    /// paper's uniform datasets carry duplicate geometry), so this is
    /// opt-in; streams that key updates by oid (the live-update path) turn
    /// it on because a duplicate there means a lost or double-applied
    /// update.
    pub unique_oids: bool,
    /// Require every leaf object's MBR to lie (boundary-inclusively)
    /// inside this rectangle. Used by windowed-query tests: a tree built
    /// from the points inside a query window must validate against the
    /// window itself.
    pub bounds: Option<Rect<D>>,
}

/// Outcome of [`RTree::validate`]: statistics plus any violations found.
#[derive(Debug, Default)]
pub struct ValidationReport {
    /// Total nodes visited.
    pub nodes: u64,
    /// Leaf nodes visited.
    pub leaves: u64,
    /// Data objects counted in leaves.
    pub points: u64,
    /// Nodes per level, indexed by level (0 = leaves).
    pub nodes_per_level: Vec<u64>,
    /// Human-readable invariant violations (empty means the tree is valid).
    pub violations: Vec<String>,
}

impl ValidationReport {
    /// `true` when no violations were recorded.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

impl<const D: usize, O: SpatialObject<D>> RTree<D, O> {
    /// Walks the whole tree checking every structural invariant:
    ///
    /// 1. every child entry's MBR equals the child node's computed MBR
    ///    (tight MBRs);
    /// 2. every child entry's cardinality equals the child subtree's count;
    /// 3. node occupancy is within `m..=M` (the root is exempt from `m`,
    ///    and an inner root must have at least 2 entries);
    /// 4. node levels decrease by exactly one per edge and leaves sit at
    ///    level 0 (uniform depth);
    /// 5. the tree's `len()` equals the number of points in leaves and the
    ///    `height()` matches the root level;
    /// 6. no page is referenced twice (no aliasing, no cycles) — the
    ///    invariant copy-on-write bugs break first: a parent cloned onto a
    ///    fresh page that still links a sibling's *old* child, or a
    ///    retired page resurrected into two paths, shows up here even when
    ///    counts and MBRs still happen to balance.
    pub fn validate(&self) -> RTreeResult<ValidationReport> {
        self.validate_with_options(ValidateOptions::default())
    }

    /// [`validate`](Self::validate) plus the opt-in invariants in
    /// [`ValidateOptions`].
    pub fn validate_with_options(&self, opts: ValidateOptions<D>) -> RTreeResult<ValidationReport> {
        let mut report = ValidationReport::default();
        if !self.root().is_valid() {
            if !self.is_empty() {
                report
                    .violations
                    .push(format!("empty root but len() = {}", self.len()));
            }
            if self.height() != 0 {
                report
                    .violations
                    .push(format!("empty root but height() = {}", self.height()));
            }
            return Ok(report);
        }
        let root_node = self.read_node(self.root())?;
        if root_node.level() + 1 != self.height() {
            report.violations.push(format!(
                "root level {} inconsistent with height {}",
                root_node.level(),
                self.height()
            ));
        }
        let mut ctx = WalkCtx {
            visited: HashSet::new(),
            oids: HashMap::new(),
            opts,
        };
        ctx.visited.insert(self.root());
        let count = self.validate_rec(self.root(), &root_node, true, &mut report, &mut ctx)?;
        if count != self.len() {
            report.violations.push(format!(
                "tree len() = {} but leaves hold {count} points",
                self.len()
            ));
        }
        report.points = count;
        Ok(report)
    }

    fn validate_rec(
        &self,
        id: PageId,
        node: &Node<D, O>,
        is_root: bool,
        report: &mut ValidationReport,
        ctx: &mut WalkCtx<D>,
    ) -> RTreeResult<u64> {
        report.nodes += 1;
        let level = node.level() as usize;
        if report.nodes_per_level.len() <= level {
            report.nodes_per_level.resize(level + 1, 0);
        }
        report.nodes_per_level[level] += 1;

        let max = self.params().max_entries;
        let min = self.params().min_entries;
        if node.len() > max {
            report
                .violations
                .push(format!("{id}: {} entries exceed M = {max}", node.len()));
        }
        if is_root {
            match node {
                Node::Inner { entries, .. } if entries.len() < 2 => report.violations.push(
                    format!("{id}: inner root with {} < 2 entries", entries.len()),
                ),
                Node::Leaf(es) if es.is_empty() => report
                    .violations
                    .push(format!("{id}: empty leaf root should have been dropped")),
                _ => {}
            }
        } else if node.len() < min {
            report
                .violations
                .push(format!("{id}: {} entries below m = {min}", node.len()));
        }

        match node {
            Node::Leaf(es) => {
                report.leaves += 1;
                for e in es {
                    if !e.object.is_finite() {
                        report
                            .violations
                            .push(format!("{id}: non-finite object {:?}", e.object));
                    }
                    if ctx.opts.unique_oids {
                        if let Some(prev) = ctx.oids.insert(e.oid, id) {
                            report.violations.push(format!(
                                "{id}: oid {} already indexed in leaf {prev}",
                                e.oid
                            ));
                        }
                    }
                    if let Some(bounds) = &ctx.opts.bounds {
                        if !bounds.contains_rect(&e.object.mbr()) {
                            report.violations.push(format!(
                                "{id}: object {:?} (oid {}) outside required bounds {bounds:?}",
                                e.object, e.oid
                            ));
                        }
                    }
                }
                Ok(es.len() as u64)
            }
            Node::Inner { level, entries } => {
                let mut total = 0u64;
                for e in entries {
                    if !ctx.visited.insert(e.child) {
                        report.violations.push(format!(
                            "{id}: child page {} referenced more than once (aliasing or cycle)",
                            e.child
                        ));
                        continue; // do not recurse into an aliased subtree
                    }
                    let child = self.read_node(e.child)?;
                    if child.level() + 1 != *level {
                        report.violations.push(format!(
                            "{id}: child {} at level {} under parent level {level}",
                            e.child,
                            child.level()
                        ));
                    }
                    match child.mbr() {
                        Some(mbr) if mbr == e.mbr => {}
                        Some(mbr) => report.violations.push(format!(
                            "{id}: stale MBR for child {}: stored {:?}, computed {mbr:?}",
                            e.child, e.mbr
                        )),
                        None => report
                            .violations
                            .push(format!("{id}: child {} is empty", e.child)),
                    }
                    let child_count = child.subtree_count();
                    if child_count != e.count {
                        report.violations.push(format!(
                            "{id}: stale cardinality for child {}: stored {}, computed {child_count}",
                            e.child, e.count
                        ));
                    }
                    total += self.validate_rec(e.child, &child, false, report, ctx)?;
                }
                Ok(total)
            }
        }
    }

    /// Panics with all violations when the tree is invalid (test helper).
    pub fn assert_valid(&self) {
        // analyze: allow(panic-path) — assert_valid is a test helper
        // documented to panic on invalid trees.
        let report = self.validate().expect("validation walk failed");
        assert!(
            report.is_valid(),
            "R-tree invariant violations:\n{}",
            report.violations.join("\n")
        );
    }

    /// [`assert_valid`](Self::assert_valid) that additionally requires
    /// every oid to be unique — the contract of oid-keyed update streams.
    pub fn assert_valid_unique_oids(&self) {
        // invalid trees.
        let report = self
            .validate_with_options(ValidateOptions {
                unique_oids: true,
                ..ValidateOptions::default()
            })
            .expect("validation walk failed"); // analyze: allow(panic-path) — documented panic.
        assert!(
            report.is_valid(),
            "R-tree invariant violations:\n{}",
            report.violations.join("\n")
        );
    }
}

/// Per-walk state shared across [`RTree::validate_rec`] calls.
struct WalkCtx<const D: usize> {
    /// Every page id seen so far; a duplicate is aliasing or a cycle.
    visited: HashSet<PageId>,
    /// First leaf page holding each oid (populated only under
    /// [`ValidateOptions::unique_oids`]).
    oids: HashMap<u64, PageId>,
    opts: ValidateOptions<D>,
}
