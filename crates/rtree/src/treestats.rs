//! Per-level statistics of a tree, the inputs of analytic cost models.

use crate::error::RTreeResult;
use crate::node::Node;
use crate::tree::RTree;
use cpq_geo::SpatialObject;

/// Aggregate statistics of one tree level.
#[derive(Debug, Clone)]
pub struct LevelStats<const D: usize> {
    /// Level (0 = leaves).
    pub level: u8,
    /// Number of nodes at this level.
    pub nodes: u64,
    /// Mean node-MBR extent per dimension.
    pub avg_extent: [f64; D],
    /// Mean entries per node.
    pub avg_occupancy: f64,
}

impl<const D: usize, O: SpatialObject<D>> RTree<D, O> {
    /// Walks the tree and returns statistics for every level, leaves first.
    ///
    /// Used by the analytic cost model of `cpq-core` (the paper's future
    /// work (b) cites the spatial-join cost models of Theodoridis,
    /// Stefanakis & Sellis, which consume exactly these densities).
    pub fn level_stats(&self) -> RTreeResult<Vec<LevelStats<D>>> {
        let h = self.height() as usize;
        let mut nodes = vec![0u64; h];
        let mut extent_sum = vec![[0.0; D]; h];
        let mut occupancy_sum = vec![0u64; h];
        if h == 0 {
            return Ok(Vec::new());
        }
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = self.read_node(id)?;
            let l = node.level() as usize;
            nodes[l] += 1;
            occupancy_sum[l] += node.len() as u64;
            if let Some(mbr) = node.mbr() {
                for (d, e) in extent_sum[l].iter_mut().enumerate() {
                    *e += mbr.extent(d);
                }
            }
            if let Node::Inner { entries, .. } = &node {
                stack.extend(entries.iter().map(|e| e.child));
            }
        }
        Ok((0..h)
            .map(|l| {
                let n = nodes[l].max(1) as f64;
                let mut avg = [0.0; D];
                for d in 0..D {
                    avg[d] = extent_sum[l][d] / n;
                }
                LevelStats {
                    level: l as u8,
                    nodes: nodes[l],
                    avg_extent: avg,
                    avg_occupancy: occupancy_sum[l] as f64 / n,
                }
            })
            .collect())
    }
}

impl<const D: usize, O: SpatialObject<D>> RTree<D, O> {
    /// Pins every node at level `min_level` or above into the buffer pool
    /// (root included), so they are never evicted during queries — the
    /// classic "keep the directory resident" production policy.
    ///
    /// Returns the number of nodes pinned. Nodes that did not fit (pool too
    /// small) are skipped; pins are cleared by
    /// [`BufferPool::set_capacity`](cpq_storage::BufferPool::set_capacity)
    /// or [`clear`](cpq_storage::BufferPool::clear).
    pub fn pin_upper_levels(&self, min_level: u8) -> RTreeResult<usize> {
        if !self.root().is_valid() {
            return Ok(0);
        }
        let mut pinned = 0usize;
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = self.read_node(id)?;
            if node.level() < min_level {
                continue;
            }
            if self.pool().pin_page(id)? {
                pinned += 1;
            }
            if let Node::Inner { entries, level } = &node {
                if *level > min_level {
                    stack.extend(entries.iter().map(|e| e.child));
                }
            }
        }
        Ok(pinned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RTreeParams;
    use cpq_geo::Point;
    use cpq_rng::Rng;
    use cpq_storage::{BufferPool, MemPageFile};

    #[test]
    fn level_stats_reflect_structure() {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 64);
        let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        for i in 0..3000u64 {
            tree.insert(
                Point([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]),
                i,
            )
            .unwrap();
        }
        let stats = tree.level_stats().unwrap();
        assert_eq!(stats.len(), tree.height() as usize);
        // Root level has one node; node counts decrease going up.
        assert_eq!(stats.last().unwrap().nodes, 1);
        for w in stats.windows(2) {
            assert!(w[0].nodes > w[1].nodes, "levels must shrink upward");
        }
        // Leaf count consistent with occupancy.
        let leaf = &stats[0];
        let points = leaf.nodes as f64 * leaf.avg_occupancy;
        assert!((points - 3000.0).abs() < 1e-6);
        // Occupancy within [m, M].
        for s in &stats[..stats.len() - 1] {
            assert!(s.avg_occupancy >= 7.0 && s.avg_occupancy <= 21.0);
        }
        // Extents grow with level (bigger nodes higher up).
        assert!(stats[1].avg_extent[0] > stats[0].avg_extent[0]);
    }

    #[test]
    fn empty_tree_has_no_levels() {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 8);
        let tree: RTree<2> = RTree::new(pool, RTreeParams::paper()).unwrap();
        assert!(tree.level_stats().unwrap().is_empty());
        assert_eq!(tree.pin_upper_levels(1).unwrap(), 0);
    }

    #[test]
    fn pin_upper_levels_keeps_directory_resident() {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 64);
        let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
        let mut rng = Rng::seed_from_u64(2);
        let pts: Vec<Point<2>> = (0..3000)
            .map(|_| Point([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
            .collect();
        for (i, &p) in pts.iter().enumerate() {
            tree.insert(p, i as u64).unwrap();
        }
        // Pin every non-leaf level.
        let stats = tree.level_stats().unwrap();
        let non_leaf_nodes: u64 = stats[1..].iter().map(|s| s.nodes).sum();
        tree.pool().clear();
        let pinned = tree.pin_upper_levels(1).unwrap();
        assert_eq!(pinned as u64, non_leaf_nodes);
        assert_eq!(tree.pool().pinned_pages(), pinned);
        // Queries under pressure keep hitting the pinned directory: all
        // misses must be leaf pages.
        tree.pool().reset_stats();
        for q in pts.iter().step_by(100) {
            tree.knn(q, 3).unwrap();
        }
        let s = tree.pool().buffer_stats();
        assert!(s.hits > 0, "pinned directory must produce hits");
    }
}
