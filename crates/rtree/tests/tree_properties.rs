//! Compiled only with `--features proptest`, which additionally requires
//! restoring the `proptest = "1"` dev-dependency on a networked machine (the
//! offline workspace carries no registry dependencies).
#![cfg(feature = "proptest")]

//! Property-based tests: random insert/delete interleavings preserve every
//! structural invariant and query correctness.

use cpq_geo::{Point, Rect};
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile};
use proptest::prelude::*;

fn mem_tree(max_entries: usize) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 64);
    RTree::new(pool, RTreeParams::with_max_entries(max_entries)).unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Insert(f64, f64),
    DeleteNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Op::Insert(x, y)),
        1 => (0usize..1000).prop_map(Op::DeleteNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of inserts and deletes keep the tree valid
    /// and consistent with a shadow model.
    #[test]
    fn interleaved_ops_preserve_invariants(
        ops in prop::collection::vec(op_strategy(), 1..150),
        m in 4usize..12,
    ) {
        let mut tree = mem_tree(m);
        let mut live: Vec<(Point<2>, u64)> = Vec::new();
        let mut next_oid = 0u64;
        for op in ops {
            match op {
                Op::Insert(x, y) => {
                    let p = Point([x, y]);
                    tree.insert(p, next_oid).unwrap();
                    live.push((p, next_oid));
                    next_oid += 1;
                }
                Op::DeleteNth(n) => {
                    if live.is_empty() { continue; }
                    let (p, oid) = live.swap_remove(n % live.len());
                    prop_assert!(tree.delete(p, oid).unwrap());
                }
            }
        }
        let report = tree.validate().unwrap();
        prop_assert!(report.is_valid(), "violations: {:?}", report.violations);
        prop_assert_eq!(tree.len(), live.len() as u64);
        for (p, oid) in &live {
            prop_assert!(tree.contains(p, *oid).unwrap());
        }
    }

    /// Range queries return exactly the model's answer after random builds.
    #[test]
    fn range_query_matches_model(
        pts in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..120),
        qx in 0.0..90.0f64, qy in 0.0..90.0f64,
        qw in 0.0..50.0f64, qh in 0.0..50.0f64,
    ) {
        let mut tree = mem_tree(8);
        for (i, &(x, y)) in pts.iter().enumerate() {
            tree.insert(Point([x, y]), i as u64).unwrap();
        }
        let window = Rect::from_corners([qx, qy], [qx + qw, qy + qh]);
        let mut got: Vec<u64> = tree.range_query(&window).unwrap()
            .iter().map(|e| e.oid).collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = pts.iter().enumerate()
            .filter(|(_, &(x, y))| window.contains_point(&Point([x, y])))
            .map(|(i, _)| i as u64)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// 1-NN from the tree is a true nearest neighbor.
    #[test]
    fn nn_matches_model(
        pts in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..100),
        qx in 0.0..100.0f64, qy in 0.0..100.0f64,
    ) {
        let mut tree = mem_tree(6);
        for (i, &(x, y)) in pts.iter().enumerate() {
            tree.insert(Point([x, y]), i as u64).unwrap();
        }
        let q = Point([qx, qy]);
        let got = tree.knn(&q, 1).unwrap();
        prop_assert_eq!(got.len(), 1);
        let best = pts.iter()
            .map(|&(x, y)| Point([x, y]).dist2(&q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got[0].dist2.get() - best).abs() < 1e-9);
    }

    /// Bulk load and insertion build trees with identical contents, and the
    /// bulk-loaded tree is valid at any legal fill factor.
    #[test]
    fn bulk_load_valid_at_any_fill(
        pts in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..300),
        fill in 0.4..1.0f64,
    ) {
        let pairs: Vec<(Point<2>, u64)> = pts.iter().enumerate()
            .map(|(i, &(x, y))| (Point([x, y]), i as u64)).collect();
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 64);
        let tree = RTree::bulk_load(pool, RTreeParams::with_max_entries(8), &pairs, fill).unwrap();
        let report = tree.validate().unwrap();
        prop_assert!(report.is_valid(), "violations: {:?}", report.violations);
        prop_assert_eq!(tree.len() as usize, pts.len());
    }
}
