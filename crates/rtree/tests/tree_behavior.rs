//! End-to-end behavioral tests for the R*-tree: queries agree with brute
//! force, invariants hold after mutation, trees persist across reopen.

use cpq_geo::{Point, Rect};
use cpq_rng::Rng;
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, DiskPageFile, MemPageFile, PageId};

fn mem_pool(buffer: usize) -> BufferPool {
    BufferPool::with_lru(Box::new(MemPageFile::new(1024)), buffer)
}

fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| Point([r.random_range(0.0..1000.0), r.random_range(0.0..1000.0)]))
        .collect()
}

fn build_tree(points: &[Point<2>], buffer: usize) -> RTree<2> {
    let mut tree = RTree::new(mem_pool(buffer), RTreeParams::paper()).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

#[test]
fn empty_tree_basics() {
    let tree: RTree<2> = RTree::new(mem_pool(16), RTreeParams::paper()).unwrap();
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 0);
    assert_eq!(tree.root(), PageId::INVALID);
    assert_eq!(tree.root_mbr().unwrap(), None);
    assert!(tree
        .range_query(&Rect::from_corners([0.0, 0.0], [1.0, 1.0]))
        .unwrap()
        .is_empty());
    assert!(tree.knn(&Point([0.0, 0.0]), 3).unwrap().is_empty());
    tree.assert_valid();
}

#[test]
fn insert_grows_height_and_stays_valid() {
    let points = random_points(2000, 7);
    let tree = build_tree(&points, 64);
    assert_eq!(tree.len(), 2000);
    assert!(tree.height() >= 3, "2000 points with M=21 need height >= 3");
    tree.assert_valid();
    // Every point findable.
    for (i, p) in points.iter().enumerate() {
        assert!(tree.contains(p, i as u64).unwrap(), "point {i} lost");
    }
}

#[test]
fn range_query_agrees_with_brute_force() {
    let points = random_points(800, 11);
    let tree = build_tree(&points, 64);
    let mut r = rng(12);
    for _ in 0..25 {
        let x = r.random_range(0.0..900.0);
        let y = r.random_range(0.0..900.0);
        let w = r.random_range(0.0..300.0);
        let h = r.random_range(0.0..300.0);
        let window = Rect::from_corners([x, y], [x + w, y + h]);
        let mut got: Vec<u64> = tree
            .range_query(&window)
            .unwrap()
            .iter()
            .map(|e| e.oid)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| window.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}

#[test]
fn knn_agrees_with_brute_force() {
    let points = random_points(600, 21);
    let tree = build_tree(&points, 64);
    let mut r = rng(22);
    for _ in 0..20 {
        let q = Point([r.random_range(0.0..1000.0), r.random_range(0.0..1000.0)]);
        for k in [1usize, 5, 17] {
            let got = tree.knn(&q, k).unwrap();
            assert_eq!(got.len(), k);
            // Distances must be non-decreasing.
            for w in got.windows(2) {
                assert!(w[0].dist2 <= w[1].dist2);
            }
            // Compare the distance multiset with brute force (points may tie).
            let mut brute: Vec<f64> = points.iter().map(|p| p.dist2(&q)).collect();
            brute.sort_by(f64::total_cmp);
            for (i, n) in got.iter().enumerate() {
                assert!(
                    (n.dist2.get() - brute[i]).abs() < 1e-9,
                    "k={k} neighbor {i}: got {} expected {}",
                    n.dist2.get(),
                    brute[i]
                );
            }
        }
    }
}

#[test]
fn knn_with_k_larger_than_tree() {
    let points = random_points(10, 31);
    let tree = build_tree(&points, 16);
    let got = tree.knn(&Point([0.0, 0.0]), 50).unwrap();
    assert_eq!(got.len(), 10, "k beyond |tree| returns all points");
}

#[test]
fn delete_removes_and_preserves_invariants() {
    let points = random_points(700, 41);
    let mut tree = build_tree(&points, 64);
    let mut r = rng(42);
    let mut live: Vec<usize> = (0..points.len()).collect();
    // Delete 500 random points, validating as we go.
    for step in 0..500 {
        let pos = r.random_range(0..live.len());
        let idx = live.swap_remove(pos);
        assert!(
            tree.delete(points[idx], idx as u64).unwrap(),
            "step {step}: delete of live point failed"
        );
        if step % 50 == 0 {
            tree.assert_valid();
        }
    }
    tree.assert_valid();
    assert_eq!(tree.len(), 200);
    for &idx in &live {
        assert!(tree.contains(&points[idx], idx as u64).unwrap());
    }
    // Deleted points are gone.
    assert!(!tree.contains(&points[0], 0).unwrap() || live.contains(&0));
}

#[test]
fn delete_to_empty_and_reuse() {
    let points = random_points(100, 51);
    let mut tree = build_tree(&points, 32);
    for (i, &p) in points.iter().enumerate() {
        assert!(tree.delete(p, i as u64).unwrap());
    }
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 0);
    tree.assert_valid();
    // The tree is usable again after being emptied.
    tree.insert(Point([1.0, 2.0]), 9).unwrap();
    assert_eq!(tree.len(), 1);
    assert!(tree.contains(&Point([1.0, 2.0]), 9).unwrap());
    tree.assert_valid();
}

#[test]
fn delete_missing_point_returns_false() {
    let points = random_points(50, 61);
    let mut tree = build_tree(&points, 32);
    assert!(!tree.delete(Point([-5.0, -5.0]), 0).unwrap());
    assert!(
        !tree.delete(points[0], 999_999).unwrap(),
        "wrong oid must not match"
    );
    assert_eq!(tree.len(), 50);
}

#[test]
fn duplicate_points_supported() {
    let mut tree = RTree::new(mem_pool(32), RTreeParams::paper()).unwrap();
    let p = Point([5.0, 5.0]);
    for i in 0..100u64 {
        tree.insert(p, i).unwrap();
    }
    assert_eq!(tree.len(), 100);
    tree.assert_valid();
    let hits = tree.range_query(&Rect::point(p)).unwrap();
    assert_eq!(hits.len(), 100);
    // Delete one specific duplicate.
    assert!(tree.delete(p, 37).unwrap());
    assert!(!tree.contains(&p, 37).unwrap());
    assert_eq!(tree.len(), 99);
}

#[test]
fn non_finite_points_rejected() {
    let mut tree: RTree<2> = RTree::new(mem_pool(8), RTreeParams::paper()).unwrap();
    assert!(tree.insert(Point([f64::NAN, 0.0]), 0).is_err());
    assert!(tree.insert(Point([f64::INFINITY, 0.0]), 0).is_err());
    assert!(tree.is_empty());
}

#[test]
fn bulk_load_matches_inserted_contents() {
    let points = random_points(3000, 71);
    let pairs: Vec<(Point<2>, u64)> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64))
        .collect();
    for fill in [0.7, 1.0] {
        let tree = RTree::bulk_load(mem_pool(64), RTreeParams::paper(), &pairs, fill).unwrap();
        assert_eq!(tree.len(), 3000);
        tree.assert_valid();
        let mut oids: Vec<u64> = tree.all_objects().unwrap().iter().map(|e| e.oid).collect();
        oids.sort_unstable();
        assert_eq!(oids, (0..3000u64).collect::<Vec<_>>());
    }
}

#[test]
fn bulk_load_tiny_and_empty() {
    let tree = RTree::<2>::bulk_load(mem_pool(8), RTreeParams::paper(), &[], 1.0).unwrap();
    assert!(tree.is_empty());
    tree.assert_valid();

    let pairs = vec![(Point([1.0, 1.0]), 0u64), (Point([2.0, 2.0]), 1u64)];
    let tree = RTree::bulk_load(mem_pool(8), RTreeParams::paper(), &pairs, 1.0).unwrap();
    assert_eq!(tree.len(), 2);
    assert_eq!(tree.height(), 1);
    tree.assert_valid();
}

#[test]
fn bulk_load_is_shallower_or_equal_to_inserted() {
    let points = random_points(5000, 81);
    let pairs: Vec<(Point<2>, u64)> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64))
        .collect();
    let inserted = build_tree(&points, 64);
    let packed = RTree::bulk_load(mem_pool(64), RTreeParams::paper(), &pairs, 1.0).unwrap();
    assert!(packed.height() <= inserted.height());
    let rep_packed = packed.validate().unwrap();
    let rep_ins = inserted.validate().unwrap();
    assert!(
        rep_packed.nodes <= rep_ins.nodes,
        "packing must not use more nodes"
    );
}

#[test]
fn disk_backed_tree_survives_reopen() {
    let mut path = std::env::temp_dir();
    path.push(format!("cpq-rtree-test-{}.pages", std::process::id()));
    let points = random_points(300, 91);
    let descriptor;
    {
        let file = DiskPageFile::create(&path, 1024).unwrap();
        let pool = BufferPool::with_lru(Box::new(file), 32);
        let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
        for (i, &p) in points.iter().enumerate() {
            tree.insert(p, i as u64).unwrap();
        }
        tree.assert_valid();
        descriptor = tree.descriptor();
        // BufferPool drops here; DiskPageFile writes through so no flush is
        // needed beyond the header, which allocate() maintains.
    }
    {
        let file = DiskPageFile::open(&path).unwrap();
        let pool = BufferPool::with_lru(Box::new(file), 32);
        let tree: RTree<2> =
            RTree::from_descriptor(pool, RTreeParams::paper(), descriptor).unwrap();
        assert_eq!(tree.len(), 300);
        tree.assert_valid();
        for (i, p) in points.iter().enumerate() {
            assert!(tree.contains(p, i as u64).unwrap());
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn disk_access_counting_zero_buffer() {
    let points = random_points(2000, 101);
    let tree = build_tree(&points, 64);
    // Reconfigure: zero buffer, fresh counters.
    tree.pool().set_capacity(0);
    tree.pool().reset_stats();
    let report = tree.validate().unwrap();
    let s = tree.pool().buffer_stats();
    assert_eq!(s.hits, 0, "zero buffer never hits");
    assert!(
        s.misses >= report.nodes,
        "full walk reads every node at least once"
    );
    assert_eq!(s.misses, tree.pool().io_stats().reads);
}

#[test]
fn buffer_reduces_disk_accesses() {
    let points = random_points(2000, 111);
    let tree = build_tree(&points, 0);
    let q = Point([500.0, 500.0]);

    tree.pool().set_capacity(0);
    tree.pool().reset_stats();
    tree.knn(&q, 10).unwrap();
    let without = tree.pool().buffer_stats().misses;

    tree.pool().set_capacity(64);
    tree.pool().reset_stats();
    tree.knn(&q, 10).unwrap();
    tree.knn(&q, 10).unwrap(); // second run should hit the cache
    let with = tree.pool().buffer_stats().misses;
    assert!(
        with < 2 * without,
        "cache must absorb repeated accesses: {with} vs 2x{without}"
    );
}

#[test]
fn guttman_variants_build_valid_trees_with_same_contents() {
    use cpq_rtree::SplitPolicy;
    let points = random_points(1500, 131);
    for policy in SplitPolicy::ALL {
        let params = RTreeParams {
            split_policy: policy,
            ..RTreeParams::paper()
        };
        let mut tree = RTree::new(mem_pool(64), params).unwrap();
        for (i, &p) in points.iter().enumerate() {
            tree.insert(p, i as u64).unwrap();
        }
        tree.assert_valid();
        assert_eq!(tree.len(), 1500, "{}", policy.label());
        // Queries agree regardless of variant.
        let q = Point([500.0, 500.0]);
        let got = tree.knn(&q, 5).unwrap();
        let mut brute: Vec<f64> = points.iter().map(|p| p.dist2(&q)).collect();
        brute.sort_by(f64::total_cmp);
        for (i, n) in got.iter().enumerate() {
            assert!(
                (n.dist2.get() - brute[i]).abs() < 1e-9,
                "{} knn mismatch",
                policy.label()
            );
        }
        // Deletion keeps the variant's tree valid too.
        for (i, &p) in points.iter().take(400).enumerate() {
            assert!(tree.delete(p, i as u64).unwrap());
        }
        tree.assert_valid();
    }
}

#[test]
fn rstar_produces_less_node_overlap_than_linear() {
    // The claim the paper cites ("the most efficient variant"): R* trees
    // have tighter, less-overlapping nodes. Measure total leaf-MBR overlap.
    use cpq_rtree::{Node, SplitPolicy};
    let points = random_points(4000, 137);
    let overlap_of = |policy: SplitPolicy| -> f64 {
        let params = RTreeParams {
            split_policy: policy,
            ..RTreeParams::paper()
        };
        let mut tree = RTree::new(mem_pool(64), params).unwrap();
        for (i, &p) in points.iter().enumerate() {
            tree.insert(p, i as u64).unwrap();
        }
        // Collect all leaf MBRs via their parents.
        let mut leaf_mbrs = Vec::new();
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            if let Node::Inner { level, entries } = tree.read_node(id).unwrap() {
                for e in &entries {
                    if level == 1 {
                        leaf_mbrs.push(e.mbr);
                    } else {
                        stack.push(e.child);
                    }
                }
            }
        }
        let mut total = 0.0;
        for i in 0..leaf_mbrs.len() {
            for j in i + 1..leaf_mbrs.len() {
                total += leaf_mbrs[i].intersection_area(&leaf_mbrs[j]);
            }
        }
        total
    };
    let rstar = overlap_of(SplitPolicy::RStar);
    let linear = overlap_of(SplitPolicy::GuttmanLinear);
    assert!(
        rstar < linear,
        "R* leaf overlap ({rstar:.1}) must be below Guttman-linear ({linear:.1})"
    );
}

#[test]
fn three_dimensional_tree() {
    let mut r = rng(121);
    let points: Vec<Point<3>> = (0..500)
        .map(|_| {
            Point([
                r.random_range(0.0..100.0),
                r.random_range(0.0..100.0),
                r.random_range(0.0..100.0),
            ])
        })
        .collect();
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 32);
    let mut tree = RTree::new(pool, RTreeParams::for_page_size(1024, 3)).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree.assert_valid();
    let q = Point([50.0, 50.0, 50.0]);
    let got = tree.knn(&q, 5).unwrap();
    let mut brute: Vec<f64> = points.iter().map(|p| p.dist2(&q)).collect();
    brute.sort_by(f64::total_cmp);
    for (i, n) in got.iter().enumerate() {
        assert!((n.dist2.get() - brute[i]).abs() < 1e-9);
    }
}
