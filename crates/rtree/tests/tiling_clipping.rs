//! Edge cases where STR tiling meets window clipping — the geometry the
//! windowed scatter planner leans on.
//!
//! The shard planner routes a windowed query by intersecting each tile's
//! rectangle with the window; these tests pin the awkward inputs of that
//! contract: duplicate points (cuts collapse), points collinear on the
//! window boundary (boundary inclusivity must agree between `tile_of`,
//! `contains_point`, and `intersection`), and windows fully outside the
//! dataset MBR (clean empty intersections everywhere, never a panic or an
//! inverted rectangle).

use cpq_geo::{Point, Point2, Rect, Rect2};
use cpq_rng::Rng;
use cpq_rtree::{RTree, RTreeParams, StrTiling, ValidateOptions};
use cpq_storage::{BufferPool, MemPageFile};

fn points(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new([rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)]))
        .collect()
}

#[test]
fn window_outside_mbr_clips_every_tile_to_nothing() {
    let pts = points(600, 41);
    let tiling = StrTiling::build(&pts, 8);
    let mbr = tiling.mbr().expect("non-empty input");
    // Disjoint on both axes, disjoint on one axis, and merely *touching*
    // the MBR corner (touching is not outside: a point can sit exactly on
    // the shared corner).
    let far = Rect2::from_corners([5_000.0, 5_000.0], [6_000.0, 6_000.0]);
    let beside = Rect2::from_corners([2_000.0, 0.0], [3_000.0, 1_000.0]);
    for w in [far, beside] {
        assert!(mbr.intersection(&w).is_none(), "window must miss the MBR");
        for rect in tiling.tile_rects() {
            assert!(
                rect.intersection(&w).is_none(),
                "tile {rect:?} cannot intersect a window outside the MBR"
            );
        }
    }
    let corner = mbr.hi();
    let touching = Rect::from_corners(
        *corner.coords(),
        [corner.coord(0) + 10.0, corner.coord(1) + 10.0],
    );
    let touch = mbr.intersection(&touching).expect("corner contact");
    assert_eq!(touch.area(), 0.0, "corner contact clips to a point");
}

#[test]
fn duplicate_point_tiles_clip_consistently() {
    // Heavy duplication: 600 copies over 10 distinct sites. Cuts can only
    // fall between distinct coordinates, so tiles collapse — but every
    // produced tile rect must still clip against a window without
    // producing inverted rectangles, and the points a window admits must
    // be exactly the points whose tile rects the window intersects.
    let mut rng = Rng::seed_from_u64(42);
    let sites: Vec<Point2> = (0..10)
        .map(|_| {
            Point::new([
                (rng.random_range(0..10u32) as f64) * 100.0,
                (rng.random_range(0..10u32) as f64) * 100.0,
            ])
        })
        .collect();
    let pts: Vec<Point2> = (0..600)
        .map(|_| sites[rng.random_range(0..sites.len())])
        .collect();
    let tiling = StrTiling::build(&pts, 8);
    assert!(tiling.tiles() >= 1 && tiling.tiles() <= 8);
    let rects = tiling.tile_rects();
    let window = Rect2::from_corners([150.0, 150.0], [650.0, 650.0]);
    for p in &pts {
        let t = tiling.tile_of(p);
        assert!(rects[t].contains_point(p));
        if window.contains_point(p) {
            // The tile holding an admitted point must survive the clip —
            // this is exactly the pruning rule the scatter planner uses.
            let clipped = rects[t]
                .intersection(&window)
                .expect("tile of an admitted point must intersect the window");
            assert!(clipped.contains_point(p));
        }
    }
}

#[test]
fn collinear_points_on_the_window_boundary_stay_inside() {
    // A vertical line of points at x = 500; the window's left edge sits
    // exactly on it. Boundary points are *in* (closed rectangles), so the
    // clip of the dataset MBR against the window must contain every point,
    // and a degenerate (zero-width) clipped rect must still behave.
    let pts: Vec<Point2> = (0..50)
        .map(|i| Point::new([500.0, i as f64 * 20.0]))
        .collect();
    let mbr = Rect::bounding(pts.iter().copied()).expect("mbr");
    assert_eq!(mbr.area(), 0.0, "collinear data has a zero-area MBR");
    let window = Rect2::from_corners([500.0, 0.0], [900.0, 2_000.0]);
    let clipped = mbr.intersection(&window).expect("edge contact intersects");
    assert_eq!(clipped.area(), 0.0);
    for p in &pts {
        assert!(window.contains_point(p), "boundary point {p:?} is inside");
        assert!(clipped.contains_point(p));
    }
    // One ulp to the left and the window no longer admits the line.
    let shifted = Rect2::from_corners(
        [f64::from_bits(500.0f64.to_bits() + 1), 0.0],
        [900.0, 2_000.0],
    );
    assert!(mbr.intersection(&shifted).is_none());

    // Tiling a pure line: dimension 0 has no usable cut, dimension 1
    // still partitions; every tile rect is a zero-width segment that
    // clips against the boundary window without inverting.
    let tiling = StrTiling::build(&pts, 4);
    assert!(tiling.tiles() > 1, "y cuts apply on a vertical line");
    for rect in tiling.tile_rects() {
        let c = rect.intersection(&window).expect("line sits on the edge");
        assert!(c.area() == 0.0);
    }
}

#[test]
fn tree_from_clipped_duplicates_validates_against_the_window() {
    // End to end through the R*-tree: insert only the points a window
    // admits (duplicates included), then validate the tree against the
    // window as a required bound. Exercises bulk structures + the
    // `ValidateOptions::bounds` invariant on ties sitting exactly on the
    // window edge.
    let window = Rect2::from_corners([200.0, 200.0], [600.0, 600.0]);
    let mut rng = Rng::seed_from_u64(43);
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 0);
    let mut tree = RTree::<2>::new(pool, RTreeParams::paper()).unwrap();
    let mut kept = 0u64;
    for i in 0..400u64 {
        // Grid-snapped so many points land exactly on 200/600 edges.
        let p: Point2 = Point::new([
            (rng.random_range(0..11u32) as f64) * 100.0,
            (rng.random_range(0..11u32) as f64) * 100.0,
        ]);
        if window.contains_point(&p) {
            tree.insert(p, i).unwrap();
            kept += 1;
        }
    }
    assert!(
        kept > 20,
        "grid window should admit edge-sitting duplicates"
    );
    let report = tree
        .validate_with_options(ValidateOptions {
            unique_oids: true,
            bounds: Some(window),
        })
        .unwrap();
    assert!(report.is_valid(), "violations: {:?}", report.violations);
    assert_eq!(report.points, kept);
}
