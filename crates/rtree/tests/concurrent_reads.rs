//! Thread-safety contract of the read-only query path: `RTree` is
//! `Send + Sync` by construction (all query methods take `&self`; interior
//! mutability lives in the buffer pool's mutex), so many threads may search
//! one tree concurrently — the foundation the `cpq-service` worker pool
//! stands on.

use cpq_geo::{Point, Point2, Rect};
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn rtree_is_send_sync() {
    assert_send_sync::<RTree<2, Point<2>>>();
    assert_send_sync::<RTree<3, Point<3>>>();
    assert_send_sync::<RTree<2, Rect<2>>>();
}

/// Many threads range-searching one tree (through one shared buffer pool,
/// with a capacity small enough to force concurrent eviction) all see
/// exactly the single-threaded answer.
#[test]
fn concurrent_searches_agree_with_serial() {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 256);
    let mut tree: RTree<2> = RTree::new(pool, RTreeParams::paper()).unwrap();
    // A deterministic LCG point cloud; no external RNG.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let points: Vec<Point2> = (0..4000).map(|_| Point([next(), next()])).collect();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }

    let windows: Vec<Rect<2>> = (0..16)
        .map(|i| {
            let lo = [0.05 * i as f64 / 16.0, 0.4 * i as f64 / 16.0];
            Rect::new(Point(lo), Point([lo[0] + 0.3, lo[1] + 0.4]))
        })
        .collect();
    let serial: Vec<usize> = windows
        .iter()
        .map(|w| tree.range_query(w).unwrap().len())
        .collect();
    // Starve the pool below the working set so readers evict each other's
    // pages mid-search; correctness must not depend on cache residency.
    tree.pool().set_capacity(8);

    std::thread::scope(|s| {
        for t in 0..8 {
            let (tree, windows, serial) = (&tree, &windows, &serial);
            s.spawn(move || {
                for round in 0..5 {
                    let wi = (t + round) % windows.len();
                    let hits = tree.range_query(&windows[wi]).unwrap();
                    assert_eq!(hits.len(), serial[wi], "window {wi} diverged");
                    for e in &hits {
                        assert!(
                            windows[wi].contains_point(&e.object),
                            "window {wi} returned an outside point"
                        );
                    }
                }
            });
        }
    });
}
