//! Failure injection: corrupted pages and freed pages must propagate as
//! `Err` through every query path — never a panic, never silent garbage.

use cpq_geo::Point;
use cpq_rng::Rng;
use cpq_rtree::{RTree, RTreeError, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile, PageId};

fn build(n: usize, seed: u64) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 0);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    let mut rng = Rng::seed_from_u64(seed);
    for i in 0..n as u64 {
        tree.insert(
            Point([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]),
            i,
        )
        .unwrap();
    }
    tree
}

/// Overwrites one page with garbage directly through the pool.
fn corrupt_page(tree: &RTree<2>, id: PageId, pattern: u8) {
    let garbage = vec![pattern; tree.pool().page_size()];
    tree.pool().write_page(id, &garbage).unwrap();
}

#[test]
fn corrupted_root_fails_queries_cleanly() {
    let tree = build(500, 1);
    corrupt_page(&tree, tree.root(), 0xFF);
    let err = tree.knn(&Point([50.0, 50.0]), 3).unwrap_err();
    assert!(matches!(err, RTreeError::CorruptNode { .. }), "got {err}");
    assert!(tree
        .range_query(&cpq_geo::Rect::from_corners([0.0, 0.0], [10.0, 10.0]))
        .is_err());
    assert!(tree.all_objects().is_err());
    assert!(tree.validate().is_err());
}

#[test]
fn corrupted_interior_page_detected_during_traversal() {
    let tree = build(2000, 2);
    assert!(tree.height() >= 3);
    // Corrupt some non-root page (page ids are dense; skip the root).
    let victim = (0..tree.pool().num_pages())
        .map(PageId)
        .find(|&p| p != tree.root())
        .unwrap();
    corrupt_page(&tree, victim, 0xAB);
    // A full scan must hit it and report, not panic.
    let result = tree.all_objects();
    assert!(result.is_err(), "full scan must detect the corrupt page");
}

#[test]
fn zeroed_page_decodes_as_empty_leaf_and_validator_objects() {
    // An all-zero page happens to decode as a level-0 leaf with 0 entries —
    // plausible-looking garbage. The validator must still flag the tree
    // because parent MBRs/cardinalities no longer match.
    let tree = build(2000, 3);
    let victim = (0..tree.pool().num_pages())
        .map(PageId)
        .find(|&p| p != tree.root())
        .unwrap();
    corrupt_page(&tree, victim, 0x00);
    // An Err is also acceptable: the structural walk failed outright.
    if let Ok(report) = tree.validate() {
        assert!(
            !report.is_valid(),
            "validator must flag a zeroed page; got a clean report"
        );
    }
}

#[test]
fn freed_page_read_is_an_error() {
    let tree = build(100, 4);
    // Free a page behind the tree's back.
    let victim = (0..tree.pool().num_pages())
        .map(PageId)
        .find(|&p| p != tree.root())
        .unwrap();
    tree.pool().free_page(victim).unwrap();
    let result = tree.all_objects();
    assert!(result.is_err(), "reading a freed page must fail");
}

#[test]
fn cpq_over_corrupted_tree_reports_error() {
    // The closest-pair algorithms sit on top of read_node; corruption below
    // must surface through their Result, not panic.
    use cpq_storage::DEFAULT_PAGE_SIZE;
    let _ = DEFAULT_PAGE_SIZE;
    let ta = build(800, 5);
    let tb = build(800, 6);
    let victim = (0..tb.pool().num_pages())
        .map(PageId)
        .find(|&p| p != tb.root())
        .unwrap();
    corrupt_page(&tb, victim, 0xEE);
    // Run through the rtree-level scan that the CPQ engine uses; the engine
    // itself is exercised in cpq-core's failure tests.
    assert!(tb.all_objects().is_err());
    assert!(ta.all_objects().is_ok(), "untouched tree keeps working");
}
