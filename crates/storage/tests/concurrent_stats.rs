//! Concurrency guarantees of the buffer pool.
//!
//! The serving layer shares one [`BufferPool`] between many worker threads,
//! so two properties must hold under contention:
//!
//! 1. the pool is `Send + Sync` **by construction** (compile-time asserted
//!    here, so a future `RefCell`/`Rc` regression fails to compile);
//! 2. the counters are exact, not approximate: every counter is bumped in
//!    the same critical section as the page operation it describes, so
//!    after any concurrent workload `logical_reads == hits + misses` and
//!    `misses` equals the physical reads of the backing file.
//!
//! Mid-flight snapshots are held to the pool's documented contract, not to
//! quiescent equalities: miss I/O runs outside the state mutex, so a
//! snapshot taken while another thread faults a page in may observe
//! `io.reads` ahead of `misses` (the physical read happened; its accounting
//! has not). The ledger `logical_reads == hits + misses` is maintained under
//! one mutex and must hold in *every* snapshot; `io.reads == misses` is
//! asserted exactly only once the workers have joined.

use cpq_storage::{BufferPool, BufferStats, IoStats, MemPageFile, PageBytes, PageId};
use std::sync::Arc;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn pool_and_stats_types_are_send_sync() {
    assert_send_sync::<BufferPool>();
    assert_send_sync::<BufferStats>();
    assert_send_sync::<IoStats>();
    assert_send_sync::<PageBytes>();
}

/// A deterministic page-access pattern per thread: a simple LCG keeps the
/// test free of external randomness while still mixing hits and misses.
fn page_sequence(thread: u64, pages: u64, len: usize) -> Vec<PageId> {
    let mut state = thread.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            PageId((state >> 33) as u32 % pages as u32)
        })
        .collect()
}

#[test]
fn concurrent_hammer_keeps_stats_exact() {
    const PAGES: usize = 64;
    const FRAMES: usize = 8;
    const THREADS: u64 = 8;
    const READS_PER_THREAD: usize = 2_000;

    let pool = Arc::new(BufferPool::with_lru(
        Box::new(MemPageFile::new(128)),
        FRAMES,
    ));
    let ids: Vec<PageId> = (0..PAGES)
        .map(|i| {
            let id = pool.allocate().unwrap();
            pool.write_page(id, &[i as u8; 128]).unwrap();
            id
        })
        .collect();
    pool.reset_stats();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            std::thread::spawn(move || {
                for pid in page_sequence(t + 1, PAGES as u64, READS_PER_THREAD) {
                    let bytes = pool.read_page(ids[pid.index()]).unwrap();
                    // Data integrity under concurrent eviction: the page
                    // must hold the pattern written to it.
                    assert!(bytes.iter().all(|&b| b == pid.index() as u8));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader thread panicked");
    }

    let (buf, io) = pool.stats_snapshot();
    let total = THREADS * READS_PER_THREAD as u64;
    assert_eq!(buf.logical_reads, total, "every logical read counted");
    assert_eq!(
        buf.hits + buf.misses,
        buf.logical_reads,
        "reads must partition exactly into hits and misses"
    );
    assert_eq!(
        io.reads, buf.misses,
        "each miss does exactly one physical read"
    );
    assert!(buf.hits > 0, "an 8-frame cache over 64 pages must hit");
    assert!(
        buf.misses > FRAMES as u64,
        "64 pages cannot fit in 8 frames; evictions imply repeated misses"
    );
    // Two threads can fault the same page simultaneously: both count a miss
    // (and a physical read), but only the first installs a frame — the
    // second finds the page resident and keeps the existing frame. So
    // evictions track *installs* beyond the initial fill, which duplicate
    // misses make strictly fewer than `misses - FRAMES`.
    assert!(buf.evictions > 0, "a thrashing pool must evict");
    assert!(
        buf.evictions <= buf.misses - FRAMES as u64,
        "evictions ({}) cannot exceed misses ({}) beyond the initial fill",
        buf.evictions,
        buf.misses
    );
    let rate = buf.hit_rate();
    assert!(rate > 0.0 && rate < 1.0, "hit rate {rate} out of range");
}

#[test]
fn snapshot_is_torn_free_under_load() {
    // One writer thread faults pages through a tiny pool while the main
    // thread snapshots repeatedly: every snapshot must balance internally,
    // which the two-call API cannot guarantee.
    let pool = Arc::new(BufferPool::with_lru(Box::new(MemPageFile::new(64)), 2));
    let ids: Vec<PageId> = (0..16)
        .map(|i| {
            let id = pool.allocate().unwrap();
            pool.write_page(id, &[i as u8; 64]).unwrap();
            id
        })
        .collect();
    pool.reset_stats();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                pool.read_page(ids[i % ids.len()]).unwrap();
                i += 1;
            }
        })
    };
    for _ in 0..5_000 {
        let (buf, io) = pool.stats_snapshot();
        assert_eq!(buf.hits + buf.misses, buf.logical_reads);
        // The physical read of an in-flight miss can be done before its
        // accounting is: `io.reads` may transiently lead `misses`, never
        // trail it.
        assert!(
            io.reads >= buf.misses,
            "io.reads ({}) fell behind misses ({})",
            io.reads,
            buf.misses
        );
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
    let (buf, io) = pool.stats_snapshot();
    assert_eq!(io.reads, buf.misses, "books balance at quiescence");
}

#[test]
fn failed_reads_never_unbalance_the_books() {
    // Four threads mix valid reads with reads that *fail* at the page file
    // (out-of-bounds ids) while a snapshotter continuously cross-checks the
    // invariants. Counters move only on success, so a failed physical read
    // must leave `misses == io.reads` intact — this is exactly the
    // accounting bug where misses were counted before the file read could
    // fail.
    const THREADS: u64 = 4;
    const OPS_PER_THREAD: usize = 2_000;
    const PAGES: usize = 16;

    let pool = Arc::new(BufferPool::with_lru(Box::new(MemPageFile::new(64)), 4));
    let ids: Vec<PageId> = (0..PAGES)
        .map(|i| {
            let id = pool.allocate().unwrap();
            pool.write_page(id, &[i as u8; 64]).unwrap();
            id
        })
        .collect();
    pool.reset_stats();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let snapshotter = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut iterations = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (buf, io) = pool.stats_snapshot();
                assert_eq!(
                    buf.hits + buf.misses,
                    buf.logical_reads,
                    "snapshot out of balance mid-flight"
                );
                // A successful physical read that has not reached the state
                // mutex yet shows up in `io.reads` before `misses`; a failed
                // read shows up in neither. Either way `io.reads` never
                // trails `misses`.
                assert!(
                    io.reads >= buf.misses,
                    "io.reads ({}) fell behind misses ({})",
                    io.reads,
                    buf.misses
                );
                iterations += 1;
            }
            iterations
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            std::thread::spawn(move || {
                let mut failures = 0u64;
                for (n, pid) in page_sequence(t + 100, PAGES as u64, OPS_PER_THREAD)
                    .into_iter()
                    .enumerate()
                {
                    if n % 7 == 3 {
                        // Past the end of the file: the physical read fails.
                        assert!(pool.read_page(PageId(u32::MAX - t as u32)).is_err());
                        failures += 1;
                    } else {
                        pool.read_page(ids[pid.index()]).unwrap();
                    }
                }
                failures
            })
        })
        .collect();
    let mut total_failures = 0u64;
    let mut total_ok = 0u64;
    for h in workers {
        let f = h.join().expect("worker panicked");
        total_failures += f;
        total_ok += OPS_PER_THREAD as u64 - f;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let snaps = snapshotter.join().expect("snapshotter panicked");
    assert!(snaps > 0, "snapshotter must have run");
    assert!(total_failures > 0, "the workload must include failures");

    let (buf, io) = pool.stats_snapshot();
    assert_eq!(
        buf.logical_reads, total_ok,
        "only successful reads are counted"
    );
    assert_eq!(buf.hits + buf.misses, buf.logical_reads);
    assert_eq!(io.reads, buf.misses);
}
