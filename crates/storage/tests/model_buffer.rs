//! Model-checked harness for the buffer pool's stats ledger.
//!
//! Compiled only under `RUSTFLAGS="--cfg cpq_model"`. The positive models
//! run the *real* `BufferPool` — state mutex, file `RwLock`, miss I/O
//! outside the state lock — and check the accounting contract the
//! integration tests assert statistically: `logical_reads == hits + misses`
//! in every observable state, `io.reads == misses` at quiescence but only
//! `io.reads >= misses` mid-flight (the physical read of an in-flight miss
//! lands before its accounting). The negative model reintroduces a
//! lost-update accounting bug and pins the PCT seed that exposes it.
#![cfg(cpq_model)]

use cpq_check::sync::atomic::{AtomicU64, Ordering};
use cpq_check::sync::{Arc, Mutex};
use cpq_check::thread;
use cpq_check::{model_dfs, model_pct, try_model_pct, DfsOptions, PctOptions};
use cpq_storage::{BufferPool, MemPageFile, PageId};

/// A 2-frame pool over three written pages; stats reset to zero.
fn small_pool() -> (Arc<BufferPool>, Vec<PageId>) {
    let pool = Arc::new(BufferPool::with_lru(Box::new(MemPageFile::new(16)), 2));
    let ids: Vec<PageId> = (0..3u8)
        .map(|i| {
            let id = pool.allocate().expect("allocate");
            pool.write_page(id, &[i; 16]).expect("write");
            id
        })
        .collect();
    pool.reset_stats();
    (pool, ids)
}

#[test]
fn dfs_duplicate_miss_keeps_ledger_exact() {
    // Two threads fault the *same* cold page: the duplicate-miss path (both
    // count a miss and a physical read; one installs, the other keeps the
    // existing frame). Every interleaving within the bound must keep the
    // books exact at quiescence and serve the right bytes.
    let report = model_dfs(DfsOptions::smoke(), || {
        let (pool, ids) = small_pool();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let id = ids[0];
                thread::spawn(move || {
                    let bytes = pool.read_page(id).expect("read");
                    assert!(bytes.iter().all(|&b| b == 0), "page 0 holds its pattern");
                })
            })
            .collect();
        for r in readers {
            r.join().expect("reader");
        }
        let (buf, io) = pool.stats_snapshot();
        assert_eq!(buf.logical_reads, 2);
        assert_eq!(buf.hits + buf.misses, buf.logical_reads, "ledger exact");
        assert_eq!(io.reads, buf.misses, "books balance at quiescence");
        assert!(buf.misses >= 1, "a cold page faults at least once");
    });
    assert!(report.complete, "the DFS must exhaust the interleavings");
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

#[test]
fn dfs_snapshot_mid_flight_contract_holds() {
    // A snapshot raced against one in-flight miss: the ledger equality must
    // hold in *every* snapshot (it lives under one mutex), while the
    // physical-vs-accounted bridge may transiently run ahead — the exact
    // contract `stats_snapshot` documents, and the one the integration
    // test `concurrent_stats.rs` asserted too strongly before this harness
    // existed.
    let report = model_dfs(DfsOptions::smoke(), || {
        let (pool, ids) = small_pool();
        let reader = {
            let pool = Arc::clone(&pool);
            let id = ids[1];
            thread::spawn(move || {
                pool.read_page(id).expect("read");
            })
        };
        let (buf, io) = pool.stats_snapshot();
        assert_eq!(
            buf.hits + buf.misses,
            buf.logical_reads,
            "ledger exact mid-flight"
        );
        assert!(io.reads >= buf.misses, "io.reads never trails misses");
        reader.join().expect("reader");
        let (buf, io) = pool.stats_snapshot();
        assert_eq!(io.reads, buf.misses, "books balance at quiescence");
        assert_eq!(buf.logical_reads, 1);
    });
    assert!(report.complete);
}

#[test]
fn pct_failing_reads_never_unbalance_the_books() {
    // The model twin of the integration test of the same name: a failing
    // (out-of-bounds) read races a valid one across 200 seeded schedules;
    // neither counter may move on the failure.
    let opts = PctOptions::from_env();
    let want = opts.seeds.end - opts.seeds.start;
    let n = model_pct(opts, || {
        let (pool, ids) = small_pool();
        let failer = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                assert!(
                    pool.read_page(PageId(u32::MAX)).is_err(),
                    "out-of-bounds read must fail"
                );
            })
        };
        let pool2 = Arc::clone(&pool);
        let id = ids[2];
        let reader = thread::spawn(move || {
            pool2.read_page(id).expect("valid read");
        });
        failer.join().expect("failer");
        reader.join().expect("reader");
        let (buf, io) = pool.stats_snapshot();
        assert_eq!(buf.logical_reads, 1, "only the successful read counts");
        assert_eq!(buf.hits + buf.misses, buf.logical_reads);
        assert_eq!(io.reads, buf.misses);
    });
    assert_eq!(n, want);
}

/// The deliberately-broken ledger: misses accounted by a non-atomic
/// load/store on a shared counter instead of inside the pool's critical
/// section — the lost-update flavor of the accounting bug the pool's
/// "count in the same critical section" rule exists to prevent.
fn broken_ledger_model() {
    let misses = Arc::new(AtomicU64::new(0));
    let ledger = Arc::new(Mutex::new(0u64)); // logical_reads, kept correctly
    let fault_threads: Vec<_> = (0..2)
        .map(|_| {
            let misses = Arc::clone(&misses);
            let ledger = Arc::clone(&ledger);
            thread::spawn(move || {
                *ledger.lock().expect("model lock") += 1;
                // BUG: read-modify-write outside any critical section.
                let v = misses.load(Ordering::SeqCst);
                misses.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for t in fault_threads {
        t.join().expect("fault thread");
    }
    let logical = *ledger.lock().expect("model lock");
    assert_eq!(
        misses.load(Ordering::SeqCst),
        logical,
        "ledger out of balance"
    );
}

/// The PCT seed that exposes [`broken_ledger_model`], pinned by
/// [`broken_ledger_is_found_and_seed_replays`].
const PINNED_LEDGER_SEED: u64 = 1;

#[test]
fn broken_ledger_is_found_and_seed_replays() {
    let failure = try_model_pct(PctOptions::default(), broken_ledger_model)
        .expect_err("the lost update must surface within 200 seeds");
    assert!(
        failure.message.contains("ledger out of balance"),
        "unexpected failure: {failure}"
    );
    let seed = failure.seed.expect("pct failures carry their seed");
    let again = try_model_pct(PctOptions::one_seed(seed), broken_ledger_model)
        .expect_err("the seed alone must reproduce the failure");
    assert_eq!(again.schedule, failure.schedule, "seed replay is exact");
    assert_eq!(
        seed, PINNED_LEDGER_SEED,
        "the first failing seed moved; update PINNED_LEDGER_SEED"
    );
}

#[test]
#[should_panic(expected = "ledger out of balance")]
fn pinned_ledger_seed_still_fails() {
    let _ = cpq_check::model_pct(
        PctOptions::one_seed(PINNED_LEDGER_SEED),
        broken_ledger_model,
    );
}
