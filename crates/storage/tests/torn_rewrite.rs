//! CRC torn-page detection for pages *rewritten* through
//! [`BufferPool::write_page`] — the live-update write path.
//!
//! The original torn-page tests cover pages written once through the raw
//! [`DiskPageFile`]; the live subsystem rewrites pages through the pool
//! (write-through), so the trailer must be recomputed on every rewrite
//! and a torn rewrite (partial sector write of the *new* image over the
//! old one) must surface as `Corrupt` on the next cold read — and must
//! be healed by a subsequent successful rewrite.

use cpq_storage::{crc32, BufferPool, DiskPageFile, PageId, StorageError};
use std::path::PathBuf;

const PAGE_SIZE: usize = 128;
const HEADER_LEN: usize = 16; // v2 header: magic, version, page_size, num_pages
const CRC_LEN: usize = 4;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "cpq-torn-rewrite-{tag}-{}-{:?}.pages",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn page_range(idx: usize) -> std::ops::Range<usize> {
    let start = HEADER_LEN + idx * (PAGE_SIZE + CRC_LEN);
    start..start + PAGE_SIZE
}

#[test]
fn rewrite_through_pool_updates_crc_and_torn_rewrite_is_detected_then_healed() {
    let path = temp_path("pool");
    {
        let file = DiskPageFile::create(&path, PAGE_SIZE).expect("create");
        let pool = BufferPool::with_lru(Box::new(file), 8);
        let a = pool.allocate().expect("alloc a");
        let b = pool.allocate().expect("alloc b");
        pool.write_page(a, &[0x11; PAGE_SIZE]).expect("write a");
        pool.write_page(b, &[0x22; PAGE_SIZE]).expect("write b");
        // The rewrites: same pages, new images, through the pool.
        pool.write_page(a, &[0x33; PAGE_SIZE]).expect("rewrite a");
        pool.write_page(b, &[0x44; PAGE_SIZE]).expect("rewrite b");
        pool.sync().expect("sync");
    }

    // Raw disk check: both trailers match the *rewritten* images.
    {
        let raw = std::fs::read(&path).expect("read raw");
        for (idx, fill) in [(0usize, 0x33u8), (1, 0x44)] {
            let body = &raw[page_range(idx)];
            assert!(body.iter().all(|&x| x == fill), "page {idx} body stale");
            let tr_start = page_range(idx).end;
            let stored = u32::from_le_bytes(
                raw[tr_start..tr_start + CRC_LEN]
                    .try_into()
                    .expect("trailer"),
            );
            assert_eq!(stored, crc32(body), "page {idx} trailer not recomputed");
        }
    }

    // Tear page 1's rewrite: first half of the page keeps the new image,
    // second half reverts to the old one — a classic partial sector
    // write. The trailer (written with the new image) can't match.
    {
        let mut raw = std::fs::read(&path).expect("read raw");
        let r = page_range(1);
        raw[r.start + PAGE_SIZE / 2..r.end].fill(0x22);
        std::fs::write(&path, raw).expect("write raw");
    }

    // A cold pool read surfaces the corruption; the intact page reads
    // fine; the failed read counts no successful physical read.
    {
        let file = DiskPageFile::open(&path).expect("open");
        let pool = BufferPool::with_lru(Box::new(file), 8);
        let bytes = pool.read_page(PageId(0)).expect("page 0");
        assert!(bytes.iter().all(|&x| x == 0x33));
        match pool.read_page(PageId(1)) {
            Err(StorageError::Corrupt {
                page,
                stored,
                computed,
            }) => {
                assert_eq!(page, PageId(1));
                assert_ne!(stored, computed);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let (buf, io) = pool.stats_snapshot();
        assert_eq!(io.reads, 1, "corrupt read must not count");
        assert_eq!(buf.misses, io.reads, "ledger must exclude failed reads");

        // A successful rewrite through the pool heals the torn page...
        pool.write_page(PageId(1), &[0x55; PAGE_SIZE])
            .expect("heal");
        let bytes = pool.read_page(PageId(1)).expect("healed read");
        assert!(bytes.iter().all(|&x| x == 0x55));
        pool.sync().expect("sync");
    }

    // ...durably: a fresh open reads it clean too.
    {
        let file = DiskPageFile::open(&path).expect("reopen");
        let pool = BufferPool::with_lru(Box::new(file), 8);
        let bytes = pool.read_page(PageId(1)).expect("page 1");
        assert!(bytes.iter().all(|&x| x == 0x55));
    }
    let _ = std::fs::remove_file(&path);
}
