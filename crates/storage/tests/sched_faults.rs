//! Fault injection under the I/O scheduler: `FailingPageFile` routed
//! through `SchedPageFile` and a scheduled `BufferPool`.
//!
//! What must hold when the disk misbehaves under an async scheduler:
//!
//! * **Exactly-one-error surfacing** — an injected nth-read failure fires
//!   on one demand and exactly one caller sees it; a persistently corrupt
//!   page inside a coalesced batch fails exactly its own demand while its
//!   batch-mates are delivered via the per-page fallback.
//! * **No stuck completion flags** — after any failure, subsequent reads
//!   of the same page succeed; dropping the scheduler fails anything
//!   still pending rather than leaving waiters hung.
//! * **Ledger exactness** — the pool invariant `misses == io.reads` holds
//!   at quiescence even with prefetch in flight and faults firing:
//!   demand accounting counts completed demands, never raw device reads.

use cpq_storage::{
    BufferPool, FailingPageFile, FailureControl, MemPageFile, PageFile, PageId, SchedConfig,
    SchedPageFile, StorageError,
};
use std::sync::Arc;
use std::time::Duration;

/// A failing file over `pages` written mem pages, plus its control.
fn failing_file(pages: u8, ps: usize) -> (Box<FailingPageFile>, Arc<FailureControl>) {
    let mut inner = MemPageFile::new(ps);
    for i in 0..pages {
        let id = inner.allocate().expect("allocate");
        inner.write(id, &vec![i; ps]).expect("write");
    }
    let control = FailureControl::new();
    let file = FailingPageFile::new(Box::new(inner), Arc::clone(&control));
    (Box::new(file), control)
}

#[test]
fn nth_read_failure_surfaces_once_and_recovers() {
    let (file, control) = failing_file(4, 32);
    let sf = SchedPageFile::new(file, SchedConfig::default());
    let h = sf.handle();
    control.fail_read(1);
    // Sequential demands of distinct pages: single-page batches, so the
    // injected error is delivered directly to its demand — exactly once.
    let mut errors = 0;
    for i in 0..4u32 {
        if h.demand(PageId(i)).is_err() {
            errors += 1;
        }
    }
    assert_eq!(errors, 1, "the armed fault fires on exactly one demand");
    // No stuck flags: every page reads fine afterwards.
    for i in 0..4u32 {
        let bytes = h.demand(PageId(i)).expect("post-fault read");
        assert!(bytes.iter().all(|&b| b == i as u8));
    }
    let s = h.stats();
    assert_eq!(s.demand_reads, 3 + 4, "the failed demand is not counted");
}

#[test]
fn corrupt_page_in_coalesced_batch_fails_exactly_itself() {
    let (file, control) = failing_file(8, 32);
    // One I/O thread + a wide window: a contiguous 8-page submit-all run
    // coalesces into one span, which the corrupt page then degrades.
    let cfg = SchedConfig {
        io_threads: 1,
        coalesce_window: 8,
        prefetch_buffer: 8,
    };
    control.corrupt(PageId(3));
    let sf = SchedPageFile::new(file, cfg);
    let h = sf.handle();
    let tickets: Vec<_> = (0..8).map(|i| h.submit(PageId(i))).collect();
    let mut failed = Vec::new();
    for (i, t) in tickets.into_iter().enumerate() {
        match h.finish(t) {
            Ok(bytes) => assert!(bytes.iter().all(|&b| b == i as u8)),
            Err(e) => {
                assert!(
                    matches!(e, StorageError::Corrupt { page, .. } if page == PageId(3)),
                    "wrong error for page {i}: {e}"
                );
                failed.push(i);
            }
        }
    }
    assert_eq!(failed, vec![3], "exactly the corrupt page fails");
    let s = h.stats();
    assert_eq!(s.demand_reads, 7);
    assert!(
        s.batch_fallbacks >= 1,
        "the poisoned span must degrade to per-page reads: {s:?}"
    );
    // The corruption is persistent: it keeps failing, everyone else keeps
    // working, and nothing wedges.
    assert!(h.demand(PageId(3)).is_err());
    assert!(h.demand(PageId(2)).is_ok());
}

#[test]
fn slow_reads_with_prefetch_keep_pool_ledger_exact() {
    let (file, control) = failing_file(16, 32);
    control.slow_reads(Duration::from_micros(300));
    let pool = Arc::new(BufferPool::with_lru_scheduled(
        file,
        0, // zero-buffer config: every logical read is a miss
        SchedConfig {
            io_threads: 2,
            coalesce_window: 4,
            prefetch_buffer: 16,
        },
    ));
    pool.reset_stats();
    let ids: Vec<PageId> = (0..16).map(PageId).collect();
    // Prefetch ahead of four reader threads, with latency injected so
    // demands genuinely land while prefetches are still in flight.
    pool.prefetch(&ids);
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            scope.spawn(move || {
                for round in 0..3usize {
                    for (j, &id) in ids.iter().enumerate() {
                        if (j + t + round) % 3 == 0 {
                            let bytes = pool.read_page(id).expect("read");
                            assert!(bytes.iter().all(|&b| b == id.0 as u8));
                        } else {
                            let got = pool.get_many(&[id]).expect("get_many");
                            assert!(got[0].iter().all(|&b| b == id.0 as u8));
                        }
                    }
                }
            });
        }
    });
    control.disarm();
    let (b, io) = pool.stats_snapshot();
    assert_eq!(b.logical_reads, 4 * 3 * 16);
    assert_eq!(b.hits, 0, "capacity 0 never hits");
    assert_eq!(b.misses, b.logical_reads);
    assert_eq!(
        io.reads, b.misses,
        "ledger exact at quiescence with prefetch in flight"
    );
    let s = pool.sched_stats().expect("scheduled pool");
    assert_eq!(s.demand_reads, io.reads);
    assert!(
        s.prefetch_hits + s.dedup_joins > 0,
        "overlapping demands under latency must share reads: {s:?}"
    );
    // Physical reads are bounded: at most one per demand plus the
    // prefetched pages (dedup/hits can only reduce the total).
    assert!(s.physical_pages <= s.demand_reads + s.prefetch_issued);
}

#[test]
fn fault_during_pool_get_many_accounts_only_successes() {
    let (file, control) = failing_file(6, 32);
    let pool = BufferPool::with_lru_scheduled(file, 0, SchedConfig::default());
    pool.reset_stats();
    control.corrupt(PageId(2));
    let ids: Vec<PageId> = (0..6).map(PageId).collect();
    let err = pool.get_many(&ids).expect_err("corrupt page must fail");
    assert!(matches!(err, StorageError::Corrupt { page, .. } if page == PageId(2)));
    let (b, io) = pool.stats_snapshot();
    assert_eq!(b.misses, 5, "five pages succeeded, one failed");
    assert_eq!(io.reads, 5, "books balance after the fault");
    assert_eq!(b.logical_reads, b.hits + b.misses);
    // No stuck flags: clearing the fault makes the whole batch readable.
    control.disarm();
    let pages = pool.get_many(&ids).expect("clean batch");
    assert_eq!(pages.len(), 6);
    let (b, io) = pool.stats_snapshot();
    assert_eq!(b.misses, 11);
    assert_eq!(io.reads, 11);
}

#[test]
fn shutdown_with_slow_prefetch_leaves_no_waiter_hung() {
    let (file, control) = failing_file(8, 32);
    control.slow_reads(Duration::from_millis(2));
    let sf = SchedPageFile::new(
        file,
        SchedConfig {
            io_threads: 1,
            coalesce_window: 1, // one slow page per batch: queue stays full
            prefetch_buffer: 8,
        },
    );
    let h = sf.handle();
    h.prefetch(&(0..8).map(PageId).collect::<Vec<_>>());
    // Drop the scheduler while prefetches are queued/in flight: Drop must
    // drain everything (completing or failing it), never hang this test.
    drop(sf);
    assert_eq!(h.queue_depth(), 0, "drop drains the queues");
    let s = h.stats();
    assert_eq!(
        s.prefetch_issued,
        s.prefetch_hits + s.prefetch_waste,
        "every issued prefetch is accounted as hit or waste at shutdown: {s:?}"
    );
}
