//! Page file implementations: a simulated in-memory disk and a real file.

use crate::crc32::crc32;
use crate::error::{StorageError, StorageResult};
use crate::page::PageId;
use crate::stats::IoStats;
use cpq_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::cell::RefCell;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::os::unix::fs::{FileExt, OpenOptionsExt};
use std::path::Path;

/// A flat, growable array of fixed-size pages with a free list.
///
/// This is the "disk" of the reproduction. Implementations count every
/// physical read/write in [`IoStats`]; the benchmark harness reports those
/// counts as the paper's *disk accesses*.
///
/// `read` takes `&self` so independent reads may proceed concurrently (the
/// buffer pool holds the file behind a `RwLock` and performs miss I/O under
/// the read guard); mutating operations (`allocate`/`write`/`free`) take
/// `&mut self` and are serialized by the pool's write guard.
pub trait PageFile: Send + Sync {
    /// Size of every page in bytes.
    fn page_size(&self) -> usize;

    /// Number of pages ever allocated (including freed ones).
    fn num_pages(&self) -> u32;

    /// Allocates a page (reusing a freed one if available) and returns its id.
    fn allocate(&mut self) -> StorageResult<PageId>;

    /// Reads page `id` into `buf` (`buf.len()` must equal `page_size`).
    fn read(&self, id: PageId, buf: &mut [u8]) -> StorageResult<()>;

    /// Reads `n` consecutive pages starting at `first` into `buf`
    /// (`buf.len()` must equal `n * page_size`), page `first + i` landing at
    /// `buf[i * page_size..]`.
    ///
    /// The default delegates to [`read`](Self::read) page by page, so every
    /// implementation (including fault-injecting decorators, which keep
    /// their per-page injection semantics) supports runs. File-backed
    /// stores override this with a single positioned read of the whole span
    /// — the coalescing primitive the I/O scheduler builds on. On error the
    /// contents of `buf` are unspecified; no page of a failed run may be
    /// counted as physically read more than once.
    fn read_run(&self, first: PageId, n: usize, buf: &mut [u8]) -> StorageResult<()> {
        let ps = self.page_size();
        if buf.len() != n * ps {
            return Err(StorageError::WrongBufferSize {
                expected: n * ps,
                actual: buf.len(),
            });
        }
        for (i, chunk) in buf.chunks_mut(ps).enumerate() {
            self.read(PageId(first.0 + i as u32), chunk)?;
        }
        Ok(())
    }

    /// Writes `data` (exactly `page_size` bytes) to page `id`.
    fn write(&mut self, id: PageId, data: &[u8]) -> StorageResult<()>;

    /// Returns page `id` to the free list.
    fn free(&mut self, id: PageId) -> StorageResult<()>;

    /// Physical I/O counters.
    fn stats(&self) -> IoStats;

    /// Resets the physical I/O counters to zero.
    fn reset_stats(&mut self);

    /// Flushes buffered state (header, dirty metadata) to durable
    /// storage so the file can be reopened. No-op for purely in-memory
    /// files — the default.
    fn sync(&mut self) -> StorageResult<()> {
        Ok(())
    }
}

/// In-memory simulated disk.
///
/// Pages live in a `Vec`; reads and writes are `memcpy`s but are counted
/// exactly as a real disk would be. This is what the experiments use — the
/// paper's cost metric is the *number* of accesses, which is hardware
/// independent.
pub struct MemPageFile {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    free_list: Vec<PageId>,
    stats: IoStats,
    /// Successful physical reads. Atomic because `read` takes `&self` and
    /// may run concurrently from several threads.
    reads: AtomicU64,
}

impl MemPageFile {
    /// Creates an empty file with the given page size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        MemPageFile {
            page_size,
            pages: Vec::new(),
            free_list: Vec::new(),
            stats: IoStats::default(),
            reads: AtomicU64::new(0),
        }
    }

    fn slot(&self, id: PageId) -> StorageResult<&Option<Box<[u8]>>> {
        self.pages
            .get(id.index())
            .ok_or(StorageError::PageOutOfBounds(id))
    }

    fn check_len(&self, len: usize) -> StorageResult<()> {
        if len != self.page_size {
            return Err(StorageError::WrongBufferSize {
                expected: self.page_size,
                actual: len,
            });
        }
        Ok(())
    }
}

impl PageFile for MemPageFile {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    fn allocate(&mut self) -> StorageResult<PageId> {
        self.stats.allocations += 1;
        if let Some(id) = self.free_list.pop() {
            self.pages[id.index()] = Some(vec![0; self.page_size].into_boxed_slice());
            return Ok(id);
        }
        let id = PageId(self.pages.len() as u32);
        self.pages
            .push(Some(vec![0; self.page_size].into_boxed_slice()));
        Ok(id)
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> StorageResult<()> {
        self.check_len(buf.len())?;
        match self.slot(id)? {
            Some(data) => {
                buf.copy_from_slice(data);
                // ordering: Relaxed — pure I/O counter; readers reconcile
                // it against buffer-pool books only at quiescence.
                self.reads.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            None => Err(StorageError::PageFreed(id)),
        }
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> StorageResult<()> {
        self.check_len(data.len())?;
        match self
            .pages
            .get_mut(id.index())
            .ok_or(StorageError::PageOutOfBounds(id))?
        {
            Some(page) => {
                page.copy_from_slice(data);
                self.stats.writes += 1;
                Ok(())
            }
            None => Err(StorageError::PageFreed(id)),
        }
    }

    fn free(&mut self, id: PageId) -> StorageResult<()> {
        match self
            .pages
            .get_mut(id.index())
            .ok_or(StorageError::PageOutOfBounds(id))?
        {
            slot @ Some(_) => {
                *slot = None;
                self.free_list.push(id);
                self.stats.frees += 1;
                Ok(())
            }
            None => Err(StorageError::PageFreed(id)),
        }
    }

    fn stats(&self) -> IoStats {
        IoStats {
            // ordering: Relaxed — counter read; see `read`.
            reads: self.reads.load(Ordering::Relaxed),
            ..self.stats
        }
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        // ordering: Relaxed — reset runs under the pool's exclusive write
        // guard (`&mut self`), so no concurrent reader exists.
        self.reads.store(0, Ordering::Relaxed);
    }
}

const DISK_MAGIC: u32 = 0x5250_5146; // "RPQF"
const HEADER_LEN: u64 = 16;
/// Bytes of the per-page CRC-32 trailer (format version 2).
const CRC_LEN: usize = 4;

/// Linux `O_DIRECT` open flag for the architectures this repo builds on
/// (the value is architecture-specific); `None` means direct I/O is not
/// attempted and opens fall back to buffered immediately.
#[cfg(target_arch = "x86_64")]
const O_DIRECT: Option<i32> = Some(0x4000);
#[cfg(target_arch = "aarch64")]
const O_DIRECT: Option<i32> = Some(0x1_0000);
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
const O_DIRECT: Option<i32> = None;

/// Offset and memory alignment used for direct-I/O reads. 4096 covers the
/// logical block size of every storage stack we target (512e and 4Kn).
const DIRECT_ALIGN: usize = 4096;

std::thread_local! {
    /// Per-thread scratch for de-striping checksummed pages and runs;
    /// reused across reads so steady-state read paths allocate nothing.
    static DISK_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
    /// Per-thread scratch for aligned direct-I/O spans (separate from
    /// `DISK_SCRATCH`: a checksummed direct read borrows both at once).
    static DIRECT_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// File-backed page store.
///
/// Layout: a 16-byte header (magic, version, page size, page count) followed
/// by the pages. The free list is kept in memory only; it is rebuilt empty on
/// open, which is sound (freed pages are simply not reused across sessions).
///
/// Format version 2 (what [`create`](Self::create) writes) stores a CRC-32
/// trailer after every page, verified on each read — a flipped byte on disk
/// surfaces as [`StorageError::Corrupt`] instead of silently feeding garbage
/// to the R-tree decoder. Version-1 files (no trailers) still open and read.
///
/// Reads use positioned I/O (`pread`), so concurrent readers never contend
/// on a shared cursor; the cursor is only used by `&mut self` operations.
pub struct DiskPageFile {
    file: File,
    page_size: usize,
    num_pages: u32,
    free_list: Vec<PageId>,
    stats: IoStats,
    /// Successful physical reads (atomic: `read` takes `&self`).
    reads: AtomicU64,
    /// Version-2 layout: per-page CRC trailers present and verified.
    checksums: bool,
    /// Second read-only handle opened with `O_DIRECT`, when requested and
    /// the filesystem accepted the flag. Writes always use the buffered
    /// `file` handle (Linux keeps direct reads coherent with flushed
    /// buffered writes; the header rewrite path stays simple).
    direct: Option<File>,
    /// One-way latch: cleared the first time a direct read fails (e.g. the
    /// filesystem accepted the open but rejects unbuffered reads), after
    /// which every read uses the buffered handle.
    direct_ok: AtomicBool,
}

impl DiskPageFile {
    /// Creates a new page file at `path`, truncating any existing file.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> StorageResult<Self> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut this = DiskPageFile {
            file,
            page_size,
            num_pages: 0,
            free_list: Vec::new(),
            stats: IoStats::default(),
            reads: AtomicU64::new(0),
            checksums: true,
            direct: None,
            direct_ok: AtomicBool::new(false),
        };
        this.write_header()?;
        Ok(this)
    }

    /// [`create`](Self::create), then best-effort enable direct I/O for
    /// reads. Filesystems that refuse `O_DIRECT` (tmpfs, some overlays) and
    /// architectures without a known flag value fall back to buffered reads
    /// silently; [`direct_io`](Self::direct_io) reports what is in effect.
    pub fn create_direct<P: AsRef<Path>>(path: P, page_size: usize) -> StorageResult<Self> {
        let mut this = Self::create(path.as_ref(), page_size)?;
        this.enable_direct(path.as_ref());
        Ok(this)
    }

    /// [`open`](Self::open), then best-effort enable direct I/O for reads
    /// (same fallback rules as [`create_direct`](Self::create_direct)).
    pub fn open_direct<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let mut this = Self::open(path.as_ref())?;
        this.enable_direct(path.as_ref());
        Ok(this)
    }

    fn enable_direct(&mut self, path: &Path) {
        let Some(flag) = O_DIRECT else { return };
        if let Ok(f) = OpenOptions::new().read(true).custom_flags(flag).open(path) {
            self.direct = Some(f);
            // ordering: Relaxed — the latch is set before the file is
            // shared (`&mut self`); readers only ever clear it.
            self.direct_ok.store(true, Ordering::Relaxed);
        }
    }

    /// Whether reads currently bypass the OS page cache (`O_DIRECT`).
    pub fn direct_io(&self) -> bool {
        // ordering: Relaxed — one-way latch; a stale `true` costs at most
        // one extra failed pread before the buffered fallback.
        self.direct.is_some() && self.direct_ok.load(Ordering::Relaxed)
    }

    /// Opens an existing page file and validates its header.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        // analyze: allow(panic-path) — 4-byte windows of a fixed-size header
        // buffer cannot fail the slice-to-array conversion.
        let word = |at: usize| u32::from_le_bytes(header[at..at + 4].try_into().unwrap());
        let magic = word(0);
        if magic != DISK_MAGIC {
            return Err(StorageError::CorruptHeader(format!("bad magic {magic:#x}")));
        }
        let version = word(4);
        let checksums = match version {
            1 => false, // pre-checksum layout: pages are packed back to back
            2 => true,
            _ => {
                return Err(StorageError::CorruptHeader(format!(
                    "unsupported version {version}"
                )))
            }
        };
        let page_size = word(8) as usize;
        let num_pages = word(12);
        if page_size == 0 {
            return Err(StorageError::CorruptHeader("zero page size".into()));
        }
        Ok(DiskPageFile {
            file,
            page_size,
            num_pages,
            free_list: Vec::new(),
            stats: IoStats::default(),
            reads: AtomicU64::new(0),
            checksums,
            direct: None,
            direct_ok: AtomicBool::new(false),
        })
    }

    fn write_header(&mut self) -> StorageResult<()> {
        let mut header = [0u8; HEADER_LEN as usize];
        let version: u32 = if self.checksums { 2 } else { 1 };
        header[0..4].copy_from_slice(&DISK_MAGIC.to_le_bytes());
        header[4..8].copy_from_slice(&version.to_le_bytes());
        header[8..12].copy_from_slice(&(self.page_size as u32).to_le_bytes());
        header[12..16].copy_from_slice(&self.num_pages.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        Ok(())
    }

    /// On-disk bytes each page occupies: the page itself plus, in the
    /// checksummed layout, its CRC trailer.
    fn stride(&self) -> u64 {
        self.page_size as u64 + if self.checksums { CRC_LEN as u64 } else { 0 }
    }

    fn offset(&self, id: PageId) -> u64 {
        HEADER_LEN + id.index() as u64 * self.stride()
    }

    fn check_id(&self, id: PageId) -> StorageResult<()> {
        if id.index() >= self.num_pages as usize {
            return Err(StorageError::PageOutOfBounds(id));
        }
        Ok(())
    }

    fn check_len(&self, len: usize) -> StorageResult<()> {
        if len != self.page_size {
            return Err(StorageError::WrongBufferSize {
                expected: self.page_size,
                actual: len,
            });
        }
        Ok(())
    }

    /// Flushes file contents and header to the OS.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.write_header()?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Reads `out.len()` bytes at byte offset `off`, via the direct handle
    /// when it is active (falling back to — and latching — buffered reads
    /// on the first direct failure), else via buffered `pread`.
    fn read_span(&self, off: u64, out: &mut [u8]) -> StorageResult<()> {
        if let Some(direct) = &self.direct {
            // ordering: Relaxed — one-way latch; see `direct_io`.
            if self.direct_ok.load(Ordering::Relaxed) {
                match Self::read_span_direct(direct, off, out) {
                    Ok(()) => return Ok(()),
                    Err(_) => {
                        // ordering: Relaxed — latch clear; the buffered
                        // retry below is always coherent, so the only
                        // effect of staleness is a redundant failed pread.
                        self.direct_ok.store(false, Ordering::Relaxed);
                    }
                }
            }
        }
        self.file.read_exact_at(out, off)?;
        Ok(())
    }

    /// Direct-I/O span read: expands `[off, off + out.len())` to
    /// `DIRECT_ALIGN` boundaries, reads the expanded span into an aligned
    /// per-thread scratch buffer, and copies the requested window out.
    /// Short reads are retried; EOF inside the requested window is an
    /// error (the aligned span may legitimately extend past EOF).
    fn read_span_direct(file: &File, off: u64, out: &mut [u8]) -> std::io::Result<()> {
        let a = DIRECT_ALIGN as u64;
        let lo = off / a * a;
        let hi = (off + out.len() as u64).div_ceil(a) * a;
        let span = (hi - lo) as usize;
        let skip = (off - lo) as usize;
        let needed = skip + out.len();
        DIRECT_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            // Over-allocate so an aligned window of `span` bytes exists
            // inside the buffer without unsafe pointer work.
            if scratch.len() < span + DIRECT_ALIGN {
                scratch.resize(span + DIRECT_ALIGN, 0);
            }
            let addr = scratch.as_ptr() as usize;
            let pad = (DIRECT_ALIGN - addr % DIRECT_ALIGN) % DIRECT_ALIGN;
            let aligned = &mut scratch[pad..pad + span];
            let mut filled = 0usize;
            while filled < needed {
                let n = file.read_at(&mut aligned[filled..], lo + filled as u64)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "direct read hit end of file inside a page span",
                    ));
                }
                filled += n;
            }
            out.copy_from_slice(&aligned[skip..needed]);
            Ok(())
        })
    }

    /// Copies page `slot` out of a raw striped span (starting at page
    /// `base`) into `buf`, verifying its CRC trailer.
    fn destripe_page(
        &self,
        raw: &[u8],
        base: PageId,
        slot: usize,
        buf: &mut [u8],
    ) -> StorageResult<()> {
        let stride = self.stride() as usize;
        let start = slot * stride;
        buf.copy_from_slice(&raw[start..start + self.page_size]);
        let stored = u32::from_le_bytes(
            raw[start + self.page_size..start + stride]
                .try_into()
                // analyze: allow(panic-path) — a 4-byte window of the stride
                // buffer cannot fail the slice-to-array conversion.
                .expect("trailer window is 4 bytes"),
        );
        let computed = crc32(buf);
        if stored != computed {
            return Err(StorageError::Corrupt {
                page: PageId(base.0 + slot as u32),
                stored,
                computed,
            });
        }
        Ok(())
    }
}

impl PageFile for DiskPageFile {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn allocate(&mut self) -> StorageResult<PageId> {
        self.stats.allocations += 1;
        if let Some(id) = self.free_list.pop() {
            return Ok(id);
        }
        let id = PageId(self.num_pages);
        self.num_pages += 1;
        // Extend the file with a zero page so subsequent reads succeed.
        let zeros = vec![0u8; self.page_size];
        self.file.seek(SeekFrom::Start(self.offset(id)))?;
        self.file.write_all(&zeros)?;
        if self.checksums {
            self.file.write_all(&crc32(&zeros).to_le_bytes())?;
        }
        self.write_header()?;
        Ok(id)
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> StorageResult<()> {
        self.check_id(id)?;
        self.check_len(buf.len())?;
        let off = self.offset(id);
        if self.checksums {
            // One positioned read of page + trailer into per-thread
            // scratch (the old two-pread shape paid a second syscall per
            // page), then verify while copying out.
            let stride = self.stride() as usize;
            DISK_SCRATCH.with(|cell| {
                let mut scratch = cell.borrow_mut();
                if scratch.len() < stride {
                    scratch.resize(stride, 0);
                }
                self.read_span(off, &mut scratch[..stride])?;
                self.destripe_page(&scratch[..stride], id, 0, buf)
            })?;
        } else {
            self.read_span(off, buf)?;
        }
        // ordering: Relaxed — pure I/O counter; see `MemPageFile::read`.
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn read_run(&self, first: PageId, n: usize, buf: &mut [u8]) -> StorageResult<()> {
        if buf.len() != n * self.page_size {
            return Err(StorageError::WrongBufferSize {
                expected: n * self.page_size,
                actual: buf.len(),
            });
        }
        if n == 0 {
            return Ok(());
        }
        let last = PageId(first.0 + (n as u32 - 1));
        self.check_id(first)?;
        self.check_id(last)?;
        let off = self.offset(first);
        if self.checksums {
            let stride = self.stride() as usize;
            let span = n * stride;
            DISK_SCRATCH.with(|cell| {
                let mut scratch = cell.borrow_mut();
                if scratch.len() < span {
                    scratch.resize(span, 0);
                }
                self.read_span(off, &mut scratch[..span])?;
                for (slot, page_buf) in buf.chunks_mut(self.page_size).enumerate() {
                    self.destripe_page(&scratch[..span], first, slot, page_buf)?;
                }
                Ok::<(), StorageError>(())
            })?;
        } else {
            // Version-1 layout has no trailers: pages are packed back to
            // back, so the whole run is one contiguous span.
            self.read_span(off, buf)?;
        }
        // A failed run counts no page (callers re-read page by page to
        // attribute the failure, and those reads count normally).
        // ordering: Relaxed — pure I/O counter; see `MemPageFile::read`.
        self.reads.fetch_add(n as u64, Ordering::Relaxed);
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> StorageResult<()> {
        self.check_id(id)?;
        self.check_len(data.len())?;
        self.file.seek(SeekFrom::Start(self.offset(id)))?;
        self.file.write_all(data)?;
        if self.checksums {
            self.file.write_all(&crc32(data).to_le_bytes())?;
        }
        self.stats.writes += 1;
        Ok(())
    }

    fn free(&mut self, id: PageId) -> StorageResult<()> {
        self.check_id(id)?;
        self.free_list.push(id);
        self.stats.frees += 1;
        Ok(())
    }

    fn stats(&self) -> IoStats {
        IoStats {
            // ordering: Relaxed — counter read; see `MemPageFile::stats`.
            reads: self.reads.load(Ordering::Relaxed),
            ..self.stats
        }
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        // ordering: Relaxed — reset runs under `&mut self` (see
        // `MemPageFile::reset_stats`).
        self.reads.store(0, Ordering::Relaxed);
    }

    fn sync(&mut self) -> StorageResult<()> {
        DiskPageFile::sync(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(file: &mut dyn PageFile) {
        let ps = file.page_size();
        let a = file.allocate().unwrap();
        let b = file.allocate().unwrap();
        assert_ne!(a, b);

        let data_a = vec![0xAB; ps];
        let data_b = vec![0xCD; ps];
        file.write(a, &data_a).unwrap();
        file.write(b, &data_b).unwrap();

        let mut buf = vec![0; ps];
        file.read(a, &mut buf).unwrap();
        assert_eq!(buf, data_a);
        file.read(b, &mut buf).unwrap();
        assert_eq!(buf, data_b);

        let s = file.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
        assert_eq!(s.allocations, 2);
    }

    #[test]
    fn mem_roundtrip() {
        let mut f = MemPageFile::new(128);
        roundtrip(&mut f);
    }

    #[test]
    fn mem_free_and_reuse() {
        let mut f = MemPageFile::new(64);
        let a = f.allocate().unwrap();
        f.free(a).unwrap();
        assert!(matches!(
            f.read(a, &mut [0; 64]),
            Err(StorageError::PageFreed(_))
        ));
        let b = f.allocate().unwrap();
        assert_eq!(a, b, "freed page must be reused");
        // Reused page must be zeroed.
        let mut buf = vec![1; 64];
        f.read(b, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn mem_bounds_and_size_checks() {
        let mut f = MemPageFile::new(64);
        assert!(matches!(
            f.read(PageId(5), &mut [0; 64]),
            Err(StorageError::PageOutOfBounds(_))
        ));
        let a = f.allocate().unwrap();
        assert!(matches!(
            f.write(a, &[0; 10]),
            Err(StorageError::WrongBufferSize { .. })
        ));
    }

    #[test]
    fn mem_reset_stats() {
        let mut f = MemPageFile::new(64);
        let a = f.allocate().unwrap();
        f.write(a, &[0; 64]).unwrap();
        f.read(a, &mut [0; 64]).unwrap();
        f.reset_stats();
        assert_eq!(f.stats(), IoStats::default());
    }

    #[test]
    fn concurrent_reads_count_exactly() {
        let mut f = MemPageFile::new(64);
        let a = f.allocate().unwrap();
        f.write(a, &[7; 64]).unwrap();
        let f = &f;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    let mut buf = [0u8; 64];
                    for _ in 0..100 {
                        f.read(a, &mut buf).unwrap();
                        assert_eq!(buf, [7; 64]);
                    }
                });
            }
        });
        assert_eq!(f.stats().reads, 400);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cpq-storage-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn disk_roundtrip_and_reopen() {
        let path = temp_path("roundtrip");
        {
            let mut f = DiskPageFile::create(&path, 128).unwrap();
            roundtrip(&mut f);
            f.sync().unwrap();
        }
        {
            let f = DiskPageFile::open(&path).unwrap();
            assert_eq!(f.page_size(), 128);
            assert_eq!(f.num_pages(), 2);
            let f = f;
            let mut buf = vec![0; 128];
            f.read(PageId(0), &mut buf).unwrap();
            assert_eq!(buf, vec![0xAB; 128]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_detects_byte_flip_on_disk() {
        let path = temp_path("byteflip");
        let page_size = 128usize;
        {
            let mut f = DiskPageFile::create(&path, page_size).unwrap();
            let a = f.allocate().unwrap();
            let b = f.allocate().unwrap();
            f.write(a, &[0x5A; 128]).unwrap();
            f.write(b, &[0xA5; 128]).unwrap();
            f.sync().unwrap();
        }
        // Flip one byte in the middle of page 1's on-disk data (v2 stride is
        // page_size + 4 trailer bytes).
        {
            let mut raw = std::fs::read(&path).unwrap();
            let off = HEADER_LEN as usize + (page_size + CRC_LEN) + page_size / 2;
            raw[off] ^= 0x40;
            std::fs::write(&path, raw).unwrap();
        }
        {
            let f = DiskPageFile::open(&path).unwrap();
            let mut buf = vec![0u8; page_size];
            // The untouched page still reads clean...
            f.read(PageId(0), &mut buf).unwrap();
            assert_eq!(buf, vec![0x5A; page_size]);
            // ...the flipped one surfaces as Corrupt with both checksums.
            match f.read(PageId(1), &mut buf) {
                Err(StorageError::Corrupt {
                    page,
                    stored,
                    computed,
                }) => {
                    assert_eq!(page, PageId(1));
                    assert_ne!(stored, computed);
                }
                other => panic!("expected Corrupt, got {other:?}"),
            }
            // A corrupt read must not count as a successful physical read.
            assert_eq!(f.stats().reads, 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_v1_files_still_open() {
        // Hand-build a version-1 file (no CRC trailers) and read it back.
        let path = temp_path("v1compat");
        let page_size = 64usize;
        {
            let mut raw = Vec::new();
            raw.extend_from_slice(&DISK_MAGIC.to_le_bytes());
            raw.extend_from_slice(&1u32.to_le_bytes());
            raw.extend_from_slice(&(page_size as u32).to_le_bytes());
            raw.extend_from_slice(&2u32.to_le_bytes()); // two pages
            raw.extend_from_slice(&vec![0x11; page_size]);
            raw.extend_from_slice(&vec![0x22; page_size]);
            std::fs::write(&path, raw).unwrap();
        }
        let f = DiskPageFile::open(&path).unwrap();
        assert_eq!(f.num_pages(), 2);
        let mut buf = vec![0u8; page_size];
        f.read(PageId(1), &mut buf).unwrap();
        assert_eq!(buf, vec![0x22; page_size]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_read_run_default_matches_per_page() {
        let mut f = MemPageFile::new(32);
        for i in 0..4u8 {
            let id = f.allocate().unwrap();
            f.write(id, &[i; 32]).unwrap();
        }
        let mut buf = vec![0u8; 3 * 32];
        f.read_run(PageId(1), 3, &mut buf).unwrap();
        for (slot, chunk) in buf.chunks(32).enumerate() {
            assert!(chunk.iter().all(|&b| b == 1 + slot as u8));
        }
        assert_eq!(f.stats().reads, 3, "a run counts one read per page");
        assert!(matches!(
            f.read_run(PageId(0), 2, &mut [0u8; 32]),
            Err(StorageError::WrongBufferSize { .. })
        ));
    }

    #[test]
    fn disk_read_run_reads_and_verifies_span() {
        let path = temp_path("readrun");
        let mut f = DiskPageFile::create(&path, 64).unwrap();
        for i in 0..5u8 {
            let id = f.allocate().unwrap();
            f.write(id, &[0x10 + i; 64]).unwrap();
        }
        f.reset_stats();
        let mut buf = vec![0u8; 4 * 64];
        f.read_run(PageId(1), 4, &mut buf).unwrap();
        for (slot, chunk) in buf.chunks(64).enumerate() {
            assert!(chunk.iter().all(|&b| b == 0x11 + slot as u8));
        }
        assert_eq!(f.stats().reads, 4);
        // Out-of-bounds runs are rejected before any I/O.
        assert!(matches!(
            f.read_run(PageId(3), 4, &mut buf),
            Err(StorageError::PageOutOfBounds(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_read_run_surfaces_corruption_and_counts_nothing() {
        let path = temp_path("readrun-corrupt");
        let page_size = 64usize;
        {
            let mut f = DiskPageFile::create(&path, page_size).unwrap();
            for i in 0..3u8 {
                let id = f.allocate().unwrap();
                f.write(id, &vec![i; page_size]).unwrap();
            }
            f.sync().unwrap();
        }
        // Flip a byte inside page 1 on disk.
        {
            let mut raw = std::fs::read(&path).unwrap();
            let off = HEADER_LEN as usize + (page_size + CRC_LEN) + 7;
            raw[off] ^= 0x01;
            std::fs::write(&path, raw).unwrap();
        }
        let f = DiskPageFile::open(&path).unwrap();
        let mut buf = vec![0u8; 3 * page_size];
        match f.read_run(PageId(0), 3, &mut buf) {
            Err(StorageError::Corrupt { page, .. }) => assert_eq!(page, PageId(1)),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert_eq!(f.stats().reads, 0, "a failed run counts no page");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_direct_open_reads_correctly_or_falls_back() {
        // Whether O_DIRECT sticks depends on the filesystem backing the
        // temp dir; correctness must hold either way, and the fallback
        // must be invisible to callers.
        let path = temp_path("direct");
        {
            let mut f = DiskPageFile::create_direct(&path, 128).unwrap();
            let a = f.allocate().unwrap();
            let b = f.allocate().unwrap();
            f.write(a, &[0xA1; 128]).unwrap();
            f.write(b, &[0xB2; 128]).unwrap();
            f.sync().unwrap();
            let mut buf = [0u8; 128];
            f.read(a, &mut buf).unwrap();
            assert_eq!(buf, [0xA1; 128]);
            let mut run = vec![0u8; 2 * 128];
            f.read_run(a, 2, &mut run).unwrap();
            assert_eq!(&run[128..], &[0xB2; 128][..]);
        }
        {
            let f = DiskPageFile::open_direct(&path).unwrap();
            let mut buf = [0u8; 128];
            f.read(PageId(1), &mut buf).unwrap();
            assert_eq!(buf, [0xB2; 128]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_direct_on_tmpfs_stays_correct_either_way() {
        // Older kernels refuse O_DIRECT on tmpfs at open time (the
        // open-time fallback path); newer ones accept it. Either way the
        // file must open and read correctly — the mode is reported, not
        // assumed. Skip quietly when /dev/shm is absent.
        let dir = std::path::Path::new("/dev/shm");
        if !dir.is_dir() {
            return;
        }
        let path = dir.join(format!("cpq-storage-test-{}-tmpfs", std::process::id()));
        let mut f = DiskPageFile::create_direct(&path, 64).unwrap();
        let a = f.allocate().unwrap();
        f.write(a, &[0x3C; 64]).unwrap();
        let mut buf = [0u8; 64];
        f.read(a, &mut buf).unwrap();
        assert_eq!(buf, [0x3C; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_direct_read_failure_latches_buffered_fallback() {
        // Deterministic exercise of the *read-time* fallback: point the
        // direct handle at an empty decoy file so the first direct pread
        // hits EOF, then assert the latch cleared and the buffered path
        // served the real bytes — invisibly to the caller.
        let path = temp_path("direct-fallback");
        let decoy = temp_path("direct-decoy");
        std::fs::write(&decoy, b"").unwrap();
        {
            let mut f = DiskPageFile::create(&path, 64).unwrap();
            let a = f.allocate().unwrap();
            f.write(a, &[0x77; 64]).unwrap();
            f.sync().unwrap();
        }
        let mut f = DiskPageFile::open(&path).unwrap();
        f.enable_direct(std::path::Path::new(&decoy));
        if !f.direct_io() {
            // O_DIRECT unavailable here (foreign arch / refusing fs):
            // nothing to fall back from.
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(&decoy).ok();
            return;
        }
        let mut buf = [0u8; 64];
        f.read(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, [0x77; 64], "buffered fallback served the real file");
        assert!(
            !f.direct_io(),
            "the failed direct read must clear the latch"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&decoy).ok();
    }

    #[test]
    fn disk_rejects_corrupt_header() {
        let path = temp_path("corrupt");
        std::fs::write(&path, b"not a page file at all!!").unwrap();
        assert!(matches!(
            DiskPageFile::open(&path),
            Err(StorageError::CorruptHeader(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
