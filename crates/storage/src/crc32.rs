//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) for page
//! checksums — implemented here because the offline workspace carries no
//! registry dependencies.
//!
//! Table-driven, one byte per step: ~1 cycle/byte territory, far below the
//! cost of the page I/O it guards.

/// The 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (IEEE: init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(&[0u8; 4096]);
        let mut page = [0u8; 4096];
        page[2048] ^= 0x01;
        assert_ne!(a, crc32(&page));
    }
}
