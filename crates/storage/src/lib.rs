//! Paged storage engine with buffer management and disk-access accounting.
//!
//! The experiments of *Corral et al. (SIGMOD 2000)* measure query cost in
//! **disk accesses**: the number of R-tree node pages fetched from secondary
//! storage, optionally filtered through an LRU buffer of `B` pages split in
//! two equal halves, one per R-tree (Section 4.3.3). This crate provides the
//! substrate that makes those numbers measurable and reproducible:
//!
//! * [`PageFile`] — an abstraction over a flat array of fixed-size pages,
//!   with an in-memory simulated disk ([`MemPageFile`], used by experiments:
//!   only the *counts* matter, not real seek latency) and a real file-backed
//!   implementation ([`DiskPageFile`]).
//! * [`BufferPool`] — a page cache in front of a `PageFile` with a pluggable
//!   [`ReplacementPolicy`]: [`LruPolicy`] (the paper's policy), plus
//!   [`FifoPolicy`] and [`ClockPolicy`] for ablation studies.
//! * [`BufferStats`] / [`IoStats`] — the counters the benchmark harness
//!   reports. A *disk access* is a buffer miss (with `capacity = 0`, every
//!   logical read misses, which reproduces the paper's "zero buffer"
//!   configuration).
//!
//! The pool uses interior mutability (bookkeeping behind a `Mutex`, the page
//! file behind a `RwLock` so miss I/O from concurrent readers overlaps) so
//! query algorithms can hold shared references to two trees and still fault
//! pages in through either. Page contents are returned as [`PageBytes`]
//! (`Arc<[u8]>`), cheap to clone and immutable.
//!
//! For failure testing, [`FailingPageFile`] wraps any page file and injects
//! read errors, CRC corruption, or artificial latency under the control of a
//! shared [`FailureControl`].
//!
//! For real disks, [`SchedPageFile`] moves reads onto a small pool of I/O
//! threads behind a request scheduler: in-flight dedup (N concurrent misses
//! for one page cost one physical read), offset-ordered coalescing of
//! contiguous page runs into single span reads, and low-priority speculative
//! prefetch with a completion-flag handoff ([`SchedHandle`], [`SchedStats`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod crc32;
mod error;
mod failing;
mod file;
mod page;
mod sched;
mod stats;

pub use buffer::{
    BufferPool, BufferStats, ClockPolicy, FifoPolicy, LruPolicy, PageBytes, ReplacementPolicy,
};
pub use crc32::crc32;
pub use error::{StorageError, StorageResult};
pub use failing::{FailingPageFile, FailureControl};
pub use file::{DiskPageFile, MemPageFile, PageFile};
pub use page::{PageId, DEFAULT_PAGE_SIZE};
pub use sched::{DemandTicket, SchedConfig, SchedHandle, SchedPageFile, SchedStats};
pub use stats::IoStats;
