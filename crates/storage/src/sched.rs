//! Asynchronous page-read scheduler: submission queues, completion-flag
//! handles, in-flight dedup, read coalescing, and speculative prefetch.
//!
//! The paper's cost metric — disk accesses — says *how many* pages a query
//! touches; this module governs *how* those accesses are issued once the
//! disk is real. A [`SchedPageFile`] wraps any [`PageFile`] and moves its
//! read path onto a small pool of I/O threads:
//!
//! * **Demand reads** ([`SchedHandle::demand`]) enqueue the page, then
//!   block on a completion flag ([`DemandTicket`] supports submit-now,
//!   wait-later so batch callers overlap their misses). N concurrent
//!   demands for one page join a single in-flight request and cost one
//!   physical read.
//! * **Coalescing**: I/O threads drain the queues in file-offset order
//!   (the queues are `BTreeSet`s) and merge contiguous page runs — up to
//!   [`SchedConfig::coalesce_window`] pages — into one
//!   [`PageFile::read_run`] span read.
//! * **Prefetch** ([`SchedHandle::prefetch`]) enqueues low-priority reads
//!   serviced only when the demand queue is idle (though prefetch pages
//!   contiguous with a demand-led run ride along for free). Completed
//!   prefetches wait in a small ready buffer; a demand read that finds its
//!   page there (or joins it mid-flight) skips the stall entirely.
//!
//! # Accounting contract
//!
//! `SchedPageFile::stats().reads` counts **completed demand page
//! requests** — one per successful demand, however it was physically
//! satisfied (its own read, a deduplicated join, or a prefetched buffer
//! hit). This keeps the buffer pool's ledger invariant
//! `misses == io.reads` exact at quiescence even with dedup and prefetch
//! in flight: the pool counts a miss per demand, the scheduler counts a
//! read per demand. Raw device traffic (span reads, pages per span,
//! prefetch outcomes, stall time) is reported separately via
//! [`SchedHandle::stats`] as [`SchedStats`].
//!
//! # Locking
//!
//! One mutex guards the queues/pending/ready maps; the inner file sits
//! behind its own `RwLock` (span reads under the read guard, mutations
//! under the write guard). No path holds both locks at once, and
//! completion flags are leaf locks signalled while holding the state
//! mutex but only ever *waited on* with no other lock held — so the lock
//! graph is acyclic. The protocol (submit / take-batch / complete) is
//! exercised exhaustively under the `cpq-check` model harness (see
//! `model_tests` below and DESIGN.md §13).

use crate::buffer::PageBytes;
use crate::error::{StorageError, StorageResult};
use crate::file::PageFile;
use crate::page::PageId;
use crate::stats::IoStats;
use cpq_check::sync::atomic::{AtomicU64, Ordering};
use cpq_check::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use cpq_check::thread;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::time::Instant;

/// Tuning knobs of the I/O scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// I/O threads draining the request queues. Clamped to at least 1.
    pub io_threads: usize,
    /// Maximum pages merged into one span read. Clamped to at least 1;
    /// 1 disables coalescing.
    pub coalesce_window: usize,
    /// Completed-but-unclaimed prefetch pages held for future demands
    /// (oldest evicted beyond this), and the cap on queued prefetch
    /// requests. 0 disables prefetch entirely.
    pub prefetch_buffer: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            io_threads: 2,
            coalesce_window: 16,
            prefetch_buffer: 64,
        }
    }
}

/// Cumulative scheduler counters (see the module docs for the accounting
/// contract; [`demand_reads`](SchedStats::demand_reads) is what
/// `SchedPageFile::stats().reads` reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Successful demand page requests (== buffer-pool misses at
    /// quiescence).
    pub demand_reads: u64,
    /// Total nanoseconds demand callers spent blocked on completions.
    pub demand_stall_ns: u64,
    /// Pages physically read from the inner file.
    pub physical_pages: u64,
    /// Inner-file read calls issued (span reads and single reads alike)
    /// that succeeded.
    pub physical_batches: u64,
    /// Span reads that failed and were degraded to per-page reads to
    /// attribute the failure (a transient mid-span fault is absorbed by
    /// the retry; persistent faults surface on exactly their page).
    pub batch_fallbacks: u64,
    /// Prefetch requests accepted onto the queue.
    pub prefetch_issued: u64,
    /// Demand reads satisfied by a prefetch (ready-buffer hit or a join
    /// onto an in-flight prefetch).
    pub prefetch_hits: u64,
    /// Prefetched pages that were read but never consumed (evicted from
    /// the ready buffer, invalidated by a write, failed, or left over at
    /// shutdown).
    pub prefetch_waste: u64,
    /// Prefetch requests dropped because the queue was at capacity.
    pub prefetch_dropped: u64,
    /// Demand requests that joined an already in-flight demand read.
    pub dedup_joins: u64,
    /// High-water mark of queued requests (demand + prefetch).
    pub max_queue_depth: u64,
}

impl SchedStats {
    /// Pages delivered per inner read call; > 1.0 means coalescing is
    /// paying off. 0 when nothing has been read.
    pub fn coalesce_ratio(&self) -> f64 {
        if self.physical_batches == 0 {
            0.0
        } else {
            self.physical_pages as f64 / self.physical_batches as f64
        }
    }

    /// Fraction of issued prefetches that served a demand read, in
    /// `[0, 1]`; 0 when none were issued.
    pub fn prefetch_hit_rate(&self) -> f64 {
        if self.prefetch_issued == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetch_issued as f64
        }
    }
}

/// A completion flag: one slot for the result, a condvar for waiters.
/// Results are duplicated to every waiter (dedup joins share one flag).
/// Opaque outside this module — resolve it through [`SchedHandle::finish`]
/// or [`SchedHandle::poll`].
pub struct Completion {
    slot: Mutex<Option<StorageResult<PageBytes>>>,
    cv: Condvar,
}

impl Completion {
    fn new() -> Self {
        Completion {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Publishes the result and wakes every waiter. Called exactly once.
    fn set(&self, result: StorageResult<PageBytes>) {
        // completion flag (a panicked setter leaves waiters stuck anyway).
        let mut slot = self.slot.lock().expect("completion lock poisoned");
        debug_assert!(slot.is_none(), "completion set twice");
        *slot = Some(result);
        self.cv.notify_all();
    }

    /// Blocks until the result is published, then returns a copy of it.
    fn wait(&self) -> StorageResult<PageBytes> {
        let mut slot = self.slot.lock().expect("completion lock poisoned");
        loop {
            match &*slot {
                Some(Ok(bytes)) => return Ok(bytes.clone()),
                Some(Err(e)) => return Err(e.duplicate()),
                None => slot = self.cv.wait(slot).expect("completion lock poisoned"),
            }
        }
    }

    /// Non-blocking probe: the result if it has been published.
    fn poll(&self) -> Option<StorageResult<PageBytes>> {
        let slot = self.slot.lock().expect("completion lock poisoned");
        match &*slot {
            Some(Ok(bytes)) => Some(Ok(bytes.clone())),
            Some(Err(e)) => Some(Err(e.duplicate())),
            None => None,
        }
    }
}

/// A submitted demand read: either served immediately from the prefetch
/// ready buffer, or a handle to wait on. Obtain via [`SchedHandle::submit`],
/// resolve via [`SchedHandle::finish`] (or probe with
/// [`SchedHandle::poll`]).
pub enum DemandTicket {
    /// The page was already prefetched; no wait needed.
    Ready(PageBytes),
    /// The read is queued or in flight; wait on the completion flag.
    Wait(Arc<Completion>),
}

/// Bookkeeping for a page that is queued or being read.
struct Pending {
    done: Arc<Completion>,
    /// At least one demand caller is waiting on this page.
    demanded: bool,
    /// The request entered as a prefetch (used to classify a later demand
    /// join as a prefetch hit rather than a dedup join).
    prefetch_origin: bool,
}

/// State under the scheduler mutex.
struct SchedState {
    /// Queued demand pages, ordered by id == file offset.
    demand_q: BTreeSet<u32>,
    /// Queued prefetch pages, ordered by id == file offset.
    prefetch_q: BTreeSet<u32>,
    /// Every queued or in-flight page.
    pending: HashMap<u32, Pending>,
    /// Completed, unclaimed prefetch results.
    ready: HashMap<u32, PageBytes>,
    /// FIFO eviction order for `ready` (may hold stale ids of pages
    /// already claimed; eviction skips them).
    ready_order: VecDeque<u32>,
    /// Worker-side counters (the two demand-side ones live in atomics on
    /// [`SchedShared`] and are merged in [`SchedHandle::stats`]).
    stats: SchedStats,
    shutdown: bool,
}

impl SchedState {
    fn new() -> Self {
        SchedState {
            demand_q: BTreeSet::new(),
            prefetch_q: BTreeSet::new(),
            pending: HashMap::new(),
            ready: HashMap::new(),
            ready_order: VecDeque::new(),
            stats: SchedStats::default(),
            shutdown: false,
        }
    }

    fn queued(&self) -> usize {
        self.demand_q.len() + self.prefetch_q.len()
    }

    fn note_depth(&mut self) {
        let d = self.queued() as u64;
        if d > self.stats.max_queue_depth {
            self.stats.max_queue_depth = d;
        }
    }

    /// Claims a completed prefetch result, if present.
    fn take_ready(&mut self, page: u32) -> Option<PageBytes> {
        // `ready_order` keeps a stale id; the eviction loop skips it.
        self.ready.remove(&page)
    }

    /// Stores a completed pure-prefetch result, evicting the oldest
    /// beyond `cap` (evictions count as waste: read, never consumed).
    fn stash_ready(&mut self, page: u32, bytes: PageBytes, cap: usize) {
        if cap == 0 {
            self.stats.prefetch_waste += 1;
            return;
        }
        while self.ready.len() >= cap {
            match self.ready_order.pop_front() {
                Some(old) => {
                    if self.ready.remove(&old).is_some() {
                        self.stats.prefetch_waste += 1;
                    }
                }
                None => break,
            }
        }
        self.ready.insert(page, bytes);
        self.ready_order.push_back(page);
    }
}

/// Shared core of the scheduler: protocol state, the inner file, and the
/// demand-side counters. Public protocol methods live on [`SchedHandle`];
/// the worker entry point `service_one` is `pub(crate)` so the model
/// harness can drive the protocol with modeled threads and no I/O pool.
pub(crate) struct SchedShared {
    state: Mutex<SchedState>,
    /// Workers wait here; every enqueue notifies.
    wake: Condvar,
    file: RwLock<Box<dyn PageFile>>,
    cfg: SchedConfig,
    page_size: usize,
    /// Successful demand completions (see the module accounting contract).
    demand_reads: AtomicU64,
    /// Nanoseconds demand callers spent blocked.
    demand_stall_ns: AtomicU64,
}

impl SchedShared {
    fn new(inner: Box<dyn PageFile>, mut cfg: SchedConfig) -> Self {
        cfg.io_threads = cfg.io_threads.max(1);
        cfg.coalesce_window = cfg.coalesce_window.max(1);
        let page_size = inner.page_size();
        SchedShared {
            state: Mutex::new(SchedState::new()),
            wake: Condvar::new(),
            file: RwLock::new(inner),
            cfg,
            page_size,
            demand_reads: AtomicU64::new(0),
            demand_stall_ns: AtomicU64::new(0),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        // (queues and pending flags would be undefined).
        self.state.lock().expect("scheduler mutex poisoned")
    }

    fn file_read(&self) -> RwLockReadGuard<'_, Box<dyn PageFile>> {
        self.file.read().expect("scheduler file lock poisoned")
    }

    fn file_write(&self) -> RwLockWriteGuard<'_, Box<dyn PageFile>> {
        self.file.write().expect("scheduler file lock poisoned")
    }

    /// Submits a demand read for `id`.
    fn submit(&self, id: PageId) -> DemandTicket {
        let mut st = self.lock_state();
        let st = &mut *st;
        if let Some(bytes) = st.take_ready(id.0) {
            st.stats.prefetch_hits += 1;
            // ordering: Relaxed — monotone stat counter, reconciled with
            // the pool ledger only at quiescence.
            self.demand_reads.fetch_add(1, Ordering::Relaxed);
            return DemandTicket::Ready(bytes);
        }
        if let Some(p) = st.pending.get_mut(&id.0) {
            if p.prefetch_origin && !p.demanded {
                // A queued (or in-flight) prefetch covers this demand:
                // promote it to the demand queue if it has not been
                // picked up yet.
                st.stats.prefetch_hits += 1;
                if st.prefetch_q.remove(&id.0) {
                    st.demand_q.insert(id.0);
                }
            } else {
                st.stats.dedup_joins += 1;
            }
            p.demanded = true;
            return DemandTicket::Wait(Arc::clone(&p.done));
        }
        let done = Arc::new(Completion::new());
        st.pending.insert(
            id.0,
            Pending {
                done: Arc::clone(&done),
                demanded: true,
                prefetch_origin: false,
            },
        );
        st.demand_q.insert(id.0);
        st.note_depth();
        self.wake.notify_one();
        DemandTicket::Wait(done)
    }

    /// Resolves a ticket, blocking if needed, and accounts the demand.
    fn finish(&self, ticket: DemandTicket) -> StorageResult<PageBytes> {
        match ticket {
            DemandTicket::Ready(bytes) => Ok(bytes),
            DemandTicket::Wait(done) => {
                let t0 = Instant::now();
                let out = done.wait();
                // ordering: Relaxed — monotone stat counters; see `submit`.
                self.demand_stall_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if out.is_ok() {
                    // ordering: Relaxed — see `submit`.
                    self.demand_reads.fetch_add(1, Ordering::Relaxed);
                }
                out
            }
        }
    }

    /// Enqueues low-priority reads for pages not already queued, in
    /// flight, or sitting in the ready buffer.
    fn prefetch(&self, ids: &[PageId]) {
        if self.cfg.prefetch_buffer == 0 {
            return;
        }
        let mut st = self.lock_state();
        let st = &mut *st;
        if st.shutdown {
            return;
        }
        let mut added = false;
        for &id in ids {
            if st.ready.contains_key(&id.0) || st.pending.contains_key(&id.0) {
                continue;
            }
            if st.prefetch_q.len() >= self.cfg.prefetch_buffer {
                st.stats.prefetch_dropped += 1;
                continue;
            }
            st.pending.insert(
                id.0,
                Pending {
                    done: Arc::new(Completion::new()),
                    demanded: false,
                    prefetch_origin: true,
                },
            );
            st.prefetch_q.insert(id.0);
            st.stats.prefetch_issued += 1;
            added = true;
        }
        if added {
            st.note_depth();
            self.wake.notify_all();
        }
    }

    /// Picks the next batch: the lowest queued demand page (or, with no
    /// demand waiting, the lowest prefetch page), extended forward over
    /// contiguous queued pages of either class up to the coalesce window.
    fn take_batch(&self, st: &mut SchedState) -> Option<(u32, usize)> {
        let first = st
            .demand_q
            .first()
            .copied()
            .or_else(|| st.prefetch_q.first().copied())?;
        st.demand_q.remove(&first);
        st.prefetch_q.remove(&first);
        let mut n = 1usize;
        while n < self.cfg.coalesce_window {
            let Some(next) = first.checked_add(n as u32) else {
                break;
            };
            if st.demand_q.remove(&next) || st.prefetch_q.remove(&next) {
                n += 1;
            } else {
                break;
            }
        }
        Some((first, n))
    }

    /// Services one batch if any is queued; returns whether work was done.
    /// This is the whole worker protocol: take a batch (state lock), read
    /// it (file read guard, state unlocked), publish completions (state
    /// lock again) — never two locks at once.
    pub(crate) fn service_one(&self, scratch: &mut Vec<u8>) -> bool {
        let batch = {
            let mut st = self.lock_state();
            self.take_batch(&mut st)
        };
        let Some((first, n)) = batch else {
            return false;
        };
        let ps = self.page_size;
        if scratch.len() < n * ps {
            scratch.resize(n * ps, 0);
        }
        let run = {
            let file = self.file_read();
            file.read_run(PageId(first), n, &mut scratch[..n * ps])
        };
        let mut results: Vec<(u32, StorageResult<PageBytes>)> = Vec::with_capacity(n);
        let mut batches_ok = 0u64;
        let mut pages_ok = 0u64;
        let mut fell_back = false;
        match run {
            Ok(()) => {
                batches_ok = 1;
                pages_ok = n as u64;
                for i in 0..n {
                    let bytes = PageBytes::from(&scratch[i * ps..(i + 1) * ps]);
                    results.push((first + i as u32, Ok(bytes)));
                }
            }
            Err(e) if n == 1 => results.push((first, Err(e))),
            Err(_) => {
                // Attribute the failure: re-read page by page so exactly
                // the faulty page(s) fail and the rest are delivered.
                fell_back = true;
                let file = self.file_read();
                for i in 0..n {
                    let id = PageId(first + i as u32);
                    let res = file
                        .read(id, &mut scratch[..ps])
                        .map(|()| PageBytes::from(&scratch[..ps]));
                    if res.is_ok() {
                        batches_ok += 1;
                        pages_ok += 1;
                    }
                    results.push((id.0, res));
                }
            }
        }
        let mut st = self.lock_state();
        let st = &mut *st;
        st.stats.physical_batches += batches_ok;
        st.stats.physical_pages += pages_ok;
        if fell_back {
            st.stats.batch_fallbacks += 1;
        }
        for (page, res) in results {
            // A pending entry always exists here: completions remove it
            // under the same lock hold that publishes the flag, and
            // nothing else removes in-flight entries.
            let Some(p) = st.pending.remove(&page) else {
                continue;
            };
            if !p.demanded {
                match &res {
                    Ok(bytes) => st.stash_ready(page, bytes.clone(), self.cfg.prefetch_buffer),
                    Err(_) => st.stats.prefetch_waste += 1,
                }
            }
            p.done.set(res);
        }
        true
    }

    /// Merged counter snapshot (locked worker counters + demand atomics).
    fn stats(&self) -> SchedStats {
        let mut s = self.lock_state().stats;
        // ordering: Relaxed — stat counters; see `submit`.
        s.demand_reads = self.demand_reads.load(Ordering::Relaxed);
        s.demand_stall_ns = self.demand_stall_ns.load(Ordering::Relaxed);
        s
    }

    /// Drops any completed-but-unclaimed prefetch of `page` (a write or
    /// free made it stale). In-flight reads are not chased — the same
    /// read/write race semantics as the unscheduled pool path.
    fn invalidate(&self, page: u32) {
        let mut st = self.lock_state();
        if st.take_ready(page).is_some() {
            st.stats.prefetch_waste += 1;
        }
    }
}

/// Worker thread body: service batches, sleep on the wake condvar when
/// both queues are empty, exit on shutdown.
fn worker_loop(shared: Arc<SchedShared>) {
    let mut scratch = Vec::new();
    loop {
        if shared.service_one(&mut scratch) {
            continue;
        }
        let mut st = shared.lock_state();
        loop {
            if st.shutdown {
                return;
            }
            if st.queued() > 0 {
                break;
            }
            st = shared.wake.wait(st).expect("scheduler mutex poisoned");
        }
    }
}

/// A cloneable handle onto a [`SchedPageFile`]'s scheduler, for demand
/// submission, prefetch hints, and stats — usable without going through
/// the `PageFile` trait (the buffer pool holds one to get `PageBytes`
/// results without an extra copy).
#[derive(Clone)]
pub struct SchedHandle {
    shared: Arc<SchedShared>,
}

impl SchedHandle {
    /// Submits a demand read; resolve the ticket with
    /// [`finish`](Self::finish) (or probe it with [`poll`](Self::poll)).
    /// Submitting several tickets before finishing any overlaps their I/O.
    pub fn submit(&self, id: PageId) -> DemandTicket {
        self.shared.submit(id)
    }

    /// Resolves a ticket, blocking until the read completes.
    pub fn finish(&self, ticket: DemandTicket) -> StorageResult<PageBytes> {
        self.shared.finish(ticket)
    }

    /// Non-blocking probe of a ticket: `None` while the read is still in
    /// flight. A resolved result is **not** accounted as a demand read
    /// until the ticket is consumed via [`finish`](Self::finish); use
    /// poll for opportunistic checks, finish to take the page.
    pub fn poll(&self, ticket: &DemandTicket) -> Option<StorageResult<PageBytes>> {
        match ticket {
            DemandTicket::Ready(bytes) => Some(Ok(bytes.clone())),
            DemandTicket::Wait(done) => done.poll(),
        }
    }

    /// Blocking demand read: submit + finish.
    pub fn demand(&self, id: PageId) -> StorageResult<PageBytes> {
        let ticket = self.shared.submit(id);
        self.shared.finish(ticket)
    }

    /// Hints that `ids` will likely be demanded soon. Low priority: the
    /// scheduler reads them only in demand-queue idle gaps (or when
    /// contiguous with a demand run). Duplicates of queued, in-flight, or
    /// already-buffered pages are ignored; beyond the queue cap, hints
    /// are dropped (and counted).
    pub fn prefetch(&self, ids: &[PageId]) {
        self.shared.prefetch(ids)
    }

    /// Cumulative scheduler counters.
    pub fn stats(&self) -> SchedStats {
        self.shared.stats()
    }

    /// Requests currently queued (demand + prefetch), for gauges.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock_state().queued()
    }
}

/// A [`PageFile`] whose reads are served by the I/O scheduler (see the
/// module docs). Writes, allocation, and freeing pass through to the
/// inner file under its write lock, invalidating any stale prefetched
/// copy. Dropping it shuts the I/O threads down and fails any requests
/// still pending.
pub struct SchedPageFile {
    shared: Arc<SchedShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl SchedPageFile {
    /// Wraps `inner` and starts the I/O threads.
    pub fn new(inner: Box<dyn PageFile>, cfg: SchedConfig) -> Self {
        let shared = Arc::new(SchedShared::new(inner, cfg));
        let workers = (0..shared.cfg.io_threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(shared))
            })
            .collect();
        SchedPageFile { shared, workers }
    }

    /// A handle for demand/prefetch/stats access that bypasses the
    /// `PageFile` trait (and survives as long as any clone does).
    pub fn handle(&self) -> SchedHandle {
        SchedHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for SchedPageFile {
    fn drop(&mut self) {
        self.shared.lock_state().shutdown = true;
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are gone; fail anything still pending so no completion
        // flag is ever left unset (prefetches never claimed count as
        // waste, whether still queued/in flight or completed into the
        // ready buffer and never demanded).
        let mut st = self.shared.lock_state();
        let st = &mut *st;
        st.demand_q.clear();
        st.prefetch_q.clear();
        st.stats.prefetch_waste += st.ready.len() as u64;
        st.ready.clear();
        st.ready_order.clear();
        for (_, p) in st.pending.drain() {
            if !p.demanded {
                st.stats.prefetch_waste += 1;
            }
            p.done.set(Err(StorageError::Io(std::io::Error::other(
                "I/O scheduler shut down",
            ))));
        }
    }
}

impl PageFile for SchedPageFile {
    fn page_size(&self) -> usize {
        self.shared.page_size
    }

    fn num_pages(&self) -> u32 {
        self.shared.file_read().num_pages()
    }

    fn allocate(&mut self) -> StorageResult<PageId> {
        self.shared.file_write().allocate()
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> StorageResult<()> {
        if buf.len() != self.shared.page_size {
            return Err(StorageError::WrongBufferSize {
                expected: self.shared.page_size,
                actual: buf.len(),
            });
        }
        let bytes = self.shared.finish(self.shared.submit(id))?;
        buf.copy_from_slice(&bytes);
        Ok(())
    }

    fn read_run(&self, first: PageId, n: usize, buf: &mut [u8]) -> StorageResult<()> {
        let ps = self.shared.page_size;
        if buf.len() != n * ps {
            return Err(StorageError::WrongBufferSize {
                expected: n * ps,
                actual: buf.len(),
            });
        }
        // Submit every page before waiting on any, so the run's reads
        // overlap (and coalesce back into spans inside the scheduler).
        let tickets: Vec<DemandTicket> = (0..n)
            .map(|i| self.shared.submit(PageId(first.0 + i as u32)))
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let bytes = self.shared.finish(ticket)?;
            buf[i * ps..(i + 1) * ps].copy_from_slice(&bytes);
        }
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> StorageResult<()> {
        self.shared.invalidate(id.0);
        self.shared.file_write().write(id, data)
    }

    fn free(&mut self, id: PageId) -> StorageResult<()> {
        self.shared.invalidate(id.0);
        self.shared.file_write().free(id)
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.shared.file_write().sync()
    }

    /// `reads` counts completed demand requests (the module accounting
    /// contract); writes/allocations/frees mirror the inner file.
    fn stats(&self) -> IoStats {
        let inner = self.shared.file_read().stats();
        IoStats {
            // ordering: Relaxed — stat counter; see `SchedShared::submit`.
            reads: self.shared.demand_reads.load(Ordering::Relaxed),
            ..inner
        }
    }

    fn reset_stats(&mut self) {
        self.shared.file_write().reset_stats();
        // ordering: Relaxed — reset runs under `&mut self` at quiescence
        // (the pool holds its file write lock), matching the other
        // implementations' reset contract.
        self.shared.demand_reads.store(0, Ordering::Relaxed);
        self.shared.demand_stall_ns.store(0, Ordering::Relaxed);
        self.shared.lock_state().stats = SchedStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemPageFile;
    use std::time::Duration;

    fn mem_file(pages: u8, ps: usize) -> Box<MemPageFile> {
        let mut f = MemPageFile::new(ps);
        for i in 0..pages {
            let id = f.allocate().expect("allocate");
            f.write(id, &vec![i; ps]).expect("write");
        }
        Box::new(f)
    }

    /// Polls until `pred(stats)` holds or a generous timeout elapses.
    fn wait_for(handle: &SchedHandle, pred: impl Fn(&SchedStats) -> bool) -> SchedStats {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let s = handle.stats();
            if pred(&s) || Instant::now() > deadline {
                return s;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    #[test]
    fn demand_reads_return_bytes_and_count() {
        let mut sf = SchedPageFile::new(mem_file(4, 32), SchedConfig::default());
        let h = sf.handle();
        for i in 0..4u8 {
            let bytes = h.demand(PageId(i as u32)).expect("demand");
            assert!(bytes.iter().all(|&b| b == i));
        }
        assert_eq!(sf.stats().reads, 4);
        let s = h.stats();
        assert_eq!(s.demand_reads, 4);
        assert_eq!(s.physical_pages, 4);
        sf.reset_stats();
        assert_eq!(sf.stats().reads, 0);
        assert_eq!(h.stats().physical_pages, 0);
    }

    #[test]
    fn trait_read_and_read_run_work() {
        let sf = SchedPageFile::new(mem_file(6, 16), SchedConfig::default());
        let mut buf = [0u8; 16];
        sf.read(PageId(2), &mut buf).expect("read");
        assert_eq!(buf, [2u8; 16]);
        let mut run = vec![0u8; 3 * 16];
        sf.read_run(PageId(1), 3, &mut run).expect("read_run");
        for (slot, chunk) in run.chunks(16).enumerate() {
            assert!(chunk.iter().all(|&b| b == 1 + slot as u8));
        }
        assert!(matches!(
            sf.read(PageId(0), &mut [0u8; 4]),
            Err(StorageError::WrongBufferSize { .. })
        ));
    }

    #[test]
    fn prefetch_is_hit_by_later_demand() {
        let sf = SchedPageFile::new(mem_file(8, 16), SchedConfig::default());
        let h = sf.handle();
        h.prefetch(&[PageId(1), PageId(2), PageId(3)]);
        let s = wait_for(&h, |s| s.physical_pages >= 3);
        assert_eq!(s.prefetch_issued, 3);
        // The three contiguous pages should have coalesced into one span.
        assert!(s.coalesce_ratio() > 1.0, "stats: {s:?}");
        for i in 1..=3u32 {
            let bytes = h.demand(PageId(i)).expect("demand");
            assert!(bytes.iter().all(|&b| b == i as u8));
        }
        let s = h.stats();
        assert_eq!(s.prefetch_hits, 3);
        assert_eq!(s.demand_reads, 3);
        assert_eq!(
            s.physical_pages, 3,
            "demands were served from the prefetch, not re-read"
        );
        assert_eq!(s.prefetch_hit_rate(), 1.0);
    }

    #[test]
    fn prefetch_queue_cap_drops_and_counts() {
        let cfg = SchedConfig {
            io_threads: 1,
            coalesce_window: 4,
            prefetch_buffer: 2,
        };
        let sf = SchedPageFile::new(mem_file(16, 16), cfg);
        let h = sf.handle();
        let ids: Vec<PageId> = (0..16).map(PageId).collect();
        h.prefetch(&ids);
        let s = wait_for(&h, |s| s.prefetch_issued + s.prefetch_dropped >= 16);
        assert!(s.prefetch_dropped > 0, "cap must drop hints: {s:?}");
        assert_eq!(s.prefetch_issued + s.prefetch_dropped, 16);
    }

    #[test]
    fn overlapping_submits_coalesce() {
        let cfg = SchedConfig {
            io_threads: 1,
            ..Default::default()
        };
        let sf = SchedPageFile::new(mem_file(32, 16), cfg);
        let h = sf.handle();
        // Submit a contiguous run before finishing anything: the single
        // worker drains them as coalesced spans.
        let tickets: Vec<DemandTicket> = (0..32).map(|i| h.submit(PageId(i))).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let bytes = h.finish(t).expect("finish");
            assert!(bytes.iter().all(|&b| b == i as u8));
        }
        let s = h.stats();
        assert_eq!(s.demand_reads, 32);
        assert_eq!(s.physical_pages, 32);
        assert!(
            s.coalesce_ratio() > 1.0,
            "contiguous demands must merge: {s:?}"
        );
        assert!(s.max_queue_depth > 1);
    }

    #[test]
    fn concurrent_demands_for_one_page_dedup() {
        let control = crate::failing::FailureControl::new();
        let inner = crate::failing::FailingPageFile::new(mem_file(2, 16), Arc::clone(&control));
        // Slow the read down so every thread's demand lands while the
        // first physical read is still in flight.
        control.slow_reads(Duration::from_millis(20));
        let sf = SchedPageFile::new(Box::new(inner), SchedConfig::default());
        let h = sf.handle();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let h = h.clone();
                scope.spawn(move || {
                    let bytes = h.demand(PageId(1)).expect("demand");
                    assert!(bytes.iter().all(|&b| b == 1));
                });
            }
        });
        control.disarm();
        let s = h.stats();
        assert_eq!(s.demand_reads, 8, "every demand counts");
        assert_eq!(s.physical_pages, 1, "one physical read served all");
        assert_eq!(s.dedup_joins, 7);
        assert!(s.demand_stall_ns > 0);
    }

    #[test]
    fn error_reaches_exactly_the_demanding_waiter() {
        let control = crate::failing::FailureControl::new();
        let inner = crate::failing::FailingPageFile::new(mem_file(4, 16), Arc::clone(&control));
        let sf = SchedPageFile::new(Box::new(inner), SchedConfig::default());
        let h = sf.handle();
        control.fail_read(1);
        // Single-page batch: the injected error is delivered, not retried.
        assert!(h.demand(PageId(0)).is_err());
        // The fault fired; the next demand succeeds (no stuck flags).
        let bytes = h.demand(PageId(0)).expect("recovered");
        assert!(bytes.iter().all(|&b| b == 0));
        let s = h.stats();
        assert_eq!(s.demand_reads, 1, "failed demands are not counted");
    }

    #[test]
    fn shutdown_fails_pending_cleanly() {
        let control = crate::failing::FailureControl::new();
        let inner = crate::failing::FailingPageFile::new(mem_file(2, 16), Arc::clone(&control));
        control.slow_reads(Duration::from_millis(5));
        let sf = SchedPageFile::new(Box::new(inner), SchedConfig::default());
        let h = sf.handle();
        h.prefetch(&[PageId(0), PageId(1)]);
        drop(sf);
        // The handle outlives the file; demands after shutdown would hang
        // forever if pending flags were left unset — instead everything
        // already queued was failed or completed, and the maps are empty.
        assert_eq!(h.queue_depth(), 0);
    }
}

/// Model-checked harness for the scheduler protocol (concurrent site #5).
///
/// Runs only under `RUSTFLAGS="--cfg cpq_model"`. The positive models
/// drive the *real* protocol — `submit` / `finish` / `service_one` — with
/// modeled threads and exhaustive DFS: completion-flag handoff in every
/// submit/complete/wake interleaving, in-flight dedup (one physical read
/// serving two demands), and prefetch promotion. The negative model
/// reintroduces the check-then-act dedup race the state mutex exists to
/// prevent, pinned as a `#[should_panic]` regression.
#[cfg(all(test, cpq_model))]
mod model_tests {
    use super::*;
    use crate::file::MemPageFile;
    use cpq_check::{model_dfs, try_model_dfs, DfsOptions};
    use std::collections::HashSet;

    fn model_shared() -> Arc<SchedShared> {
        let mut f = MemPageFile::new(8);
        for i in 0..2u8 {
            let id = f.allocate().expect("allocate");
            f.write(id, &[i; 8]).expect("write");
        }
        Arc::new(SchedShared::new(
            Box::new(f),
            SchedConfig {
                io_threads: 1,
                coalesce_window: 4,
                prefetch_buffer: 4,
            },
        ))
    }

    #[test]
    fn dfs_completion_handoff_and_dedup() {
        // Two demands for one page submitted up front (the second joins
        // the first — structural dedup), then two waiters, and one
        // service pass, interleaved exhaustively: the completion flag
        // must hand the one physical read to both waiters in every
        // schedule, with the books exact.
        let report = model_dfs(DfsOptions::smoke(), || {
            let shared = model_shared();
            let t1 = shared.submit(PageId(1));
            let t2 = shared.submit(PageId(1));
            let waiters: Vec<_> = [t1, t2]
                .into_iter()
                .map(|t| {
                    let shared = Arc::clone(&shared);
                    thread::spawn(move || {
                        let bytes = shared.finish(t).expect("finish");
                        assert!(bytes.iter().all(|&b| b == 1), "right page delivered");
                    })
                })
                .collect();
            let svc = {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    let mut scratch = Vec::new();
                    assert!(shared.service_one(&mut scratch), "one batch was queued");
                })
            };
            for w in waiters {
                w.join().expect("waiter");
            }
            svc.join().expect("service");
            let s = shared.stats();
            assert_eq!(s.physical_pages, 1, "dedup: one read for two demands");
            assert_eq!(s.demand_reads, 2);
            assert_eq!(s.dedup_joins, 1);
            assert!(shared.lock_state().pending.is_empty(), "no stuck flags");
        });
        assert!(report.complete, "DFS must exhaust the interleavings");
        assert!(report.schedules > 1, "explored {}", report.schedules);
    }

    #[test]
    fn dfs_prefetch_promotion_vs_ready_hit() {
        // A prefetch is issued; a demand for the same page races the
        // service pass. Depending on the schedule the demand joins the
        // queued/in-flight prefetch (promotion) or claims the completed
        // ready buffer — both must count one prefetch hit, one demand,
        // one physical read.
        let report = model_dfs(DfsOptions::smoke(), || {
            let shared = model_shared();
            shared.prefetch(&[PageId(0)]);
            let demand = {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    let t = shared.submit(PageId(0));
                    let bytes = shared.finish(t).expect("demand");
                    assert!(bytes.iter().all(|&b| b == 0));
                })
            };
            let svc = {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    let mut scratch = Vec::new();
                    shared.service_one(&mut scratch);
                })
            };
            svc.join().expect("service");
            // The demand may still be queued (it arrived after the
            // service pass and missed the ready buffer only if the page
            // was... it cannot: a completed pure prefetch lands in the
            // ready buffer, so the demand either joined in flight or
            // hits ready). Either way one more service pass drains any
            // residue.
            let mut scratch = Vec::new();
            shared.service_one(&mut scratch);
            demand.join().expect("demand");
            let s = shared.stats();
            assert_eq!(s.prefetch_issued, 1);
            assert_eq!(s.prefetch_hits, 1, "stats: {s:?}");
            assert_eq!(s.demand_reads, 1);
            assert_eq!(s.physical_pages, 1, "the prefetch read served the demand");
            assert!(shared.lock_state().pending.is_empty(), "no stuck flags");
        });
        assert!(report.complete);
        assert!(report.schedules > 1);
    }

    /// The deliberately-broken twin: in-flight dedup by check-then-act
    /// with the lock released between the check and the insert — the
    /// race `SchedShared::submit`'s single critical section prevents.
    fn broken_dedup_model() {
        let inflight = Arc::new(Mutex::new(HashSet::<u32>::new()));
        let physical = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let inflight = Arc::clone(&inflight);
                let physical = Arc::clone(&physical);
                thread::spawn(move || {
                    // BUG: the membership check and the insert are two
                    // critical sections; both threads can pass the check
                    // before either inserts.
                    let present = inflight.lock().expect("model lock").contains(&7);
                    if !present {
                        inflight.lock().expect("model lock").insert(7);
                        // ordering: SeqCst — model twin; strongest
                        // ordering so the bug is purely the lost lock.
                        physical.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().expect("reader");
        }
        // ordering: SeqCst — model twin readback.
        let reads = physical.load(Ordering::SeqCst);
        assert!(reads <= 1, "duplicate physical read for one page");
    }

    #[test]
    fn broken_dedup_twin_is_found_by_dfs() {
        let failure = try_model_dfs(DfsOptions::smoke(), broken_dedup_model)
            .expect_err("the dedup race must surface under exhaustive DFS");
        assert!(
            failure.message.contains("duplicate physical read"),
            "unexpected failure: {failure}"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate physical read")]
    fn broken_dedup_twin_pinned_regression() {
        let _ = model_dfs(DfsOptions::smoke(), broken_dedup_model);
    }
}
