//! A fault-injecting [`PageFile`] wrapper for failure testing.
//!
//! [`FailingPageFile`] decorates any inner page file and, driven by a shared
//! [`FailureControl`], can make the *n*-th read fail with an I/O error,
//! report a specific page as CRC-corrupt, or delay every read by a fixed
//! latency (a simulated slow disk). All knobs are atomics so a test can arm
//! and disarm faults while readers are running on other threads — exactly
//! the situation the parallel K-CPQ executor's fault tests exercise.

use crate::error::{StorageError, StorageResult};
use crate::file::PageFile;
use crate::page::PageId;
use crate::stats::IoStats;
use cpq_check::sync::atomic::{AtomicU64, Ordering};
use cpq_check::sync::Arc;
use std::time::Duration;

/// Sentinel meaning "no page armed" in [`FailureControl::corrupt_page`].
const NO_PAGE: u64 = u64::MAX;

/// Shared, atomically adjustable fault knobs of a [`FailingPageFile`].
///
/// Hold a clone of the `Arc<FailureControl>` used to build the file and flip
/// knobs at any time; readers observe the change on their next read.
#[derive(Debug, Default)]
pub struct FailureControl {
    /// 1-based ordinal of the read that fails with an injected I/O error.
    /// `0` disarms.
    fail_read_at: AtomicU64,
    /// Total reads attempted through the wrapper (successful or not).
    reads_seen: AtomicU64,
    /// Page whose reads fail as [`StorageError::Corrupt`] (`NO_PAGE` off).
    corrupt_page: AtomicU64,
    /// Artificial latency added to every read, in nanoseconds (`0` off).
    slow_read_nanos: AtomicU64,
}

impl FailureControl {
    /// A control with every fault disarmed.
    pub fn new() -> Arc<Self> {
        Arc::new(FailureControl {
            corrupt_page: AtomicU64::new(NO_PAGE),
            ..FailureControl::default()
        })
    }

    /// Arms an injected I/O error on the `n`-th read *from now* (1-based);
    /// `0` disarms. Resets the read ordinal counter.
    pub fn fail_read(&self, n: u64) {
        // ordering: SeqCst — test-harness knobs; arming (ordinal reset,
        // then the trigger) must appear in program order to every racing
        // reader, and the fault path is never a hot path, so the blunt
        // strongest ordering buys simplicity for free.
        self.reads_seen.store(0, Ordering::SeqCst);
        self.fail_read_at.store(n, Ordering::SeqCst);
    }

    /// Makes every read of `page` fail as a CRC mismatch.
    pub fn corrupt(&self, page: PageId) {
        // ordering: SeqCst — fault knob; see `fail_read`.
        self.corrupt_page.store(page.0 as u64, Ordering::SeqCst);
    }

    /// Adds `latency` to every read (a simulated slow disk); zero disarms.
    pub fn slow_reads(&self, latency: Duration) {
        // ordering: SeqCst — fault knob; see `fail_read`.
        self.slow_read_nanos
            .store(latency.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Disarms every fault (latency, corruption, and the error ordinal).
    pub fn disarm(&self) {
        // ordering: SeqCst — fault knobs; see `fail_read`.
        self.fail_read_at.store(0, Ordering::SeqCst);
        self.corrupt_page.store(NO_PAGE, Ordering::SeqCst);
        self.slow_read_nanos.store(0, Ordering::SeqCst);
    }

    /// Reads attempted through the wrapper since the last [`fail_read`]
    /// (or since construction).
    pub fn reads_seen(&self) -> u64 {
        // ordering: SeqCst — fault knob; see `fail_read`.
        self.reads_seen.load(Ordering::SeqCst)
    }
}

/// A [`PageFile`] decorator that injects faults per its [`FailureControl`].
///
/// Writes, allocation, and freeing pass straight through; only reads are
/// subject to injection. Injected failures are *not* counted by the inner
/// file's `IoStats.reads` (the inner read never happens), matching the
/// "count only successful I/O" contract of the real implementations.
pub struct FailingPageFile {
    inner: Box<dyn PageFile>,
    control: Arc<FailureControl>,
}

impl FailingPageFile {
    /// Wraps `inner`, exposing the faults armed on `control`.
    pub fn new(inner: Box<dyn PageFile>, control: Arc<FailureControl>) -> Self {
        FailingPageFile { inner, control }
    }

    /// The shared control handle.
    pub fn control(&self) -> Arc<FailureControl> {
        Arc::clone(&self.control)
    }
}

impl PageFile for FailingPageFile {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn allocate(&mut self) -> StorageResult<PageId> {
        self.inner.allocate()
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> StorageResult<()> {
        let c = &self.control;
        // ordering: SeqCst — fault knobs; see `FailureControl::fail_read`.
        let seen = c.reads_seen.fetch_add(1, Ordering::SeqCst) + 1;
        let nanos = c.slow_read_nanos.load(Ordering::SeqCst);
        if nanos > 0 {
            // analyze: allow(panic-path) — the simulated slow disk *is* the
            // feature; latency injection has no condvar to wait on.
            std::thread::sleep(Duration::from_nanos(nanos));
        }
        // ordering: SeqCst — fault knobs; see `FailureControl::fail_read`.
        let armed = c.fail_read_at.load(Ordering::SeqCst);
        if armed != 0 && seen == armed {
            return Err(StorageError::Io(std::io::Error::other(
                "injected read failure",
            )));
        }
        // ordering: SeqCst — fault knob; see `FailureControl::fail_read`.
        if c.corrupt_page.load(Ordering::SeqCst) == id.0 as u64 {
            return Err(StorageError::Corrupt {
                page: id,
                stored: 0,
                computed: 1,
            });
        }
        self.inner.read(id, buf)
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> StorageResult<()> {
        self.inner.write(id, data)
    }

    fn free(&mut self, id: PageId) -> StorageResult<()> {
        self.inner.free(id)
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.inner.sync()
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemPageFile;
    use std::time::Instant;

    fn armed_file() -> (FailingPageFile, Arc<FailureControl>, PageId) {
        let mut inner = MemPageFile::new(64);
        let a = inner.allocate().unwrap();
        inner.write(a, &[0x42; 64]).unwrap();
        let control = FailureControl::new();
        let f = FailingPageFile::new(Box::new(inner), Arc::clone(&control));
        (f, control, a)
    }

    #[test]
    fn passes_through_when_disarmed() {
        let (f, control, a) = armed_file();
        let mut buf = [0u8; 64];
        f.read(a, &mut buf).unwrap();
        assert_eq!(buf, [0x42; 64]);
        assert_eq!(control.reads_seen(), 1);
        assert_eq!(f.stats().reads, 1);
    }

    #[test]
    fn nth_read_fails_then_recovers() {
        let (f, control, a) = armed_file();
        control.fail_read(2);
        let mut buf = [0u8; 64];
        f.read(a, &mut buf).unwrap();
        assert!(matches!(f.read(a, &mut buf), Err(StorageError::Io(_))));
        // The ordinal fired once; subsequent reads succeed again.
        f.read(a, &mut buf).unwrap();
        assert_eq!(control.reads_seen(), 3);
        // The failed read never reached the inner file.
        assert_eq!(f.stats().reads, 2);
    }

    #[test]
    fn corrupt_page_fails_every_read_until_disarmed() {
        let (f, control, a) = armed_file();
        control.corrupt(a);
        let mut buf = [0u8; 64];
        for _ in 0..2 {
            assert!(matches!(
                f.read(a, &mut buf),
                Err(StorageError::Corrupt { .. })
            ));
        }
        control.disarm();
        f.read(a, &mut buf).unwrap();
        assert_eq!(buf, [0x42; 64]);
    }

    #[test]
    fn slow_reads_add_latency() {
        let (f, control, a) = armed_file();
        control.slow_reads(Duration::from_millis(5));
        let mut buf = [0u8; 64];
        let start = Instant::now();
        for _ in 0..4 {
            f.read(a, &mut buf).unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(20));
        control.disarm();
    }
}
