//! Page identifiers and sizing constants.

use std::fmt;

/// Page size used throughout the paper's experiments: 1 KiB, which yields an
/// R*-tree node capacity of `M = 21` (Section 4).
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Identifier of a page within a [`PageFile`](crate::PageFile).
///
/// Page ids are dense small integers — an index into the file — so they
/// also serve directly as R-tree child "pointers" on disk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel for "no page" (e.g. an empty tree's root pointer).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// `true` unless this is the [`INVALID`](Self::INVALID) sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "PageId({})", self.0)
        } else {
            write!(f, "PageId(INVALID)")
        }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
        assert_eq!(format!("{}", PageId::INVALID), "PageId(INVALID)");
        assert_eq!(format!("{}", PageId(7)), "PageId(7)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PageId(1) < PageId(2));
        assert_eq!(PageId(3).index(), 3);
    }
}
