//! Storage error type.

use crate::page::PageId;
use std::fmt;
use std::io;

/// Result alias used throughout the storage layer.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by page files and buffer pools.
#[derive(Debug)]
pub enum StorageError {
    /// A page id beyond the end of the file was referenced.
    PageOutOfBounds(PageId),
    /// The referenced page has been freed and not reallocated.
    PageFreed(PageId),
    /// A buffer shorter/longer than the page size was supplied.
    WrongBufferSize {
        /// Expected page size in bytes.
        expected: usize,
        /// Actual buffer length supplied by the caller.
        actual: usize,
    },
    /// The on-disk file header is missing or malformed.
    CorruptHeader(String),
    /// A page's stored checksum does not match its contents — the bytes
    /// rotted on disk (or were tampered with) between write and read.
    Corrupt {
        /// The page whose checksum failed.
        page: PageId,
        /// The checksum stored alongside the page.
        stored: u32,
        /// The checksum computed from the bytes actually read.
        computed: u32,
    },
    /// Underlying I/O failure (file-backed stores only).
    Io(io::Error),
}

impl StorageError {
    /// A structural copy of the error.
    ///
    /// `StorageError` cannot implement `Clone` because [`io::Error`] does
    /// not; `io::Error` payloads are flattened to their kind plus rendered
    /// message. The I/O scheduler uses this to deliver one physical-read
    /// failure to every request that was deduplicated onto it.
    pub fn duplicate(&self) -> StorageError {
        match self {
            StorageError::PageOutOfBounds(id) => StorageError::PageOutOfBounds(*id),
            StorageError::PageFreed(id) => StorageError::PageFreed(*id),
            StorageError::WrongBufferSize { expected, actual } => StorageError::WrongBufferSize {
                expected: *expected,
                actual: *actual,
            },
            StorageError::CorruptHeader(msg) => StorageError::CorruptHeader(msg.clone()),
            StorageError::Corrupt {
                page,
                stored,
                computed,
            } => StorageError::Corrupt {
                page: *page,
                stored: *stored,
                computed: *computed,
            },
            StorageError::Io(e) => StorageError::Io(io::Error::new(e.kind(), e.to_string())),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfBounds(id) => write!(f, "page {id} is out of bounds"),
            StorageError::PageFreed(id) => write!(f, "page {id} has been freed"),
            StorageError::WrongBufferSize { expected, actual } => {
                write!(
                    f,
                    "buffer size {actual} does not match page size {expected}"
                )
            }
            StorageError::CorruptHeader(msg) => write!(f, "corrupt file header: {msg}"),
            StorageError::Corrupt {
                page,
                stored,
                computed,
            } => write!(
                f,
                "page {page} is corrupt: stored checksum {stored:#010x}, computed {computed:#010x}"
            ),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::PageOutOfBounds(PageId(9));
        assert!(e.to_string().contains("out of bounds"));
        let e = StorageError::WrongBufferSize {
            expected: 1024,
            actual: 10,
        };
        assert!(e.to_string().contains("1024"));
    }

    #[test]
    fn duplicate_preserves_shape() {
        let e = StorageError::Io(io::Error::new(io::ErrorKind::TimedOut, "slow disk"));
        match e.duplicate() {
            StorageError::Io(d) => {
                assert_eq!(d.kind(), io::ErrorKind::TimedOut);
                assert!(d.to_string().contains("slow disk"));
            }
            other => panic!("expected Io, got {other:?}"),
        }
        let e = StorageError::Corrupt {
            page: PageId(3),
            stored: 1,
            computed: 2,
        };
        assert!(matches!(
            e.duplicate(),
            StorageError::Corrupt {
                page: PageId(3),
                ..
            }
        ));
    }

    #[test]
    fn io_error_converts() {
        let io = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
