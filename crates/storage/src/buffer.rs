//! Buffer pool with pluggable page-replacement policies.
//!
//! The paper's experiments put an LRU buffer of `B` pages in front of the two
//! R-trees, `B/2` pages each (Section 4.3.3), and report buffer **misses** as
//! disk accesses. `capacity = 0` disables caching entirely — the "zero
//! buffer" configuration most experiments start from.
//!
//! # Concurrency
//!
//! The pool keeps its bookkeeping (`frames`/`map`/counters) behind a `Mutex`
//! and the page file behind a `RwLock`. Cache hits touch only the state
//! mutex; **miss I/O runs under the file's shared read guard with the state
//! mutex released**, so several threads can overlap physical reads — the
//! property the parallel K-CPQ executor's speculative prefetch relies on.
//! Lock order is always state → file; no path waits on the state mutex while
//! holding the file lock, so the two locks cannot deadlock.

use crate::error::StorageResult;
use crate::file::PageFile;
use crate::page::PageId;
use crate::stats::IoStats;
use cpq_check::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;

/// Immutable page contents, cheaply cloneable (one atomic increment per
/// clone, like the `bytes::Bytes` it replaces — dropped so the workspace
/// builds without registry access).
pub type PageBytes = Arc<[u8]>;

/// Page-replacement policy interface.
///
/// The pool calls `evict` only when every frame is occupied, so policies can
/// assume all frames hold pages at that point. Frame indices are dense in
/// `0..capacity`.
pub trait ReplacementPolicy: Send {
    /// Human-readable policy name (reported by the ablation benches).
    fn name(&self) -> &'static str;
    /// Re-initializes bookkeeping for a pool of `capacity` frames.
    fn resize(&mut self, capacity: usize);
    /// A cached page in `frame` was accessed.
    fn on_hit(&mut self, frame: usize);
    /// A page was installed into `frame`.
    fn on_insert(&mut self, frame: usize);
    /// Chooses a victim frame, never a pinned one. Called only when the
    /// pool is full and at least one frame is unpinned.
    fn evict(&mut self, pinned: &[bool]) -> usize;
    /// The page in `frame` was removed outside of eviction (e.g. freed).
    fn on_remove(&mut self, frame: usize);
}

/// Least-recently-used replacement — the policy used throughout the paper.
///
/// Recency is tracked with a monotone counter per frame; eviction scans for
/// the minimum. Pools in the experiments hold at most 128 frames, so the
/// `O(capacity)` scan is irrelevant next to the page decode that follows.
#[derive(Debug, Default)]
pub struct LruPolicy {
    stamp: Vec<u64>,
    clock: u64,
}

impl LruPolicy {
    /// Creates the policy; the pool resizes it on attach.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }
    fn resize(&mut self, capacity: usize) {
        self.stamp = vec![0; capacity];
        self.clock = 0;
    }
    fn on_hit(&mut self, frame: usize) {
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }
    fn on_insert(&mut self, frame: usize) {
        self.on_hit(frame);
    }
    fn evict(&mut self, pinned: &[bool]) -> usize {
        self.stamp
            .iter()
            .enumerate()
            .filter(|(i, _)| !pinned[*i])
            .min_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            // lint: allow(expect) — the pool calls evict only when an
            // unpinned frame exists (checked by the caller).
            .expect("evict called with every frame pinned")
    }
    fn on_remove(&mut self, frame: usize) {
        self.stamp[frame] = 0;
    }
}

/// First-in-first-out replacement (ablation baseline: ignores recency).
#[derive(Debug, Default)]
pub struct FifoPolicy {
    stamp: Vec<u64>,
    clock: u64,
}

impl FifoPolicy {
    /// Creates the policy; the pool resizes it on attach.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn resize(&mut self, capacity: usize) {
        self.stamp = vec![0; capacity];
        self.clock = 0;
    }
    fn on_hit(&mut self, _frame: usize) {}
    fn on_insert(&mut self, frame: usize) {
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }
    fn evict(&mut self, pinned: &[bool]) -> usize {
        self.stamp
            .iter()
            .enumerate()
            .filter(|(i, _)| !pinned[*i])
            .min_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            // lint: allow(expect) — the pool calls evict only when an
            // unpinned frame exists (checked by the caller).
            .expect("evict called with every frame pinned")
    }
    fn on_remove(&mut self, frame: usize) {
        self.stamp[frame] = 0;
    }
}

/// Second-chance ("clock") replacement (ablation: approximates LRU with one
/// reference bit per frame).
#[derive(Debug, Default)]
pub struct ClockPolicy {
    referenced: Vec<bool>,
    hand: usize,
}

impl ClockPolicy {
    /// Creates the policy; the pool resizes it on attach.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "clock"
    }
    fn resize(&mut self, capacity: usize) {
        self.referenced = vec![false; capacity];
        self.hand = 0;
    }
    fn on_hit(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }
    fn on_insert(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }
    fn evict(&mut self, pinned: &[bool]) -> usize {
        let n = self.referenced.len();
        assert!(n > 0, "evict called on zero-capacity pool");
        debug_assert!(pinned.iter().any(|&p| !p), "every frame pinned");
        loop {
            let f = self.hand;
            self.hand = (self.hand + 1) % n;
            if pinned[f] {
                continue;
            }
            if self.referenced[f] {
                self.referenced[f] = false;
            } else {
                return f;
            }
        }
    }
    fn on_remove(&mut self, frame: usize) {
        self.referenced[frame] = false;
    }
}

/// Logical-access counters maintained by the buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Logical page reads requested by callers.
    pub logical_reads: u64,
    /// Reads served from cache.
    pub hits: u64,
    /// Reads that had to touch the page file — the paper's *disk accesses*.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Logical writes (write-through).
    pub writes: u64,
}

impl BufferStats {
    /// Cache hit rate in `[0, 1]`; 0 when no reads happened.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.hits as f64 / self.logical_reads as f64
        }
    }
}

struct Frame {
    page: PageId,
    data: PageBytes,
}

struct State {
    capacity: usize,
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    free_frames: Vec<usize>,
    pinned: Vec<bool>,
    pinned_count: usize,
    policy: Box<dyn ReplacementPolicy>,
    stats: BufferStats,
}

impl State {
    /// Serves `id` from cache if resident, counting a hit.
    fn try_hit(&mut self, id: PageId) -> Option<PageBytes> {
        let f = *self.map.get(&id)?;
        self.stats.logical_reads += 1;
        self.stats.hits += 1;
        self.policy.on_hit(f);
        Some(
            self.frames[f]
                .as_ref()
                // lint: allow(expect) — `map` only points at occupied frames
                // (structural invariant of the pool state).
                .expect("mapped frame must be occupied")
                .data
                .clone(),
        )
    }

    /// Accounts one successful miss and installs the page (capacity and
    /// pins permitting). If another thread installed `id` while the file
    /// read ran outside the state lock, the existing frame is kept.
    fn complete_miss(&mut self, id: PageId, data: &PageBytes) {
        self.stats.logical_reads += 1;
        self.stats.misses += 1;
        if self.capacity == 0 || self.map.contains_key(&id) {
            return;
        }
        let frame = match self.free_frames.pop() {
            Some(f) => f,
            None if self.pinned_count < self.capacity => {
                let victim = self.policy.evict(&self.pinned);
                debug_assert!(!self.pinned[victim], "policy evicted a pinned frame");
                let old = self.frames[victim]
                    .take()
                    // lint: allow(expect) — no free frame existed, so every frame
                    // (including the victim) is occupied.
                    .expect("victim frame must be occupied");
                self.map.remove(&old.page);
                self.stats.evictions += 1;
                victim
            }
            // Every frame pinned: serve the read uncached.
            None => return,
        };
        self.frames[frame] = Some(Frame {
            page: id,
            data: data.clone(),
        });
        self.map.insert(id, frame);
        self.policy.on_insert(frame);
    }

    fn reset_cache(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.map.clear();
        self.frames = (0..capacity).map(|_| None).collect();
        self.free_frames = (0..capacity).rev().collect();
        self.pinned = vec![false; capacity];
        self.pinned_count = 0;
        self.policy.resize(capacity);
    }
}

/// A page cache in front of a [`PageFile`].
///
/// * Read path: [`read_page`](BufferPool::read_page) returns the page
///   contents as cheaply-cloneable [`PageBytes`]; a miss faults the page in and
///   (capacity permitting) caches it, evicting per the policy. Miss I/O runs
///   under the file's shared read guard with the bookkeeping mutex released,
///   so concurrent misses overlap; [`get_many`](BufferPool::get_many) batches
///   the lock traffic for multi-page fetches.
/// * Write path: write-through — the file always holds the latest data, and
///   a cached copy is refreshed in place.
/// * Interior mutability: all methods take `&self` so two trees can be read
///   concurrently by one query algorithm.
pub struct BufferPool {
    file: RwLock<Box<dyn PageFile>>,
    state: Mutex<State>,
}

impl BufferPool {
    /// Creates a pool over `file` with `capacity` frames and the given policy.
    pub fn new(
        file: Box<dyn PageFile>,
        capacity: usize,
        mut policy: Box<dyn ReplacementPolicy>,
    ) -> Self {
        policy.resize(capacity);
        BufferPool {
            file: RwLock::new(file),
            state: Mutex::new(State {
                capacity,
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::new(),
                free_frames: (0..capacity).rev().collect(),
                pinned: vec![false; capacity],
                pinned_count: 0,
                policy,
                stats: BufferStats::default(),
            }),
        }
    }

    /// Convenience: LRU pool (the paper's configuration).
    pub fn with_lru(file: Box<dyn PageFile>, capacity: usize) -> Self {
        Self::new(file, capacity, Box::new(LruPolicy::new()))
    }

    /// Locks the bookkeeping state. Poisoning is unrecoverable here: a panic
    /// while holding the lock leaves frame bookkeeping undefined.
    fn guard(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("buffer pool mutex poisoned")
    }

    fn file_read(&self) -> RwLockReadGuard<'_, Box<dyn PageFile>> {
        self.file.read().expect("page file lock poisoned")
    }

    fn file_write(&self) -> RwLockWriteGuard<'_, Box<dyn PageFile>> {
        self.file.write().expect("page file lock poisoned")
    }

    /// Page size of the underlying file.
    pub fn page_size(&self) -> usize {
        self.file_read().page_size()
    }

    /// Number of pages in the underlying file.
    pub fn num_pages(&self) -> u32 {
        self.file_read().num_pages()
    }

    /// Current frame capacity.
    pub fn capacity(&self) -> usize {
        self.guard().capacity
    }

    /// Name of the replacement policy.
    pub fn policy_name(&self) -> &'static str {
        self.guard().policy.name()
    }

    /// Allocates a fresh page in the underlying file.
    pub fn allocate(&self) -> StorageResult<PageId> {
        self.file_write().allocate()
    }

    /// Reads a page, through the cache.
    ///
    /// Counters move only when the read *succeeds*: a failed physical read
    /// (out of bounds, freed page, I/O error, corrupt checksum) leaves
    /// `logical_reads`, `hits`, and `misses` all untouched. That preserves
    /// the bookkeeping invariants `logical_reads == hits + misses` and
    /// `misses == io.reads` whenever no read is in flight — counting the
    /// miss up front would let the two sides disagree forever after the
    /// first failed read.
    pub fn read_page(&self, id: PageId) -> StorageResult<PageBytes> {
        if let Some(data) = self.guard().try_hit(id) {
            return Ok(data);
        }
        // Miss: physical read under the shared file guard, state unlocked,
        // so concurrent misses (and their latencies) overlap.
        let data = {
            let file = self.file_read();
            let mut buf = vec![0u8; file.page_size()];
            file.read(id, &mut buf)?;
            PageBytes::from(buf)
        };
        self.guard().complete_miss(id, &data);
        Ok(data)
    }

    /// Batched [`read_page`](Self::read_page): one state pass classifies
    /// hits and misses, one shared file guard serves **all** miss I/O, and
    /// one final state pass accounts and installs the fetched pages — three
    /// lock acquisitions total instead of up to three per page.
    ///
    /// Counter semantics match `read_page` exactly (pages are accounted
    /// individually, only on successful physical reads). If any physical
    /// read fails, the pages read before the failure are still accounted
    /// and cached, and the first error is returned.
    pub fn get_many(&self, ids: &[PageId]) -> StorageResult<Vec<PageBytes>> {
        let mut out: Vec<Option<PageBytes>> = vec![None; ids.len()];
        let mut missing: Vec<(usize, PageId)> = Vec::new();
        {
            let mut st = self.guard();
            for (i, &id) in ids.iter().enumerate() {
                match st.try_hit(id) {
                    Some(data) => out[i] = Some(data),
                    None => missing.push((i, id)),
                }
            }
        }
        if missing.is_empty() {
            // lint: allow(expect) — every index was filled by a hit or
            // pushed to `missing` above.
            return Ok(out.into_iter().map(|o| o.expect("hit filled")).collect());
        }
        let mut fetched: Vec<(usize, PageId, PageBytes)> = Vec::with_capacity(missing.len());
        let mut first_err = None;
        {
            let file = self.file_read();
            let ps = file.page_size();
            for &(i, id) in &missing {
                let mut buf = vec![0u8; ps];
                match file.read(id, &mut buf) {
                    Ok(()) => fetched.push((i, id, PageBytes::from(buf))),
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
        }
        {
            let mut st = self.guard();
            for (i, id, data) in fetched {
                st.complete_miss(id, &data);
                out[i] = Some(data);
            }
        }
        match first_err {
            Some(e) => Err(e),
            // lint: allow(expect) — with no error, every missing index was
            // filled by the fetch loop above.
            None => Ok(out.into_iter().map(|o| o.expect("page filled")).collect()),
        }
    }

    /// Writes a page, write-through, refreshing any cached copy. As with
    /// [`read_page`](Self::read_page), the `writes` counter moves only on
    /// success, keeping it equal to the file's physical write count.
    pub fn write_page(&self, id: PageId, data: &[u8]) -> StorageResult<()> {
        let mut st = self.guard();
        self.file_write().write(id, data)?;
        st.stats.writes += 1;
        if let Some(&f) = st.map.get(&id) {
            st.frames[f]
                .as_mut()
                // lint: allow(expect) — `map` only points at occupied frames
                // (structural invariant of the pool state).
                .expect("mapped frame must be occupied")
                .data = PageBytes::from(data);
            st.policy.on_hit(f);
        }
        Ok(())
    }

    /// Frees a page and drops any cached copy (clearing any pin).
    pub fn free_page(&self, id: PageId) -> StorageResult<()> {
        let mut st = self.guard();
        if let Some(f) = st.map.remove(&id) {
            st.frames[f] = None;
            st.free_frames.push(f);
            if st.pinned[f] {
                st.pinned[f] = false;
                st.pinned_count -= 1;
            }
            st.policy.on_remove(f);
        }
        self.file_write().free(id)
    }

    /// Pins a page: it is faulted into the cache (if not resident) and never
    /// evicted until [`unpin_page`](Self::unpin_page), [`clear`](Self::clear)
    /// or [`set_capacity`](Self::set_capacity). Returns `false` when the
    /// pool has no capacity or no unpinned frame to hold it.
    ///
    /// Use case: keeping the upper levels of an R-tree resident, a common
    /// production policy the paper's B/2-LRU experiments do not model (see
    /// EXPERIMENTS.md note 3).
    pub fn pin_page(&self, id: PageId) -> StorageResult<bool> {
        // Fault it in through the normal path first.
        self.read_page(id)?;
        let mut st = self.guard();
        match st.map.get(&id).copied() {
            Some(f) => {
                if !st.pinned[f] {
                    st.pinned[f] = true;
                    st.pinned_count += 1;
                }
                Ok(true)
            }
            None => Ok(false), // capacity 0 or everything pinned
        }
    }

    /// Removes the pin from a page, if it was pinned.
    pub fn unpin_page(&self, id: PageId) {
        let mut st = self.guard();
        if let Some(&f) = st.map.get(&id) {
            if st.pinned[f] {
                st.pinned[f] = false;
                st.pinned_count -= 1;
            }
        }
    }

    /// Number of currently pinned pages.
    pub fn pinned_pages(&self) -> usize {
        self.guard().pinned_count
    }

    /// Buffer-level counters.
    pub fn buffer_stats(&self) -> BufferStats {
        self.guard().stats
    }

    /// Physical counters of the underlying file.
    pub fn io_stats(&self) -> IoStats {
        self.file_read().stats()
    }

    /// Both counter sets, read under one state-lock critical section.
    ///
    /// Counters move only with successful page operations, so whenever no
    /// miss is in flight the books balance: `logical_reads == hits + misses`
    /// and `misses == io.reads`. Because miss I/O runs outside the state
    /// mutex, a snapshot taken *while* another thread faults a page in may
    /// transiently observe `io.reads` ahead of `misses` (the physical read
    /// has happened, its accounting has not); the gap closes as soon as the
    /// miss completes. Calling [`buffer_stats`](Self::buffer_stats) and
    /// [`io_stats`](Self::io_stats) separately widens that window;
    /// concurrent consumers (the `cpq-service` metrics layer) use this
    /// method instead.
    pub fn stats_snapshot(&self) -> (BufferStats, IoStats) {
        let st = self.guard();
        let io = self.file_read().stats();
        (st.stats, io)
    }

    /// Resets both buffer and file counters.
    pub fn reset_stats(&self) {
        let mut st = self.guard();
        st.stats = BufferStats::default();
        self.file_write().reset_stats();
    }

    /// Drops every cached page and pin (counters are kept).
    pub fn clear(&self) {
        let mut st = self.guard();
        let capacity = st.capacity;
        st.reset_cache(capacity);
    }

    /// Changes the frame capacity, dropping all cached pages.
    ///
    /// Experiments build trees with a roomy cache, then call this with the
    /// per-tree budget `B/2` (and [`reset_stats`](Self::reset_stats)) before
    /// measuring queries.
    pub fn set_capacity(&self, capacity: usize) {
        self.guard().reset_cache(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemPageFile;

    fn pool_with(capacity: usize, policy: Box<dyn ReplacementPolicy>) -> BufferPool {
        let file = MemPageFile::new(64);
        BufferPool::new(Box::new(file), capacity, policy)
    }

    fn fill(pool: &BufferPool, n: usize) -> Vec<PageId> {
        (0..n)
            .map(|i| {
                let id = pool.allocate().unwrap();
                pool.write_page(id, &[i as u8; 64]).unwrap();
                id
            })
            .collect()
    }

    #[test]
    fn zero_capacity_counts_every_read_as_miss() {
        let pool = pool_with(0, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        for _ in 0..5 {
            for &id in &ids {
                pool.read_page(id).unwrap();
            }
        }
        let s = pool.buffer_stats();
        assert_eq!(s.logical_reads, 15);
        assert_eq!(s.misses, 15);
        assert_eq!(s.hits, 0);
        assert_eq!(pool.io_stats().reads, 15);
    }

    #[test]
    fn hits_served_from_cache() {
        let pool = pool_with(4, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        for _ in 0..5 {
            for &id in &ids {
                pool.read_page(id).unwrap();
            }
        }
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 3, "each page faults exactly once");
        assert_eq!(s.hits, 12);
        assert_eq!(pool.io_stats().reads, 3);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap(); // miss, cache {0}
        pool.read_page(ids[1]).unwrap(); // miss, cache {0,1}
        pool.read_page(ids[0]).unwrap(); // hit, 0 becomes most recent
        pool.read_page(ids[2]).unwrap(); // miss, evicts 1 (LRU), cache {0,2}
        pool.read_page(ids[0]).unwrap(); // hit -> proves 0 survived, 1 was the victim
        pool.read_page(ids[1]).unwrap(); // miss, evicts 2, cache {0,1}
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn fifo_ignores_recency() {
        let pool = pool_with(2, Box::new(FifoPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap(); // miss {0}
        pool.read_page(ids[1]).unwrap(); // miss {0,1}
        pool.read_page(ids[0]).unwrap(); // hit; FIFO order unchanged
        pool.read_page(ids[2]).unwrap(); // miss, evicts 0 (oldest insert)
        pool.read_page(ids[0]).unwrap(); // miss -> proves 0 was evicted
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn clock_gives_second_chances() {
        let pool = pool_with(2, Box::new(ClockPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        pool.read_page(ids[1]).unwrap();
        pool.read_page(ids[2]).unwrap(); // all ref bits true -> sweep clears, evicts frame 0
        pool.read_page(ids[1]).unwrap(); // page 1 still cached? frame0 held page0 -> evicted; 1 remains
        let s = pool.buffer_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn write_through_updates_cache() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        pool.read_page(ids[0]).unwrap(); // cache it
        pool.write_page(ids[0], &[9u8; 64]).unwrap();
        let bytes = pool.read_page(ids[0]).unwrap();
        assert_eq!(&bytes[..], &vec![9u8; 64][..]);
        // That read must have been a hit (cache refreshed, not invalidated).
        assert!(pool.buffer_stats().hits >= 1);
    }

    #[test]
    fn free_page_purges_cache() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        pool.read_page(ids[0]).unwrap();
        pool.free_page(ids[0]).unwrap();
        assert!(
            pool.read_page(ids[0]).is_err(),
            "freed page must not be readable"
        );
    }

    #[test]
    fn set_capacity_clears_and_resizes() {
        let pool = pool_with(4, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 4);
        for &id in &ids {
            pool.read_page(id).unwrap();
        }
        pool.set_capacity(1);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        pool.read_page(ids[1]).unwrap();
        pool.read_page(ids[0]).unwrap();
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 3, "capacity 1 thrashes on alternating pages");
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 5);
        assert!(pool.pin_page(ids[0]).unwrap());
        assert_eq!(pool.pinned_pages(), 1);
        pool.reset_stats();
        // Thrash through the other pages; the pinned one must stay resident.
        for _ in 0..3 {
            for &id in &ids[1..] {
                pool.read_page(id).unwrap();
            }
        }
        pool.read_page(ids[0]).unwrap();
        let s = pool.buffer_stats();
        assert_eq!(s.hits, 1, "pinned page must still be cached");
    }

    #[test]
    fn unpin_restores_evictability() {
        let pool = pool_with(1, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 2);
        assert!(pool.pin_page(ids[0]).unwrap());
        // With the single frame pinned, other reads bypass the cache.
        pool.read_page(ids[1]).unwrap();
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        assert_eq!(pool.buffer_stats().hits, 1);
        pool.unpin_page(ids[0]);
        assert_eq!(pool.pinned_pages(), 0);
        pool.read_page(ids[1]).unwrap(); // now evicts the unpinned page
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        assert_eq!(pool.buffer_stats().misses, 1, "unpinned page was evicted");
    }

    #[test]
    fn pin_fails_gracefully_without_capacity() {
        let pool = pool_with(0, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        assert!(!pool.pin_page(ids[0]).unwrap());
        assert_eq!(pool.pinned_pages(), 0);
    }

    #[test]
    fn all_pinned_pool_serves_reads_uncached() {
        let pool = pool_with(1, Box::new(ClockPolicy::new()));
        let ids = fill(&pool, 3);
        assert!(pool.pin_page(ids[0]).unwrap());
        // Second pin cannot displace the first.
        assert!(!pool.pin_page(ids[1]).unwrap());
        // Reads still work, just uncached.
        for _ in 0..3 {
            pool.read_page(ids[2]).unwrap();
        }
        assert_eq!(pool.pinned_pages(), 1);
    }

    #[test]
    fn set_capacity_clears_pins() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        assert!(pool.pin_page(ids[0]).unwrap());
        pool.set_capacity(2);
        assert_eq!(pool.pinned_pages(), 0);
    }

    #[test]
    fn hit_rate() {
        let s = BufferStats {
            logical_reads: 10,
            hits: 4,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.4);
        assert_eq!(BufferStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn get_many_mixes_hits_and_misses() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.read_page(ids[0]).unwrap(); // cache page 0
        pool.reset_stats();
        let pages = pool.get_many(&[ids[0], ids[1], ids[2], ids[0]]).unwrap();
        assert_eq!(pages.len(), 4);
        assert_eq!(&pages[0][..], &[0u8; 64][..]);
        assert_eq!(&pages[1][..], &[1u8; 64][..]);
        assert_eq!(&pages[2][..], &[2u8; 64][..]);
        assert_eq!(&pages[3][..], &[0u8; 64][..]);
        let s = pool.buffer_stats();
        assert_eq!(s.logical_reads, 4);
        assert_eq!(s.hits, 2, "page 0 was resident for both requests");
        assert_eq!(s.misses, 2);
        assert_eq!(pool.io_stats().reads, 2);
    }

    #[test]
    fn get_many_accounts_successes_before_error() {
        let pool = pool_with(4, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 2);
        pool.reset_stats();
        let err = pool.get_many(&[ids[0], PageId(99), ids[1]]);
        assert!(err.is_err());
        let (b, io) = pool.stats_snapshot();
        // The page read before the failure is accounted and cached; the page
        // after the failure is never read.
        assert_eq!(b.misses, 1);
        assert_eq!(io.reads, 1);
        assert_eq!(b.logical_reads, b.hits + b.misses);
    }

    #[test]
    fn concurrent_misses_keep_books_balanced() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 8);
        pool.reset_stats();
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = &pool;
                let ids = &ids;
                s.spawn(move || {
                    for i in 0..200 {
                        let id = ids[(i * 7 + t * 3) % ids.len()];
                        pool.read_page(id).unwrap();
                    }
                });
            }
        });
        let (b, io) = pool.stats_snapshot();
        assert_eq!(b.logical_reads, 800);
        assert_eq!(b.logical_reads, b.hits + b.misses);
        assert_eq!(b.misses, io.reads, "books balance at quiescence");
    }
}
