//! Buffer pool with pluggable page-replacement policies.
//!
//! The paper's experiments put an LRU buffer of `B` pages in front of the two
//! R-trees, `B/2` pages each (Section 4.3.3), and report buffer **misses** as
//! disk accesses. `capacity = 0` disables caching entirely — the "zero
//! buffer" configuration most experiments start from.
//!
//! # Concurrency
//!
//! The pool keeps its bookkeeping (`frames`/`map`/counters) behind a `Mutex`
//! and the page file behind a `RwLock`. Cache hits touch only the state
//! mutex; **miss I/O runs under the file's shared read guard with the state
//! mutex released**, so several threads can overlap physical reads — the
//! property the parallel K-CPQ executor's speculative prefetch relies on.
//! Lock order is always state → file; no path waits on the state mutex while
//! holding the file lock, so the two locks cannot deadlock.

use crate::error::StorageResult;
use crate::file::PageFile;
use crate::page::PageId;
use crate::sched::{DemandTicket, SchedConfig, SchedHandle, SchedPageFile, SchedStats};
use crate::stats::IoStats;
use cpq_check::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::cell::RefCell;
use std::collections::HashMap;

// Reusable per-thread miss buffer: a page is read into this scratch and
// copied once into its final `PageBytes` allocation, instead of paying a
// fresh `vec![0u8; page_size]` heap allocation on every miss.
thread_local! {
    static MISS_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Reads one page into the thread-local scratch and returns it as
/// freshly-allocated [`PageBytes`] — the only allocation on the miss path.
// analyze: allow-fn(panic-surface) — the scratch buffer is resized to the
// page size immediately before the `[..ps]` slices; the index is in bounds
// by construction.
fn read_via_scratch(file: &dyn PageFile, id: PageId) -> StorageResult<PageBytes> {
    MISS_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let ps = file.page_size();
        if buf.len() < ps {
            buf.resize(ps, 0);
        }
        file.read(id, &mut buf[..ps])?;
        Ok(PageBytes::from(&buf[..ps]))
    })
}

/// Immutable page contents, cheaply cloneable (one atomic increment per
/// clone, like the `bytes::Bytes` it replaces — dropped so the workspace
/// builds without registry access).
pub type PageBytes = Arc<[u8]>;

/// Page-replacement policy interface.
///
/// The pool calls `evict` only when every frame is occupied, so policies can
/// assume all frames hold pages at that point. Frame indices are dense in
/// `0..capacity`.
pub trait ReplacementPolicy: Send {
    /// Human-readable policy name (reported by the ablation benches).
    fn name(&self) -> &'static str;
    /// Re-initializes bookkeeping for a pool of `capacity` frames.
    fn resize(&mut self, capacity: usize);
    /// A cached page in `frame` was accessed.
    fn on_hit(&mut self, frame: usize);
    /// A page was installed into `frame`.
    fn on_insert(&mut self, frame: usize);
    /// Chooses a victim frame, never a pinned one. Called only when the
    /// pool is full and at least one frame is unpinned.
    fn evict(&mut self, pinned: &[bool]) -> usize;
    /// The page in `frame` was removed outside of eviction (e.g. freed).
    fn on_remove(&mut self, frame: usize);
}

/// Least-recently-used replacement — the policy used throughout the paper.
///
/// Recency is tracked with a monotone counter per frame; eviction scans for
/// the minimum. Pools in the experiments hold at most 128 frames, so the
/// `O(capacity)` scan is irrelevant next to the page decode that follows.
#[derive(Debug, Default)]
pub struct LruPolicy {
    stamp: Vec<u64>,
    clock: u64,
}

impl LruPolicy {
    /// Creates the policy; the pool resizes it on attach.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }
    fn resize(&mut self, capacity: usize) {
        self.stamp = vec![0; capacity];
        self.clock = 0;
    }
    fn on_hit(&mut self, frame: usize) {
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }
    fn on_insert(&mut self, frame: usize) {
        self.on_hit(frame);
    }
    fn evict(&mut self, pinned: &[bool]) -> usize {
        self.stamp
            .iter()
            .enumerate()
            .filter(|(i, _)| !pinned[*i])
            .min_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            // analyze: allow(panic-path) — the pool calls evict only when an
            // unpinned frame exists (checked by the caller).
            .expect("evict called with every frame pinned")
    }
    fn on_remove(&mut self, frame: usize) {
        self.stamp[frame] = 0;
    }
}

/// First-in-first-out replacement (ablation baseline: ignores recency).
#[derive(Debug, Default)]
pub struct FifoPolicy {
    stamp: Vec<u64>,
    clock: u64,
}

impl FifoPolicy {
    /// Creates the policy; the pool resizes it on attach.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn resize(&mut self, capacity: usize) {
        self.stamp = vec![0; capacity];
        self.clock = 0;
    }
    fn on_hit(&mut self, _frame: usize) {}
    fn on_insert(&mut self, frame: usize) {
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }
    fn evict(&mut self, pinned: &[bool]) -> usize {
        self.stamp
            .iter()
            .enumerate()
            .filter(|(i, _)| !pinned[*i])
            .min_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            // analyze: allow(panic-path) — the pool calls evict only when an
            // unpinned frame exists (checked by the caller).
            .expect("evict called with every frame pinned")
    }
    fn on_remove(&mut self, frame: usize) {
        self.stamp[frame] = 0;
    }
}

/// Second-chance ("clock") replacement (ablation: approximates LRU with one
/// reference bit per frame).
#[derive(Debug, Default)]
pub struct ClockPolicy {
    referenced: Vec<bool>,
    hand: usize,
}

impl ClockPolicy {
    /// Creates the policy; the pool resizes it on attach.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "clock"
    }
    fn resize(&mut self, capacity: usize) {
        self.referenced = vec![false; capacity];
        self.hand = 0;
    }
    fn on_hit(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }
    fn on_insert(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }
    fn evict(&mut self, pinned: &[bool]) -> usize {
        let n = self.referenced.len();
        assert!(n > 0, "evict called on zero-capacity pool");
        debug_assert!(pinned.iter().any(|&p| !p), "every frame pinned");
        loop {
            let f = self.hand;
            self.hand = (self.hand + 1) % n;
            if pinned[f] {
                continue;
            }
            if self.referenced[f] {
                self.referenced[f] = false;
            } else {
                return f;
            }
        }
    }
    fn on_remove(&mut self, frame: usize) {
        self.referenced[frame] = false;
    }
}

/// Logical-access counters maintained by the buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Logical page reads requested by callers.
    pub logical_reads: u64,
    /// Reads served from cache.
    pub hits: u64,
    /// Reads that had to touch the page file — the paper's *disk accesses*.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Logical writes (write-through).
    pub writes: u64,
}

impl BufferStats {
    /// Cache hit rate in `[0, 1]`; 0 when no reads happened.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.hits as f64 / self.logical_reads as f64
        }
    }
}

struct Frame {
    page: PageId,
    data: PageBytes,
}

struct State {
    capacity: usize,
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    free_frames: Vec<usize>,
    pinned: Vec<bool>,
    pinned_count: usize,
    policy: Box<dyn ReplacementPolicy>,
    stats: BufferStats,
}

impl State {
    /// Serves `id` from cache if resident, counting a hit.
    // analyze: allow-fn(panic-surface) — frame indices come from `map`,
    // which only points at occupied in-capacity frames (structural
    // invariant of the pool state).
    fn try_hit(&mut self, id: PageId) -> Option<PageBytes> {
        let f = *self.map.get(&id)?;
        self.stats.logical_reads += 1;
        self.stats.hits += 1;
        self.policy.on_hit(f);
        Some(
            self.frames[f]
                .as_ref()
                // analyze: allow(panic-path) — `map` only points at occupied frames
                // (structural invariant of the pool state).
                .expect("mapped frame must be occupied")
                .data
                .clone(),
        )
    }

    /// Accounts one successful miss and installs the page (capacity and
    /// pins permitting). If another thread installed `id` while the file
    /// read ran outside the state lock, the existing frame is kept.
    // analyze: allow-fn(panic-surface) — frame indices come from the free
    // list or the eviction policy, both bounded by `capacity` (structural
    // invariant of the pool state).
    fn complete_miss(&mut self, id: PageId, data: &PageBytes) {
        self.stats.logical_reads += 1;
        self.stats.misses += 1;
        if self.capacity == 0 || self.map.contains_key(&id) {
            return;
        }
        let frame = match self.free_frames.pop() {
            Some(f) => f,
            None if self.pinned_count < self.capacity => {
                let victim = self.policy.evict(&self.pinned);
                debug_assert!(!self.pinned[victim], "policy evicted a pinned frame");
                let old = self.frames[victim]
                    .take()
                    // analyze: allow(panic-path) — no free frame existed, so every frame
                    // (including the victim) is occupied.
                    .expect("victim frame must be occupied");
                self.map.remove(&old.page);
                self.stats.evictions += 1;
                victim
            }
            // Every frame pinned: serve the read uncached.
            None => return,
        };
        self.frames[frame] = Some(Frame {
            page: id,
            data: data.clone(),
        });
        self.map.insert(id, frame);
        self.policy.on_insert(frame);
    }

    fn reset_cache(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.map.clear();
        self.frames = (0..capacity).map(|_| None).collect();
        self.free_frames = (0..capacity).rev().collect();
        self.pinned = vec![false; capacity];
        self.pinned_count = 0;
        self.policy.resize(capacity);
    }
}

/// A page cache in front of a [`PageFile`].
///
/// * Read path: [`read_page`](BufferPool::read_page) returns the page
///   contents as cheaply-cloneable [`PageBytes`]; a miss faults the page in and
///   (capacity permitting) caches it, evicting per the policy. Miss I/O runs
///   under the file's shared read guard with the bookkeeping mutex released,
///   so concurrent misses overlap; [`get_many`](BufferPool::get_many) batches
///   the lock traffic for multi-page fetches.
/// * Write path: write-through — the file always holds the latest data, and
///   a cached copy is refreshed in place.
/// * Interior mutability: all methods take `&self` so two trees can be read
///   concurrently by one query algorithm.
pub struct BufferPool {
    file: RwLock<Box<dyn PageFile>>,
    state: Mutex<State>,
    /// Present when the pool's file is a [`SchedPageFile`]: miss I/O goes
    /// through the scheduler (dedup, coalescing) and
    /// [`prefetch`](Self::prefetch) becomes live.
    sched: Option<SchedHandle>,
}

impl BufferPool {
    /// Creates a pool over `file` with `capacity` frames and the given policy.
    pub fn new(
        file: Box<dyn PageFile>,
        capacity: usize,
        mut policy: Box<dyn ReplacementPolicy>,
    ) -> Self {
        policy.resize(capacity);
        BufferPool {
            file: RwLock::new(file),
            state: Mutex::new(State {
                capacity,
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::new(),
                free_frames: (0..capacity).rev().collect(),
                pinned: vec![false; capacity],
                pinned_count: 0,
                policy,
                stats: BufferStats::default(),
            }),
            sched: None,
        }
    }

    /// Convenience: LRU pool (the paper's configuration).
    pub fn with_lru(file: Box<dyn PageFile>, capacity: usize) -> Self {
        Self::new(file, capacity, Box::new(LruPolicy::new()))
    }

    /// Creates a pool whose miss I/O runs through an I/O scheduler
    /// ([`SchedPageFile`]) wrapped around `inner`: concurrent misses for
    /// one page dedup onto one physical read, contiguous misses coalesce
    /// into span reads, and [`prefetch`](Self::prefetch) hints are served
    /// in idle gaps. The accounting contract is unchanged —
    /// `misses == io.reads` at quiescence (see `crate::sched`).
    pub fn new_scheduled(
        inner: Box<dyn PageFile>,
        capacity: usize,
        policy: Box<dyn ReplacementPolicy>,
        cfg: SchedConfig,
    ) -> Self {
        let sched_file = SchedPageFile::new(inner, cfg);
        let handle = sched_file.handle();
        let mut pool = Self::new(Box::new(sched_file), capacity, policy);
        pool.sched = Some(handle);
        pool
    }

    /// Convenience: LRU pool over a scheduled file.
    pub fn with_lru_scheduled(inner: Box<dyn PageFile>, capacity: usize, cfg: SchedConfig) -> Self {
        Self::new_scheduled(inner, capacity, Box::new(LruPolicy::new()), cfg)
    }

    /// Whether miss I/O goes through the I/O scheduler.
    pub fn is_scheduled(&self) -> bool {
        self.sched.is_some()
    }

    /// Scheduler counters (coalesce ratio, prefetch outcomes, stall time),
    /// or `None` for an unscheduled pool.
    pub fn sched_stats(&self) -> Option<SchedStats> {
        self.sched.as_ref().map(|s| s.stats())
    }

    /// Requests currently queued in the scheduler; 0 for an unscheduled
    /// pool.
    pub fn io_queue_depth(&self) -> usize {
        self.sched.as_ref().map_or(0, |s| s.queue_depth())
    }

    /// Hints that `ids` will likely be read soon. On a scheduled pool the
    /// pages are fetched at low priority in I/O idle gaps (a later miss
    /// claims the buffered result or joins the in-flight read instead of
    /// stalling on a fresh one); on an unscheduled pool this is a no-op.
    /// Prefetch bypasses the cache and its counters entirely — no
    /// `logical_reads`, hit, or miss moves until a real read arrives.
    pub fn prefetch(&self, ids: &[PageId]) {
        if let Some(s) = &self.sched {
            s.prefetch(ids);
        }
    }

    /// Locks the bookkeeping state. Poisoning is unrecoverable here: a panic
    /// while holding the lock leaves frame bookkeeping undefined.
    fn guard(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("buffer pool mutex poisoned")
    }

    fn file_read(&self) -> RwLockReadGuard<'_, Box<dyn PageFile>> {
        self.file.read().expect("page file lock poisoned")
    }

    fn file_write(&self) -> RwLockWriteGuard<'_, Box<dyn PageFile>> {
        self.file.write().expect("page file lock poisoned")
    }

    /// Page size of the underlying file.
    pub fn page_size(&self) -> usize {
        self.file_read().page_size()
    }

    /// Number of pages in the underlying file.
    pub fn num_pages(&self) -> u32 {
        self.file_read().num_pages()
    }

    /// Current frame capacity.
    pub fn capacity(&self) -> usize {
        self.guard().capacity
    }

    /// Name of the replacement policy.
    pub fn policy_name(&self) -> &'static str {
        self.guard().policy.name()
    }

    /// Allocates a fresh page in the underlying file.
    pub fn allocate(&self) -> StorageResult<PageId> {
        self.file_write().allocate()
    }

    /// Reads a page, through the cache.
    ///
    /// Counters move only when the read *succeeds*: a failed physical read
    /// (out of bounds, freed page, I/O error, corrupt checksum) leaves
    /// `logical_reads`, `hits`, and `misses` all untouched. That preserves
    /// the bookkeeping invariants `logical_reads == hits + misses` and
    /// `misses == io.reads` whenever no read is in flight — counting the
    /// miss up front would let the two sides disagree forever after the
    /// first failed read.
    pub fn read_page(&self, id: PageId) -> StorageResult<PageBytes> {
        if let Some(data) = self.guard().try_hit(id) {
            return Ok(data);
        }
        // Miss: physical read under the shared file guard, state unlocked,
        // so concurrent misses (and their latencies) overlap. A scheduled
        // pool demands through the handle — the result arrives as
        // `PageBytes` already, no copy out of a caller buffer.
        let data = {
            let file = self.file_read();
            match &self.sched {
                Some(s) => s.demand(id)?,
                None => read_via_scratch(file.as_ref(), id)?,
            }
        };
        self.guard().complete_miss(id, &data);
        Ok(data)
    }

    /// Batched [`read_page`](Self::read_page): one state pass classifies
    /// hits and misses, one shared file guard serves **all** miss I/O, and
    /// one final state pass accounts and installs the fetched pages — three
    /// lock acquisitions total instead of up to three per page.
    ///
    /// Counter semantics match `read_page` exactly (pages are accounted
    /// individually, only on successful physical reads). If any physical
    /// read fails, successfully-read pages are still accounted and cached,
    /// and the first error (in request order) is returned. On an
    /// unscheduled pool reads stop at the first failure; a scheduled pool
    /// submits every miss up front (so they overlap and coalesce) and thus
    /// completes — and accounts — the successful ones after the failure
    /// too. Both keep the books balanced: every counted miss is a
    /// successful physical read.
    // analyze: allow-fn(panic-surface) — `out` is allocated with
    // `ids.len()` slots and every index `i` enumerates `ids`, so the
    // indexing cannot go out of bounds.
    pub fn get_many(&self, ids: &[PageId]) -> StorageResult<Vec<PageBytes>> {
        let mut out: Vec<Option<PageBytes>> = vec![None; ids.len()];
        let mut missing: Vec<(usize, PageId)> = Vec::new();
        {
            let mut st = self.guard();
            for (i, &id) in ids.iter().enumerate() {
                match st.try_hit(id) {
                    Some(data) => out[i] = Some(data),
                    None => missing.push((i, id)),
                }
            }
        }
        if missing.is_empty() {
            // analyze: allow(panic-path) — every index was filled by a hit or
            // pushed to `missing` above.
            return Ok(out.into_iter().map(|o| o.expect("hit filled")).collect());
        }
        let mut fetched: Vec<(usize, PageId, PageBytes)> = Vec::with_capacity(missing.len());
        let mut first_err = None;
        {
            let file = self.file_read();
            match &self.sched {
                Some(s) => {
                    // Submit every miss before waiting on any: the
                    // scheduler overlaps and coalesces them. All misses
                    // are therefore physically read even when one fails;
                    // each success is still accounted, and the first
                    // error (in request order) is returned.
                    let tickets: Vec<(usize, PageId, DemandTicket)> = missing
                        .iter()
                        .map(|&(i, id)| (i, id, s.submit(id)))
                        .collect();
                    for (i, id, t) in tickets {
                        match s.finish(t) {
                            Ok(data) => fetched.push((i, id, data)),
                            Err(e) => {
                                if first_err.is_none() {
                                    first_err = Some(e);
                                }
                            }
                        }
                    }
                }
                None => {
                    for &(i, id) in &missing {
                        match read_via_scratch(file.as_ref(), id) {
                            Ok(data) => fetched.push((i, id, data)),
                            Err(e) => {
                                first_err = Some(e);
                                break;
                            }
                        }
                    }
                }
            }
        }
        {
            let mut st = self.guard();
            for (i, id, data) in fetched {
                st.complete_miss(id, &data);
                out[i] = Some(data);
            }
        }
        match first_err {
            Some(e) => Err(e),
            // analyze: allow(panic-path) — with no error, every missing index was
            // filled by the fetch loop above.
            None => Ok(out.into_iter().map(|o| o.expect("page filled")).collect()),
        }
    }

    /// Writes a page, write-through, refreshing any cached copy. As with
    /// [`read_page`](Self::read_page), the `writes` counter moves only on
    /// success, keeping it equal to the file's physical write count.
    pub fn write_page(&self, id: PageId, data: &[u8]) -> StorageResult<()> {
        let mut st = self.guard();
        self.file_write().write(id, data)?;
        st.stats.writes += 1;
        if let Some(&f) = st.map.get(&id) {
            st.frames[f]
                .as_mut()
                // analyze: allow(panic-path) — `map` only points at occupied frames
                // (structural invariant of the pool state).
                .expect("mapped frame must be occupied")
                .data = PageBytes::from(data);
            st.policy.on_hit(f);
        }
        Ok(())
    }

    /// Frees a page and drops any cached copy (clearing any pin).
    pub fn free_page(&self, id: PageId) -> StorageResult<()> {
        let mut st = self.guard();
        if let Some(f) = st.map.remove(&id) {
            st.frames[f] = None;
            st.free_frames.push(f);
            if st.pinned[f] {
                st.pinned[f] = false;
                st.pinned_count -= 1;
            }
            st.policy.on_remove(f);
        }
        self.file_write().free(id)
    }

    /// Pins a page: it is faulted into the cache (if not resident) and never
    /// evicted until [`unpin_page`](Self::unpin_page), [`clear`](Self::clear)
    /// or [`set_capacity`](Self::set_capacity). Returns `false` when the
    /// pool has no capacity or no unpinned frame to hold it.
    ///
    /// Use case: keeping the upper levels of an R-tree resident, a common
    /// production policy the paper's B/2-LRU experiments do not model (see
    /// EXPERIMENTS.md note 3).
    pub fn pin_page(&self, id: PageId) -> StorageResult<bool> {
        // Fault it in through the normal path first.
        self.read_page(id)?;
        let mut st = self.guard();
        match st.map.get(&id).copied() {
            Some(f) => {
                if !st.pinned[f] {
                    st.pinned[f] = true;
                    st.pinned_count += 1;
                }
                Ok(true)
            }
            None => Ok(false), // capacity 0 or everything pinned
        }
    }

    /// Removes the pin from a page, if it was pinned.
    pub fn unpin_page(&self, id: PageId) {
        let mut st = self.guard();
        if let Some(&f) = st.map.get(&id) {
            if st.pinned[f] {
                st.pinned[f] = false;
                st.pinned_count -= 1;
            }
        }
    }

    /// Number of currently pinned pages.
    pub fn pinned_pages(&self) -> usize {
        self.guard().pinned_count
    }

    /// Buffer-level counters.
    pub fn buffer_stats(&self) -> BufferStats {
        self.guard().stats
    }

    /// Physical counters of the underlying file.
    pub fn io_stats(&self) -> IoStats {
        self.file_read().stats()
    }

    /// Both counter sets, read under one state-lock critical section.
    ///
    /// Counters move only with successful page operations, so whenever no
    /// miss is in flight the books balance: `logical_reads == hits + misses`
    /// and `misses == io.reads`. Because miss I/O runs outside the state
    /// mutex, a snapshot taken *while* another thread faults a page in may
    /// transiently observe `io.reads` ahead of `misses` (the physical read
    /// has happened, its accounting has not); the gap closes as soon as the
    /// miss completes. Calling [`buffer_stats`](Self::buffer_stats) and
    /// [`io_stats`](Self::io_stats) separately widens that window;
    /// concurrent consumers (the `cpq-service` metrics layer) use this
    /// method instead.
    pub fn stats_snapshot(&self) -> (BufferStats, IoStats) {
        let st = self.guard();
        let io = self.file_read().stats();
        (st.stats, io)
    }

    /// Flushes the underlying file's buffered state (header, metadata) to
    /// durable storage; no-op for in-memory files.
    pub fn sync(&self) -> StorageResult<()> {
        self.file_write().sync()
    }

    /// Resets both buffer and file counters.
    pub fn reset_stats(&self) {
        let mut st = self.guard();
        st.stats = BufferStats::default();
        self.file_write().reset_stats();
    }

    /// Drops every cached page and pin (counters are kept).
    pub fn clear(&self) {
        let mut st = self.guard();
        let capacity = st.capacity;
        st.reset_cache(capacity);
    }

    /// Changes the frame capacity, dropping all cached pages.
    ///
    /// Experiments build trees with a roomy cache, then call this with the
    /// per-tree budget `B/2` (and [`reset_stats`](Self::reset_stats)) before
    /// measuring queries.
    pub fn set_capacity(&self, capacity: usize) {
        self.guard().reset_cache(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemPageFile;

    fn pool_with(capacity: usize, policy: Box<dyn ReplacementPolicy>) -> BufferPool {
        let file = MemPageFile::new(64);
        BufferPool::new(Box::new(file), capacity, policy)
    }

    fn fill(pool: &BufferPool, n: usize) -> Vec<PageId> {
        (0..n)
            .map(|i| {
                let id = pool.allocate().unwrap();
                pool.write_page(id, &[i as u8; 64]).unwrap();
                id
            })
            .collect()
    }

    #[test]
    fn zero_capacity_counts_every_read_as_miss() {
        let pool = pool_with(0, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        for _ in 0..5 {
            for &id in &ids {
                pool.read_page(id).unwrap();
            }
        }
        let s = pool.buffer_stats();
        assert_eq!(s.logical_reads, 15);
        assert_eq!(s.misses, 15);
        assert_eq!(s.hits, 0);
        assert_eq!(pool.io_stats().reads, 15);
    }

    #[test]
    fn hits_served_from_cache() {
        let pool = pool_with(4, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        for _ in 0..5 {
            for &id in &ids {
                pool.read_page(id).unwrap();
            }
        }
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 3, "each page faults exactly once");
        assert_eq!(s.hits, 12);
        assert_eq!(pool.io_stats().reads, 3);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap(); // miss, cache {0}
        pool.read_page(ids[1]).unwrap(); // miss, cache {0,1}
        pool.read_page(ids[0]).unwrap(); // hit, 0 becomes most recent
        pool.read_page(ids[2]).unwrap(); // miss, evicts 1 (LRU), cache {0,2}
        pool.read_page(ids[0]).unwrap(); // hit -> proves 0 survived, 1 was the victim
        pool.read_page(ids[1]).unwrap(); // miss, evicts 2, cache {0,1}
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn fifo_ignores_recency() {
        let pool = pool_with(2, Box::new(FifoPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap(); // miss {0}
        pool.read_page(ids[1]).unwrap(); // miss {0,1}
        pool.read_page(ids[0]).unwrap(); // hit; FIFO order unchanged
        pool.read_page(ids[2]).unwrap(); // miss, evicts 0 (oldest insert)
        pool.read_page(ids[0]).unwrap(); // miss -> proves 0 was evicted
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn clock_gives_second_chances() {
        let pool = pool_with(2, Box::new(ClockPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        pool.read_page(ids[1]).unwrap();
        pool.read_page(ids[2]).unwrap(); // all ref bits true -> sweep clears, evicts frame 0
        pool.read_page(ids[1]).unwrap(); // page 1 still cached? frame0 held page0 -> evicted; 1 remains
        let s = pool.buffer_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn write_through_updates_cache() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        pool.read_page(ids[0]).unwrap(); // cache it
        pool.write_page(ids[0], &[9u8; 64]).unwrap();
        let bytes = pool.read_page(ids[0]).unwrap();
        assert_eq!(&bytes[..], &vec![9u8; 64][..]);
        // That read must have been a hit (cache refreshed, not invalidated).
        assert!(pool.buffer_stats().hits >= 1);
    }

    #[test]
    fn free_page_purges_cache() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        pool.read_page(ids[0]).unwrap();
        pool.free_page(ids[0]).unwrap();
        assert!(
            pool.read_page(ids[0]).is_err(),
            "freed page must not be readable"
        );
    }

    #[test]
    fn set_capacity_clears_and_resizes() {
        let pool = pool_with(4, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 4);
        for &id in &ids {
            pool.read_page(id).unwrap();
        }
        pool.set_capacity(1);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        pool.read_page(ids[1]).unwrap();
        pool.read_page(ids[0]).unwrap();
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 3, "capacity 1 thrashes on alternating pages");
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 5);
        assert!(pool.pin_page(ids[0]).unwrap());
        assert_eq!(pool.pinned_pages(), 1);
        pool.reset_stats();
        // Thrash through the other pages; the pinned one must stay resident.
        for _ in 0..3 {
            for &id in &ids[1..] {
                pool.read_page(id).unwrap();
            }
        }
        pool.read_page(ids[0]).unwrap();
        let s = pool.buffer_stats();
        assert_eq!(s.hits, 1, "pinned page must still be cached");
    }

    #[test]
    fn unpin_restores_evictability() {
        let pool = pool_with(1, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 2);
        assert!(pool.pin_page(ids[0]).unwrap());
        // With the single frame pinned, other reads bypass the cache.
        pool.read_page(ids[1]).unwrap();
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        assert_eq!(pool.buffer_stats().hits, 1);
        pool.unpin_page(ids[0]);
        assert_eq!(pool.pinned_pages(), 0);
        pool.read_page(ids[1]).unwrap(); // now evicts the unpinned page
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        assert_eq!(pool.buffer_stats().misses, 1, "unpinned page was evicted");
    }

    #[test]
    fn pin_fails_gracefully_without_capacity() {
        let pool = pool_with(0, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        assert!(!pool.pin_page(ids[0]).unwrap());
        assert_eq!(pool.pinned_pages(), 0);
    }

    #[test]
    fn all_pinned_pool_serves_reads_uncached() {
        let pool = pool_with(1, Box::new(ClockPolicy::new()));
        let ids = fill(&pool, 3);
        assert!(pool.pin_page(ids[0]).unwrap());
        // Second pin cannot displace the first.
        assert!(!pool.pin_page(ids[1]).unwrap());
        // Reads still work, just uncached.
        for _ in 0..3 {
            pool.read_page(ids[2]).unwrap();
        }
        assert_eq!(pool.pinned_pages(), 1);
    }

    #[test]
    fn set_capacity_clears_pins() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        assert!(pool.pin_page(ids[0]).unwrap());
        pool.set_capacity(2);
        assert_eq!(pool.pinned_pages(), 0);
    }

    #[test]
    fn hit_rate() {
        let s = BufferStats {
            logical_reads: 10,
            hits: 4,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.4);
        assert_eq!(BufferStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn get_many_mixes_hits_and_misses() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.read_page(ids[0]).unwrap(); // cache page 0
        pool.reset_stats();
        let pages = pool.get_many(&[ids[0], ids[1], ids[2], ids[0]]).unwrap();
        assert_eq!(pages.len(), 4);
        assert_eq!(&pages[0][..], &[0u8; 64][..]);
        assert_eq!(&pages[1][..], &[1u8; 64][..]);
        assert_eq!(&pages[2][..], &[2u8; 64][..]);
        assert_eq!(&pages[3][..], &[0u8; 64][..]);
        let s = pool.buffer_stats();
        assert_eq!(s.logical_reads, 4);
        assert_eq!(s.hits, 2, "page 0 was resident for both requests");
        assert_eq!(s.misses, 2);
        assert_eq!(pool.io_stats().reads, 2);
    }

    #[test]
    fn get_many_accounts_successes_before_error() {
        let pool = pool_with(4, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 2);
        pool.reset_stats();
        let err = pool.get_many(&[ids[0], PageId(99), ids[1]]);
        assert!(err.is_err());
        let (b, io) = pool.stats_snapshot();
        // The page read before the failure is accounted and cached; the page
        // after the failure is never read.
        assert_eq!(b.misses, 1);
        assert_eq!(io.reads, 1);
        assert_eq!(b.logical_reads, b.hits + b.misses);
    }

    #[test]
    fn scheduled_pool_keeps_ledger_exact_with_prefetch() {
        let file = MemPageFile::new(64);
        let pool = BufferPool::with_lru_scheduled(Box::new(file), 0, SchedConfig::default());
        assert!(pool.is_scheduled());
        let ids = fill(&pool, 8);
        pool.reset_stats();
        // Prefetch half the pages, then read everything twice through a
        // zero-capacity pool: every logical read is a miss, and the ledger
        // must balance exactly even though prefetched physical reads
        // happened with no miss attached.
        pool.prefetch(&ids[..4]);
        for _ in 0..2 {
            for &id in &ids {
                pool.read_page(id).unwrap();
            }
        }
        let (b, io) = pool.stats_snapshot();
        assert_eq!(b.logical_reads, 16);
        assert_eq!(b.misses, 16);
        assert_eq!(b.hits, 0);
        assert_eq!(io.reads, 16, "demand accounting: misses == io.reads");
        let s = pool.sched_stats().unwrap();
        assert!(s.prefetch_hits > 0, "prefetched pages served misses: {s:?}");
        assert_eq!(s.demand_reads, 16);
    }

    #[test]
    fn scheduled_get_many_coalesces_and_balances() {
        let file = MemPageFile::new(64);
        let pool = BufferPool::with_lru_scheduled(Box::new(file), 4, SchedConfig::default());
        let ids = fill(&pool, 12);
        pool.reset_stats();
        let pages = pool.get_many(&ids).unwrap();
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(&p[..], &[i as u8; 64][..]);
        }
        let (b, io) = pool.stats_snapshot();
        assert_eq!(b.logical_reads, 12);
        assert_eq!(b.misses, 12);
        assert_eq!(io.reads, 12);
        let s = pool.sched_stats().unwrap();
        assert!(
            s.coalesce_ratio() > 1.0,
            "contiguous batch misses must merge into span reads: {s:?}"
        );
    }

    #[test]
    fn scheduled_get_many_surfaces_error_and_accounts_successes() {
        let file = MemPageFile::new(64);
        let pool = BufferPool::with_lru_scheduled(Box::new(file), 4, SchedConfig::default());
        let ids = fill(&pool, 2);
        pool.reset_stats();
        assert!(pool.get_many(&[ids[0], PageId(99), ids[1]]).is_err());
        let (b, io) = pool.stats_snapshot();
        // Scheduled pools submit everything up front: both valid pages are
        // read and accounted; the out-of-bounds one fails and counts nothing.
        assert_eq!(b.misses, 2);
        assert_eq!(io.reads, 2);
        assert_eq!(b.logical_reads, b.hits + b.misses);
    }

    #[test]
    fn unscheduled_pool_prefetch_is_a_noop() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 2);
        pool.reset_stats();
        pool.prefetch(&ids);
        assert!(!pool.is_scheduled());
        assert!(pool.sched_stats().is_none());
        assert_eq!(pool.io_queue_depth(), 0);
        let (b, io) = pool.stats_snapshot();
        assert_eq!(b.logical_reads, 0);
        assert_eq!(io.reads, 0, "no-op prefetch must not touch the file");
    }

    #[test]
    fn concurrent_misses_keep_books_balanced() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 8);
        pool.reset_stats();
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = &pool;
                let ids = &ids;
                s.spawn(move || {
                    for i in 0..200 {
                        let id = ids[(i * 7 + t * 3) % ids.len()];
                        pool.read_page(id).unwrap();
                    }
                });
            }
        });
        let (b, io) = pool.stats_snapshot();
        assert_eq!(b.logical_reads, 800);
        assert_eq!(b.logical_reads, b.hits + b.misses);
        assert_eq!(b.misses, io.reads, "books balance at quiescence");
    }
}
