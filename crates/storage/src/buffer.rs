//! Buffer pool with pluggable page-replacement policies.
//!
//! The paper's experiments put an LRU buffer of `B` pages in front of the two
//! R-trees, `B/2` pages each (Section 4.3.3), and report buffer **misses** as
//! disk accesses. `capacity = 0` disables caching entirely — the "zero
//! buffer" configuration most experiments start from.

use crate::error::StorageResult;
use crate::file::PageFile;
use crate::page::PageId;
use crate::stats::IoStats;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Immutable page contents, cheaply cloneable (one atomic increment per
/// clone, like the `bytes::Bytes` it replaces — dropped so the workspace
/// builds without registry access).
pub type PageBytes = Arc<[u8]>;

/// Page-replacement policy interface.
///
/// The pool calls `evict` only when every frame is occupied, so policies can
/// assume all frames hold pages at that point. Frame indices are dense in
/// `0..capacity`.
pub trait ReplacementPolicy: Send {
    /// Human-readable policy name (reported by the ablation benches).
    fn name(&self) -> &'static str;
    /// Re-initializes bookkeeping for a pool of `capacity` frames.
    fn resize(&mut self, capacity: usize);
    /// A cached page in `frame` was accessed.
    fn on_hit(&mut self, frame: usize);
    /// A page was installed into `frame`.
    fn on_insert(&mut self, frame: usize);
    /// Chooses a victim frame, never a pinned one. Called only when the
    /// pool is full and at least one frame is unpinned.
    fn evict(&mut self, pinned: &[bool]) -> usize;
    /// The page in `frame` was removed outside of eviction (e.g. freed).
    fn on_remove(&mut self, frame: usize);
}

/// Least-recently-used replacement — the policy used throughout the paper.
///
/// Recency is tracked with a monotone counter per frame; eviction scans for
/// the minimum. Pools in the experiments hold at most 128 frames, so the
/// `O(capacity)` scan is irrelevant next to the page decode that follows.
#[derive(Debug, Default)]
pub struct LruPolicy {
    stamp: Vec<u64>,
    clock: u64,
}

impl LruPolicy {
    /// Creates the policy; the pool resizes it on attach.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }
    fn resize(&mut self, capacity: usize) {
        self.stamp = vec![0; capacity];
        self.clock = 0;
    }
    fn on_hit(&mut self, frame: usize) {
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }
    fn on_insert(&mut self, frame: usize) {
        self.on_hit(frame);
    }
    fn evict(&mut self, pinned: &[bool]) -> usize {
        self.stamp
            .iter()
            .enumerate()
            .filter(|(i, _)| !pinned[*i])
            .min_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            .expect("evict called with every frame pinned")
    }
    fn on_remove(&mut self, frame: usize) {
        self.stamp[frame] = 0;
    }
}

/// First-in-first-out replacement (ablation baseline: ignores recency).
#[derive(Debug, Default)]
pub struct FifoPolicy {
    stamp: Vec<u64>,
    clock: u64,
}

impl FifoPolicy {
    /// Creates the policy; the pool resizes it on attach.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn resize(&mut self, capacity: usize) {
        self.stamp = vec![0; capacity];
        self.clock = 0;
    }
    fn on_hit(&mut self, _frame: usize) {}
    fn on_insert(&mut self, frame: usize) {
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }
    fn evict(&mut self, pinned: &[bool]) -> usize {
        self.stamp
            .iter()
            .enumerate()
            .filter(|(i, _)| !pinned[*i])
            .min_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            .expect("evict called with every frame pinned")
    }
    fn on_remove(&mut self, frame: usize) {
        self.stamp[frame] = 0;
    }
}

/// Second-chance ("clock") replacement (ablation: approximates LRU with one
/// reference bit per frame).
#[derive(Debug, Default)]
pub struct ClockPolicy {
    referenced: Vec<bool>,
    hand: usize,
}

impl ClockPolicy {
    /// Creates the policy; the pool resizes it on attach.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "clock"
    }
    fn resize(&mut self, capacity: usize) {
        self.referenced = vec![false; capacity];
        self.hand = 0;
    }
    fn on_hit(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }
    fn on_insert(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }
    fn evict(&mut self, pinned: &[bool]) -> usize {
        let n = self.referenced.len();
        assert!(n > 0, "evict called on zero-capacity pool");
        debug_assert!(pinned.iter().any(|&p| !p), "every frame pinned");
        loop {
            let f = self.hand;
            self.hand = (self.hand + 1) % n;
            if pinned[f] {
                continue;
            }
            if self.referenced[f] {
                self.referenced[f] = false;
            } else {
                return f;
            }
        }
    }
    fn on_remove(&mut self, frame: usize) {
        self.referenced[frame] = false;
    }
}

/// Logical-access counters maintained by the buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Logical page reads requested by callers.
    pub logical_reads: u64,
    /// Reads served from cache.
    pub hits: u64,
    /// Reads that had to touch the page file — the paper's *disk accesses*.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Logical writes (write-through).
    pub writes: u64,
}

impl BufferStats {
    /// Cache hit rate in `[0, 1]`; 0 when no reads happened.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.hits as f64 / self.logical_reads as f64
        }
    }
}

struct Frame {
    page: PageId,
    data: PageBytes,
}

struct Inner {
    file: Box<dyn PageFile>,
    capacity: usize,
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    free_frames: Vec<usize>,
    pinned: Vec<bool>,
    pinned_count: usize,
    policy: Box<dyn ReplacementPolicy>,
    stats: BufferStats,
}

/// A page cache in front of a [`PageFile`].
///
/// * Read path: [`read_page`](BufferPool::read_page) returns the page
///   contents as cheaply-cloneable [`PageBytes`]; a miss faults the page in and
///   (capacity permitting) caches it, evicting per the policy.
/// * Write path: write-through — the file always holds the latest data, and
///   a cached copy is refreshed in place.
/// * Interior mutability: all methods take `&self` so two trees can be read
///   concurrently by one query algorithm.
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Creates a pool over `file` with `capacity` frames and the given policy.
    pub fn new(
        file: Box<dyn PageFile>,
        capacity: usize,
        mut policy: Box<dyn ReplacementPolicy>,
    ) -> Self {
        policy.resize(capacity);
        BufferPool {
            inner: Mutex::new(Inner {
                file,
                capacity,
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::new(),
                free_frames: (0..capacity).rev().collect(),
                pinned: vec![false; capacity],
                pinned_count: 0,
                policy,
                stats: BufferStats::default(),
            }),
        }
    }

    /// Convenience: LRU pool (the paper's configuration).
    pub fn with_lru(file: Box<dyn PageFile>, capacity: usize) -> Self {
        Self::new(file, capacity, Box::new(LruPolicy::new()))
    }

    /// Locks the pool state. Poisoning is unrecoverable here: a panic while
    /// holding the lock leaves frame bookkeeping undefined.
    fn guard(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("buffer pool mutex poisoned")
    }

    /// Page size of the underlying file.
    pub fn page_size(&self) -> usize {
        self.guard().file.page_size()
    }

    /// Number of pages in the underlying file.
    pub fn num_pages(&self) -> u32 {
        self.guard().file.num_pages()
    }

    /// Current frame capacity.
    pub fn capacity(&self) -> usize {
        self.guard().capacity
    }

    /// Name of the replacement policy.
    pub fn policy_name(&self) -> &'static str {
        self.guard().policy.name()
    }

    /// Allocates a fresh page in the underlying file.
    pub fn allocate(&self) -> StorageResult<PageId> {
        self.guard().file.allocate()
    }

    /// Reads a page, through the cache.
    ///
    /// Counters move only when the read *succeeds*: a failed physical read
    /// (out of bounds, freed page, I/O error, corrupt checksum) leaves
    /// `logical_reads`, `hits`, and `misses` all untouched. That preserves
    /// the bookkeeping invariants `logical_reads == hits + misses` and
    /// `misses == io.reads` in every [`stats_snapshot`](Self::stats_snapshot)
    /// — counting the miss up front would let the two sides disagree
    /// forever after the first failed read.
    pub fn read_page(&self, id: PageId) -> StorageResult<PageBytes> {
        let mut g = self.guard();
        if let Some(&f) = g.map.get(&id) {
            g.stats.logical_reads += 1;
            g.stats.hits += 1;
            g.policy.on_hit(f);
            return Ok(g.frames[f]
                .as_ref()
                .expect("mapped frame must be occupied")
                .data
                .clone());
        }
        let ps = g.file.page_size();
        let mut buf = vec![0u8; ps];
        g.file.read(id, &mut buf)?;
        g.stats.logical_reads += 1;
        g.stats.misses += 1;
        let data = PageBytes::from(buf);
        if g.capacity > 0 {
            let frame = match g.free_frames.pop() {
                Some(f) => f,
                None if g.pinned_count < g.capacity => {
                    let inner = &mut *g;
                    let victim = inner.policy.evict(&inner.pinned);
                    let g = &mut *inner;
                    debug_assert!(!g.pinned[victim], "policy evicted a pinned frame");
                    let old = g.frames[victim]
                        .take()
                        .expect("victim frame must be occupied");
                    g.map.remove(&old.page);
                    g.stats.evictions += 1;
                    victim
                }
                // Every frame pinned: serve the read uncached.
                None => return Ok(data),
            };
            g.frames[frame] = Some(Frame {
                page: id,
                data: data.clone(),
            });
            g.map.insert(id, frame);
            g.policy.on_insert(frame);
        }
        Ok(data)
    }

    /// Writes a page, write-through, refreshing any cached copy. As with
    /// [`read_page`](Self::read_page), the `writes` counter moves only on
    /// success, keeping it equal to the file's physical write count.
    pub fn write_page(&self, id: PageId, data: &[u8]) -> StorageResult<()> {
        let mut g = self.guard();
        g.file.write(id, data)?;
        g.stats.writes += 1;
        if let Some(&f) = g.map.get(&id) {
            g.frames[f]
                .as_mut()
                .expect("mapped frame must be occupied")
                .data = PageBytes::from(data);
            g.policy.on_hit(f);
        }
        Ok(())
    }

    /// Frees a page and drops any cached copy (clearing any pin).
    pub fn free_page(&self, id: PageId) -> StorageResult<()> {
        let mut g = self.guard();
        if let Some(f) = g.map.remove(&id) {
            g.frames[f] = None;
            g.free_frames.push(f);
            if g.pinned[f] {
                g.pinned[f] = false;
                g.pinned_count -= 1;
            }
            g.policy.on_remove(f);
        }
        g.file.free(id)
    }

    /// Pins a page: it is faulted into the cache (if not resident) and never
    /// evicted until [`unpin_page`](Self::unpin_page), [`clear`](Self::clear)
    /// or [`set_capacity`](Self::set_capacity). Returns `false` when the
    /// pool has no capacity or no unpinned frame to hold it.
    ///
    /// Use case: keeping the upper levels of an R-tree resident, a common
    /// production policy the paper's B/2-LRU experiments do not model (see
    /// EXPERIMENTS.md note 3).
    pub fn pin_page(&self, id: PageId) -> StorageResult<bool> {
        // Fault it in through the normal path first.
        self.read_page(id)?;
        let mut g = self.guard();
        match g.map.get(&id).copied() {
            Some(f) => {
                if !g.pinned[f] {
                    g.pinned[f] = true;
                    g.pinned_count += 1;
                }
                Ok(true)
            }
            None => Ok(false), // capacity 0 or everything pinned
        }
    }

    /// Removes the pin from a page, if it was pinned.
    pub fn unpin_page(&self, id: PageId) {
        let mut g = self.guard();
        if let Some(&f) = g.map.get(&id) {
            if g.pinned[f] {
                g.pinned[f] = false;
                g.pinned_count -= 1;
            }
        }
    }

    /// Number of currently pinned pages.
    pub fn pinned_pages(&self) -> usize {
        self.guard().pinned_count
    }

    /// Buffer-level counters.
    pub fn buffer_stats(&self) -> BufferStats {
        self.guard().stats
    }

    /// Physical counters of the underlying file.
    pub fn io_stats(&self) -> IoStats {
        self.guard().file.stats()
    }

    /// Both counter sets, read under a **single** lock acquisition.
    ///
    /// Every counter is updated inside the same critical section as the page
    /// operation it describes, so within one snapshot the books always
    /// balance: `logical_reads == hits + misses` and `misses == io.reads`.
    /// Calling [`buffer_stats`](Self::buffer_stats) and
    /// [`io_stats`](Self::io_stats) separately while other threads fault
    /// pages in can observe a torn view across the two lock acquisitions;
    /// concurrent consumers (the `cpq-service` metrics layer) use this
    /// method instead.
    pub fn stats_snapshot(&self) -> (BufferStats, IoStats) {
        let g = self.guard();
        (g.stats, g.file.stats())
    }

    /// Resets both buffer and file counters.
    pub fn reset_stats(&self) {
        let mut g = self.guard();
        g.stats = BufferStats::default();
        g.file.reset_stats();
    }

    /// Drops every cached page and pin (counters are kept).
    pub fn clear(&self) {
        let mut g = self.guard();
        let capacity = g.capacity;
        g.map.clear();
        g.frames = (0..capacity).map(|_| None).collect();
        g.free_frames = (0..capacity).rev().collect();
        g.pinned = vec![false; capacity];
        g.pinned_count = 0;
        g.policy.resize(capacity);
    }

    /// Changes the frame capacity, dropping all cached pages.
    ///
    /// Experiments build trees with a roomy cache, then call this with the
    /// per-tree budget `B/2` (and [`reset_stats`](Self::reset_stats)) before
    /// measuring queries.
    pub fn set_capacity(&self, capacity: usize) {
        let mut g = self.guard();
        g.capacity = capacity;
        g.map.clear();
        g.frames = (0..capacity).map(|_| None).collect();
        g.free_frames = (0..capacity).rev().collect();
        g.pinned = vec![false; capacity];
        g.pinned_count = 0;
        g.policy.resize(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemPageFile;

    fn pool_with(capacity: usize, policy: Box<dyn ReplacementPolicy>) -> BufferPool {
        let file = MemPageFile::new(64);
        BufferPool::new(Box::new(file), capacity, policy)
    }

    fn fill(pool: &BufferPool, n: usize) -> Vec<PageId> {
        (0..n)
            .map(|i| {
                let id = pool.allocate().unwrap();
                pool.write_page(id, &[i as u8; 64]).unwrap();
                id
            })
            .collect()
    }

    #[test]
    fn zero_capacity_counts_every_read_as_miss() {
        let pool = pool_with(0, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        for _ in 0..5 {
            for &id in &ids {
                pool.read_page(id).unwrap();
            }
        }
        let s = pool.buffer_stats();
        assert_eq!(s.logical_reads, 15);
        assert_eq!(s.misses, 15);
        assert_eq!(s.hits, 0);
        assert_eq!(pool.io_stats().reads, 15);
    }

    #[test]
    fn hits_served_from_cache() {
        let pool = pool_with(4, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        for _ in 0..5 {
            for &id in &ids {
                pool.read_page(id).unwrap();
            }
        }
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 3, "each page faults exactly once");
        assert_eq!(s.hits, 12);
        assert_eq!(pool.io_stats().reads, 3);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap(); // miss, cache {0}
        pool.read_page(ids[1]).unwrap(); // miss, cache {0,1}
        pool.read_page(ids[0]).unwrap(); // hit, 0 becomes most recent
        pool.read_page(ids[2]).unwrap(); // miss, evicts 1 (LRU), cache {0,2}
        pool.read_page(ids[0]).unwrap(); // hit -> proves 0 survived, 1 was the victim
        pool.read_page(ids[1]).unwrap(); // miss, evicts 2, cache {0,1}
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn fifo_ignores_recency() {
        let pool = pool_with(2, Box::new(FifoPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap(); // miss {0}
        pool.read_page(ids[1]).unwrap(); // miss {0,1}
        pool.read_page(ids[0]).unwrap(); // hit; FIFO order unchanged
        pool.read_page(ids[2]).unwrap(); // miss, evicts 0 (oldest insert)
        pool.read_page(ids[0]).unwrap(); // miss -> proves 0 was evicted
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn clock_gives_second_chances() {
        let pool = pool_with(2, Box::new(ClockPolicy::new()));
        let ids = fill(&pool, 3);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        pool.read_page(ids[1]).unwrap();
        pool.read_page(ids[2]).unwrap(); // all ref bits true -> sweep clears, evicts frame 0
        pool.read_page(ids[1]).unwrap(); // page 1 still cached? frame0 held page0 -> evicted; 1 remains
        let s = pool.buffer_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn write_through_updates_cache() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        pool.read_page(ids[0]).unwrap(); // cache it
        pool.write_page(ids[0], &[9u8; 64]).unwrap();
        let bytes = pool.read_page(ids[0]).unwrap();
        assert_eq!(&bytes[..], &vec![9u8; 64][..]);
        // That read must have been a hit (cache refreshed, not invalidated).
        assert!(pool.buffer_stats().hits >= 1);
    }

    #[test]
    fn free_page_purges_cache() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        pool.read_page(ids[0]).unwrap();
        pool.free_page(ids[0]).unwrap();
        assert!(
            pool.read_page(ids[0]).is_err(),
            "freed page must not be readable"
        );
    }

    #[test]
    fn set_capacity_clears_and_resizes() {
        let pool = pool_with(4, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 4);
        for &id in &ids {
            pool.read_page(id).unwrap();
        }
        pool.set_capacity(1);
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        pool.read_page(ids[1]).unwrap();
        pool.read_page(ids[0]).unwrap();
        let s = pool.buffer_stats();
        assert_eq!(s.misses, 3, "capacity 1 thrashes on alternating pages");
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 5);
        assert!(pool.pin_page(ids[0]).unwrap());
        assert_eq!(pool.pinned_pages(), 1);
        pool.reset_stats();
        // Thrash through the other pages; the pinned one must stay resident.
        for _ in 0..3 {
            for &id in &ids[1..] {
                pool.read_page(id).unwrap();
            }
        }
        pool.read_page(ids[0]).unwrap();
        let s = pool.buffer_stats();
        assert_eq!(s.hits, 1, "pinned page must still be cached");
    }

    #[test]
    fn unpin_restores_evictability() {
        let pool = pool_with(1, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 2);
        assert!(pool.pin_page(ids[0]).unwrap());
        // With the single frame pinned, other reads bypass the cache.
        pool.read_page(ids[1]).unwrap();
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        assert_eq!(pool.buffer_stats().hits, 1);
        pool.unpin_page(ids[0]);
        assert_eq!(pool.pinned_pages(), 0);
        pool.read_page(ids[1]).unwrap(); // now evicts the unpinned page
        pool.reset_stats();
        pool.read_page(ids[0]).unwrap();
        assert_eq!(pool.buffer_stats().misses, 1, "unpinned page was evicted");
    }

    #[test]
    fn pin_fails_gracefully_without_capacity() {
        let pool = pool_with(0, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        assert!(!pool.pin_page(ids[0]).unwrap());
        assert_eq!(pool.pinned_pages(), 0);
    }

    #[test]
    fn all_pinned_pool_serves_reads_uncached() {
        let pool = pool_with(1, Box::new(ClockPolicy::new()));
        let ids = fill(&pool, 3);
        assert!(pool.pin_page(ids[0]).unwrap());
        // Second pin cannot displace the first.
        assert!(!pool.pin_page(ids[1]).unwrap());
        // Reads still work, just uncached.
        for _ in 0..3 {
            pool.read_page(ids[2]).unwrap();
        }
        assert_eq!(pool.pinned_pages(), 1);
    }

    #[test]
    fn set_capacity_clears_pins() {
        let pool = pool_with(2, Box::new(LruPolicy::new()));
        let ids = fill(&pool, 1);
        assert!(pool.pin_page(ids[0]).unwrap());
        pool.set_capacity(2);
        assert_eq!(pool.pinned_pages(), 0);
    }

    #[test]
    fn hit_rate() {
        let s = BufferStats {
            logical_reads: 10,
            hits: 4,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.4);
        assert_eq!(BufferStats::default().hit_rate(), 0.0);
    }
}
