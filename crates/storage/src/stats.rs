//! Physical I/O counters.

/// Counters of physical page transfers performed by a [`PageFile`](crate::PageFile).
///
/// These count accesses that actually reach the (simulated) disk. With a
/// buffer pool in front, logical reads that hit the cache do **not** appear
/// here — this is exactly the paper's "disk accesses" metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from the file.
    pub reads: u64,
    /// Pages written to the file.
    pub writes: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
}

impl IoStats {
    /// Total physical transfers (reads + writes).
    #[inline]
    pub fn transfers(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocations: self.allocations - earlier.allocations,
            frees: self.frees - earlier.frees,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = IoStats {
            reads: 10,
            writes: 5,
            allocations: 2,
            frees: 1,
        };
        let b = IoStats {
            reads: 4,
            writes: 5,
            allocations: 0,
            frees: 0,
        };
        let d = a.since(&b);
        assert_eq!(d.reads, 6);
        assert_eq!(d.writes, 0);
        assert_eq!(d.transfers(), 6);
    }
}
