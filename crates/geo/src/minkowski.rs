//! General Minkowski (`L_p`) metrics.
//!
//! The paper notes (Section 2.1) that although `dist` stands for the
//! Euclidean distance throughout, "the presented methods can be easily
//! adapted to any Minkowski metric". This module provides those metrics and
//! the box-to-box lower bound needed to run the same pruning logic under any
//! `L_p`, plus `L_∞` (Chebyshev).

use crate::point::Point;
use crate::rect::Rect;

/// A Minkowski metric of order `p ≥ 1`, or `L_∞` (Chebyshev).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Minkowski {
    /// `L_1`: Manhattan distance.
    L1,
    /// `L_2`: Euclidean distance (the paper's default).
    L2,
    /// General `L_p` for a finite `p ≥ 1`.
    Lp(f64),
    /// `L_∞`: Chebyshev distance.
    LInf,
}

impl Minkowski {
    /// Distance between two points under this metric.
    pub fn pt_dist<const D: usize>(&self, a: &Point<D>, b: &Point<D>) -> f64 {
        match *self {
            Minkowski::L1 => (0..D).map(|d| (a.coord(d) - b.coord(d)).abs()).sum(),
            Minkowski::L2 => a.dist(b),
            Minkowski::Lp(p) => {
                debug_assert!(p >= 1.0, "Minkowski order must be >= 1");
                (0..D)
                    .map(|d| (a.coord(d) - b.coord(d)).abs().powf(p))
                    .sum::<f64>()
                    .powf(1.0 / p)
            }
            Minkowski::LInf => (0..D)
                .map(|d| (a.coord(d) - b.coord(d)).abs())
                .fold(0.0, f64::max),
        }
    }

    /// `MINMINDIST` analogue: minimum distance between any point of `a` and
    /// any point of `b` under this metric (0 when they intersect).
    ///
    /// Valid as a pruning lower bound for the CPQ algorithms under the same
    /// metric.
    pub fn min_min_dist<const D: usize>(&self, a: &Rect<D>, b: &Rect<D>) -> f64 {
        let gap = |d: usize| -> f64 {
            (b.lo().coord(d) - a.hi().coord(d))
                .max(a.lo().coord(d) - b.hi().coord(d))
                .max(0.0)
        };
        match *self {
            Minkowski::L1 => (0..D).map(gap).sum(),
            Minkowski::L2 => (0..D).map(|d| gap(d) * gap(d)).sum::<f64>().sqrt(),
            Minkowski::Lp(p) => (0..D).map(|d| gap(d).powf(p)).sum::<f64>().powf(1.0 / p),
            Minkowski::LInf => (0..D).map(gap).fold(0.0, f64::max),
        }
    }

    /// `MAXMAXDIST` analogue: maximum distance between contained points.
    pub fn max_max_dist<const D: usize>(&self, a: &Rect<D>, b: &Rect<D>) -> f64 {
        let span = |d: usize| -> f64 {
            (b.hi().coord(d) - a.lo().coord(d))
                .abs()
                .max((a.hi().coord(d) - b.lo().coord(d)).abs())
        };
        match *self {
            Minkowski::L1 => (0..D).map(span).sum(),
            Minkowski::L2 => (0..D).map(|d| span(d) * span(d)).sum::<f64>().sqrt(),
            Minkowski::Lp(p) => (0..D).map(|d| span(d).powf(p)).sum::<f64>().powf(1.0 / p),
            Minkowski::LInf => (0..D).map(span).fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_l2_linf_point_distances() {
        let a = Point([0.0, 0.0]);
        let b = Point([3.0, 4.0]);
        assert_eq!(Minkowski::L1.pt_dist(&a, &b), 7.0);
        assert_eq!(Minkowski::L2.pt_dist(&a, &b), 5.0);
        assert_eq!(Minkowski::LInf.pt_dist(&a, &b), 4.0);
    }

    #[test]
    fn lp_interpolates_between_l1_and_linf() {
        let a = Point([0.0, 0.0]);
        let b = Point([3.0, 4.0]);
        let d15 = Minkowski::Lp(1.5).pt_dist(&a, &b);
        let d3 = Minkowski::Lp(3.0).pt_dist(&a, &b);
        assert!(d15 < 7.0 && d15 > 5.0);
        assert!(d3 < 5.0 && d3 > 4.0);
    }

    #[test]
    fn lp2_equals_l2() {
        let a = Point([1.0, 2.0]);
        let b = Point([-3.0, 5.5]);
        let via_lp = Minkowski::Lp(2.0).pt_dist(&a, &b);
        let via_l2 = Minkowski::L2.pt_dist(&a, &b);
        assert!((via_lp - via_l2).abs() < 1e-12);
    }

    #[test]
    fn box_bounds_sandwich_point_distance() {
        let ra = Rect::from_corners([0.0, 0.0], [1.0, 1.0]);
        let rb = Rect::from_corners([3.0, 2.0], [4.0, 5.0]);
        let pa = Point([1.0, 0.5]);
        let pb = Point([3.0, 2.0]);
        for m in [
            Minkowski::L1,
            Minkowski::L2,
            Minkowski::Lp(3.0),
            Minkowski::LInf,
        ] {
            let d = m.pt_dist(&pa, &pb);
            assert!(m.min_min_dist(&ra, &rb) <= d + 1e-12);
            assert!(d <= m.max_max_dist(&ra, &rb) + 1e-12);
        }
    }

    #[test]
    fn intersecting_boxes_have_zero_min() {
        let a = Rect::from_corners([0.0, 0.0], [2.0, 2.0]);
        let b = Rect::from_corners([1.0, 1.0], [3.0, 3.0]);
        for m in [Minkowski::L1, Minkowski::L2, Minkowski::LInf] {
            assert_eq!(m.min_min_dist(&a, &b), 0.0);
        }
    }
}
