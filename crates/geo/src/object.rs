//! The [`SpatialObject`] abstraction: anything with an MBR that can be
//! stored in R-tree leaves.
//!
//! The paper focuses on point data but notes (Section 1) that R-trees index
//! "various kinds of spatial data (like points, polygons, 2-d objects)".
//! The tree and the closest-pair algorithms are generic over this trait;
//! [`Point`] is the default object (the paper's setting) and [`Rect`] makes
//! extended objects first-class. Distances between extended objects follow
//! MBR semantics (`MINMINDIST` of the objects' MBRs), the convention of
//! distance joins over R-trees — for points this coincides with the exact
//! point distance.

use crate::point::Point;
use crate::rect::Rect;

/// An object storable in R-tree leaves: it has an MBR and a fixed-size
/// binary encoding.
pub trait SpatialObject<const D: usize>:
    Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static
{
    /// Bytes consumed by [`encode`](Self::encode).
    fn encoded_size() -> usize;

    /// Minimum bounding rectangle of the object.
    fn mbr(&self) -> Rect<D>;

    /// Serializes into `buf` (`buf.len() == encoded_size()`).
    fn encode(&self, buf: &mut [u8]);

    /// Deserializes from `buf` (`buf.len() == encoded_size()`).
    fn decode(buf: &[u8]) -> Self;

    /// `true` when every coordinate is finite.
    fn is_finite(&self) -> bool;
}

fn write_coords<const D: usize>(coords: &[f64; D], buf: &mut [u8]) {
    for (d, c) in coords.iter().enumerate() {
        buf[d * 8..d * 8 + 8].copy_from_slice(&c.to_le_bytes());
    }
}

fn read_coords<const D: usize>(buf: &[u8]) -> [f64; D] {
    let mut out = [0.0; D];
    for (d, c) in out.iter_mut().enumerate() {
        // analyze: allow(panic-path) — fixed 8-byte window of the caller's
        // length-checked buffer; the conversion cannot fail.
        *c = f64::from_le_bytes(buf[d * 8..d * 8 + 8].try_into().expect("8-byte slice"));
    }
    out
}

impl<const D: usize> SpatialObject<D> for Point<D> {
    fn encoded_size() -> usize {
        8 * D
    }

    #[inline]
    fn mbr(&self) -> Rect<D> {
        Rect::point(*self)
    }

    fn encode(&self, buf: &mut [u8]) {
        write_coords(&self.0, buf);
    }

    fn decode(buf: &[u8]) -> Self {
        Point(read_coords(buf))
    }

    #[inline]
    fn is_finite(&self) -> bool {
        Point::is_finite(self)
    }
}

impl<const D: usize> SpatialObject<D> for Rect<D> {
    fn encoded_size() -> usize {
        16 * D
    }

    #[inline]
    fn mbr(&self) -> Rect<D> {
        *self
    }

    fn encode(&self, buf: &mut [u8]) {
        write_coords(&self.lo().0, &mut buf[..8 * D]);
        write_coords(&self.hi().0, &mut buf[8 * D..]);
    }

    fn decode(buf: &[u8]) -> Self {
        let lo: [f64; D] = read_coords(&buf[..8 * D]);
        let hi: [f64; D] = read_coords(&buf[8 * D..]);
        Rect::from_corners(lo, hi)
    }

    #[inline]
    fn is_finite(&self) -> bool {
        Rect::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip() {
        let p = Point([1.5, -2.25]);
        let mut buf = vec![0u8; <Point<2> as SpatialObject<2>>::encoded_size()];
        p.encode(&mut buf);
        assert_eq!(<Point<2> as SpatialObject<2>>::decode(&buf), p);
        assert!(SpatialObject::<2>::mbr(&p).is_degenerate());
    }

    #[test]
    fn rect_roundtrip() {
        let r = Rect::from_corners([0.0, -1.0], [2.5, 3.5]);
        let mut buf = vec![0u8; <Rect<2> as SpatialObject<2>>::encoded_size()];
        r.encode(&mut buf);
        assert_eq!(<Rect<2> as SpatialObject<2>>::decode(&buf), r);
        assert_eq!(SpatialObject::<2>::mbr(&r), r);
    }

    #[test]
    fn finiteness() {
        assert!(SpatialObject::<2>::is_finite(&Point([0.0, 1.0])));
        assert!(!SpatialObject::<2>::is_finite(&Point([f64::NAN, 1.0])));
        let r = Rect::from_corners([0.0, 0.0], [1.0, 1.0]);
        assert!(SpatialObject::<2>::is_finite(&r));
    }

    #[test]
    fn sizes() {
        assert_eq!(<Point<2> as SpatialObject<2>>::encoded_size(), 16);
        assert_eq!(<Rect<2> as SpatialObject<2>>::encoded_size(), 32);
        assert_eq!(<Point<3> as SpatialObject<3>>::encoded_size(), 24);
    }
}
