//! Geometry kernel for closest-pair query processing.
//!
//! This crate implements the geometric primitives and, crucially, the
//! MBR-to-MBR distance metrics defined in Section 2.3 of
//! *Corral, Manolopoulos, Theodoridis, Vassilakopoulos: "Closest Pair Queries
//! in Spatial Databases", SIGMOD 2000*:
//!
//! * [`min_min_dist2`] — `MINMINDIST(M_P, M_Q)`: the smallest possible
//!   distance between a point in `M_P` and a point in `M_Q` (0 when the
//!   rectangles intersect). Lower bound for every contained point pair
//!   (left side of the paper's Inequality 1).
//! * [`max_max_dist2`] — `MAXMAXDIST(M_P, M_Q)`: the largest possible
//!   distance between contained points (right side of Inequality 1).
//! * [`min_max_dist2`] — `MINMAXDIST(M_P, M_Q)`: an upper bound on the
//!   distance of *at least one* contained point pair (Inequality 2), derived
//!   from the MBR property that every face of a minimum bounding rectangle
//!   touches at least one data point.
//!
//! All comparison-oriented metrics are returned **squared** (suffix `2`):
//! squaring is monotone for the Euclidean metric, so every pruning comparison
//! in the query algorithms is valid on squared values and the `sqrt` is paid
//! only when a distance is reported to the user. General Minkowski (L_p)
//! metrics are provided in [`minkowski`] for completeness, mirroring the
//! paper's remark that the methods adapt to any Minkowski metric.
//!
//! Everything is generic over the dimension `D` (const generic); the paper
//! focuses on 2-d data and notes the k-dimensional extension is
//! straightforward — here it genuinely is, and the test-suite exercises
//! `D ∈ {2, 3, 4}`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod color;
mod dist;
mod metrics;
pub mod minkowski;
mod object;
mod point;
mod rect;

pub use color::{base_oid, color_of, pack_color, COLOR_BITS};
pub use dist::Dist2;
pub use metrics::{
    axis_gap, max_dist2, max_max_dist2, min_max_dist2, min_min_dist2, min_min_dist2_within,
    pt_dist2, pt_dist2_within, pt_mindist2, pt_minmaxdist2,
};
pub use object::SpatialObject;
pub use point::Point;
pub use rect::Rect;

/// Convenient alias for the 2-dimensional point used throughout the paper.
pub type Point2 = Point<2>;
/// Convenient alias for the 2-dimensional rectangle (MBR).
pub type Rect2 = Rect<2>;
