//! The color channel for *colored* (category-spanning) closest pairs.
//!
//! Colored K-CPQ asks for the closest pairs whose two points belong to
//! **distinct categories** (Xue et al., "New bounds for range closest-pair
//! problems"). Rather than widening every leaf entry, wire message, and WAL
//! record with a new field, the category travels inside the object id: the
//! top [`COLOR_BITS`] bits of the 64-bit oid carry the color, the low bits
//! the per-color object id. Every existing layer — storage, recovery,
//! sharding, the wire codec — forwards oids opaquely, so the channel
//! survives all of them unchanged.
//!
//! Uncolored datasets keep their small sequential oids, which all decode as
//! color `0` — a valid single-color world where a "distinct colors" filter
//! simply matches nothing.

/// Number of oid bits reserved for the color (a `u16` category).
pub const COLOR_BITS: u32 = 16;

/// Bit position of the color field inside an oid.
const COLOR_SHIFT: u32 = 64 - COLOR_BITS;

/// Packs a color into an oid. The base oid must fit in the remaining low
/// bits (48), which every generator here satisfies by construction.
///
/// ```
/// use cpq_geo::{color_of, base_oid, pack_color};
/// let oid = pack_color(7, 3);
/// assert_eq!(color_of(oid), 3);
/// assert_eq!(base_oid(oid), 7);
/// ```
pub fn pack_color(base: u64, color: u16) -> u64 {
    debug_assert!(base >> COLOR_SHIFT == 0, "base oid overflows color field");
    base | (u64::from(color) << COLOR_SHIFT)
}

/// The color carried by an oid (`0` for plain sequential oids).
pub fn color_of(oid: u64) -> u16 {
    (oid >> COLOR_SHIFT) as u16
}

/// The oid with its color stripped.
pub fn base_oid(oid: u64) -> u64 {
    oid & ((1u64 << COLOR_SHIFT) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips_every_field() {
        for &(base, color) in &[(0u64, 0u16), (1, 1), (12345, 42), ((1 << 48) - 1, u16::MAX)] {
            let oid = pack_color(base, color);
            assert_eq!(color_of(oid), color);
            assert_eq!(base_oid(oid), base);
        }
    }

    #[test]
    fn plain_oids_decode_as_color_zero() {
        assert_eq!(color_of(0), 0);
        assert_eq!(color_of(999_999), 0);
        assert_eq!(base_oid(999_999), 999_999);
    }

    #[test]
    fn packing_preserves_order_within_a_color() {
        // Within one color, oid order equals base order — the canonical
        // `(dist2, oid, oid)` tie-break stays deterministic per color.
        assert!(pack_color(1, 5) < pack_color(2, 5));
        // Across colors the color dominates, which is fine: any total
        // order works for tie-breaking, it only has to be consistent.
        assert!(pack_color(999, 1) < pack_color(0, 2));
    }
}
