//! MBR-to-MBR distance metrics (Section 2.3 of the paper).
//!
//! For two MBRs `M_P`, `M_Q` and any pair of contained points `(p, q)`:
//!
//! ```text
//! MINMINDIST(M_P, M_Q) <= dist(p, q) <= MAXMAXDIST(M_P, M_Q)      (Ineq. 1)
//! ```
//!
//! and there exists at least one contained pair with
//!
//! ```text
//! dist(p, q) <= MINMAXDIST(M_P, M_Q)                              (Ineq. 2)
//! ```
//!
//! because each of the `2·D` facets of a *minimum* bounding rectangle touches
//! at least one data point.
//!
//! All functions return **squared** Euclidean distances wrapped in
//! [`Dist2`]; see the crate docs for why.

use crate::dist::Dist2;
use crate::point::Point;
use crate::rect::Rect;

/// Squared Euclidean distance between two points.
#[inline]
pub fn pt_dist2<const D: usize>(a: &Point<D>, b: &Point<D>) -> Dist2 {
    Dist2::new(a.dist2(b))
}

/// Squared point distance computed under a live threshold `t`: accumulates
/// per-dimension contributions and bails out as soon as the partial sum alone
/// exceeds `t`, returning `None`.
///
/// `Some(d)` therefore always satisfies `d <= t`, and for `t = Dist2::INFINITY`
/// the function degenerates to [`pt_dist2`]. Pruning with a threshold obtained
/// from `K` already-collected pairs is lossless: a pair rejected here is
/// `> t` and can never displace a kept pair (offers must be strictly
/// smaller).
#[inline]
pub fn pt_dist2_within<const D: usize>(a: &Point<D>, b: &Point<D>, t: Dist2) -> Option<Dist2> {
    let bound = t.get();
    let mut acc = 0.0;
    for d in 0..D {
        let delta = a.coord(d) - b.coord(d);
        acc += delta * delta;
        if acc > bound {
            return None;
        }
    }
    Some(Dist2::new(acc))
}

/// `MINMINDIST` under a live threshold `t`: per-dimension accumulation with
/// the same early exit as [`pt_dist2_within`]. `None` means
/// `MINMINDIST(a, b) > t`, i.e. the pair of MBRs is prunable.
#[inline]
pub fn min_min_dist2_within<const D: usize>(a: &Rect<D>, b: &Rect<D>, t: Dist2) -> Option<Dist2> {
    let bound = t.get();
    let mut acc = 0.0;
    for d in 0..D {
        let gap = axis_gap(a, b, d);
        acc += gap * gap;
        if acc > bound {
            return None;
        }
    }
    Some(Dist2::new(acc))
}

/// Separation between `a` and `b` along a single `axis`: the (non-squared)
/// contribution of that axis to `MINMINDIST`, zero when the extents overlap.
///
/// This is the plane-sweep break test: with entries sorted by their lower
/// coordinate on `axis`, once `later.lo - earlier.hi` exceeds the (square
/// root of the) pruning threshold, every later entry is at least that far
/// from `earlier` and the inner scan can stop.
#[inline]
pub fn axis_gap<const D: usize>(a: &Rect<D>, b: &Rect<D>, axis: usize) -> f64 {
    (b.lo().coord(axis) - a.hi().coord(axis))
        .max(a.lo().coord(axis) - b.hi().coord(axis))
        .max(0.0)
}

/// `MINMINDIST`: squared minimum distance between any point of `a` and any
/// point of `b`. Zero when the rectangles intersect.
///
/// Per-dimension gap, summed in squares — the classical box-to-box MINDIST
/// of Roussopoulos et al. generalized to two boxes.
#[inline]
pub fn min_min_dist2<const D: usize>(a: &Rect<D>, b: &Rect<D>) -> Dist2 {
    let mut acc = 0.0;
    for d in 0..D {
        let gap = axis_gap(a, b, d);
        acc += gap * gap;
    }
    Dist2::new(acc)
}

/// `MAXDIST`: squared maximum distance between any point of `a` and any
/// point of `b` (the maximum is attained at a pair of corners).
#[inline]
pub fn max_dist2<const D: usize>(a: &Rect<D>, b: &Rect<D>) -> Dist2 {
    let mut acc = 0.0;
    for d in 0..D {
        let span = (b.hi().coord(d) - a.lo().coord(d))
            .abs()
            .max((a.hi().coord(d) - b.lo().coord(d)).abs());
        acc += span * span;
    }
    Dist2::new(acc)
}

/// `MAXMAXDIST`: alias of [`max_dist2`] in the paper's terminology — the
/// upper bound of Inequality 1.
#[inline]
pub fn max_max_dist2<const D: usize>(a: &Rect<D>, b: &Rect<D>) -> Dist2 {
    max_dist2(a, b)
}

/// `MINMAXDIST` between two MBRs: the minimum over all facet pairs
/// `(r_i, s_j)` — `r_i` a facet of `a`, `s_j` a facet of `b` — of
/// `MAXDIST(r_i, s_j)`.
///
/// Guarantee (Inequality 2): at least one pair of data points, one enclosed
/// by each MBR, lies within this distance, because every facet of a minimum
/// bounding rectangle touches at least one data point and every point of a
/// facet is within `MAXDIST(r_i, s_j)` of every point of the other facet.
///
/// In 2-d this is the paper's `min_{i,j} MAXDIST(r_i, s_j)` over the 4×4
/// edge pairs. Facets are represented as degenerate rectangles so a single
/// [`max_dist2`] kernel serves every dimension.
///
/// Degenerate inputs: when `a` is a point, its facets all equal the point
/// itself and the function reduces to the Roussopoulos point-to-MBR
/// MINMAXDIST; when both are points it equals their distance.
pub fn min_max_dist2<const D: usize>(a: &Rect<D>, b: &Rect<D>) -> Dist2 {
    let mut best = Dist2::INFINITY;
    for da in 0..D {
        for va in [a.lo().coord(da), a.hi().coord(da)] {
            let fa = a.facet(da, va);
            for db in 0..D {
                for vb in [b.lo().coord(db), b.hi().coord(db)] {
                    let fb = b.facet(db, vb);
                    let d = max_dist2(&fa, &fb);
                    if d < best {
                        best = d;
                    }
                }
            }
        }
    }
    best
}

/// Point-to-MBR `MINDIST` (Roussopoulos et al. 1995): squared distance from
/// `p` to the nearest point of `r`. Zero when `p` is inside `r`.
#[inline]
pub fn pt_mindist2<const D: usize>(p: &Point<D>, r: &Rect<D>) -> Dist2 {
    min_min_dist2(&Rect::point(*p), r)
}

/// Point-to-MBR `MINMAXDIST` (Roussopoulos et al. 1995): the minimum over the
/// MBR's facets of the maximum distance from `p` to that facet. At least one
/// data point inside `r` is within this distance of `p`.
#[inline]
pub fn pt_minmaxdist2<const D: usize>(p: &Point<D>, r: &Rect<D>) -> Dist2 {
    min_max_dist2(&Rect::point(*p), r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::from_corners(lo, hi)
    }

    #[test]
    fn minmindist_disjoint_axis_aligned() {
        // Unit squares separated by 3 along x.
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([4.0, 0.0], [5.0, 1.0]);
        assert_eq!(min_min_dist2(&a, &b).get(), 9.0);
    }

    #[test]
    fn minmindist_diagonal_gap() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([4.0, 5.0], [6.0, 7.0]);
        // gap = (3, 4) -> 25
        assert_eq!(min_min_dist2(&a, &b).get(), 25.0);
    }

    #[test]
    fn minmindist_zero_when_intersecting() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([1.0, 1.0], [3.0, 3.0]);
        assert_eq!(min_min_dist2(&a, &b), Dist2::ZERO);
        // Touching also yields zero.
        let c = r([2.0, 0.0], [3.0, 2.0]);
        assert_eq!(min_min_dist2(&a, &c), Dist2::ZERO);
    }

    #[test]
    fn maxmaxdist_attained_at_far_corners() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([4.0, 0.0], [5.0, 1.0]);
        // far corners: (0,0)..(5,1) or (0,1)..(5,0): 25 + 1
        assert_eq!(max_max_dist2(&a, &b).get(), 26.0);
    }

    #[test]
    fn maxmaxdist_of_nested_rects() {
        let outer = r([0.0, 0.0], [10.0, 10.0]);
        let inner = r([4.0, 4.0], [5.0, 5.0]);
        // farthest: corner (0,0)-ish to (5,5) vs (10,10) to (4,4): 36+36 = 72
        assert_eq!(max_max_dist2(&outer, &inner).get(), 72.0);
    }

    #[test]
    fn minmaxdist_two_separated_squares() {
        // Unit squares [0,1]^2 and [4,5]x[0,1].
        // Facet pair: right edge of a (x=1) and left edge of b (x=4):
        // max over that pair = dx=3, dy=1 -> 10. That is the minimum.
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([4.0, 0.0], [5.0, 1.0]);
        assert_eq!(min_max_dist2(&a, &b).get(), 10.0);
    }

    #[test]
    fn minmaxdist_point_to_rect_matches_roussopoulos() {
        // Classic example: p = (0,0), rect = [1,2] x [1,2].
        // MINMAXDIST^2 = min( (1^2 + 2^2), (2^2 + 1^2) ) = 5.
        let p = Point([0.0, 0.0]);
        let rect = r([1.0, 1.0], [2.0, 2.0]);
        assert_eq!(pt_minmaxdist2(&p, &rect).get(), 5.0);
        assert_eq!(pt_mindist2(&p, &rect).get(), 2.0);
    }

    #[test]
    fn point_point_degenerate_all_metrics_agree() {
        let a = Rect::point(Point([1.0, 2.0]));
        let b = Rect::point(Point([4.0, 6.0]));
        assert_eq!(min_min_dist2(&a, &b).get(), 25.0);
        assert_eq!(min_max_dist2(&a, &b).get(), 25.0);
        assert_eq!(max_max_dist2(&a, &b).get(), 25.0);
    }

    #[test]
    fn metric_sandwich_on_example() {
        let a = r([0.0, 0.0], [2.0, 3.0]);
        let b = r([5.0, 1.0], [7.0, 6.0]);
        let mn = min_min_dist2(&a, &b);
        let mm = min_max_dist2(&a, &b);
        let mx = max_max_dist2(&a, &b);
        assert!(mn <= mm && mm <= mx);
    }

    #[test]
    fn works_in_3d() {
        let a = Rect::<3>::from_corners([0.0; 3], [1.0; 3]);
        let b = Rect::<3>::from_corners([3.0, 0.0, 0.0], [4.0, 1.0, 1.0]);
        assert_eq!(min_min_dist2(&a, &b).get(), 4.0);
        // MAXMAX: dx=4, dy=1, dz=1 -> 18
        assert_eq!(max_max_dist2(&a, &b).get(), 18.0);
        // MINMAX: facet x=1 of a vs facet x=3 of b: dx=2, dy,dz max 1 -> 6
        assert_eq!(min_max_dist2(&a, &b).get(), 6.0);
    }

    #[test]
    fn within_kernels_agree_with_full_kernels_under_infinity() {
        let p = Point([1.0, 2.0]);
        let q = Point([4.0, 6.0]);
        assert_eq!(
            pt_dist2_within(&p, &q, Dist2::INFINITY),
            Some(pt_dist2(&p, &q))
        );
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([4.0, 5.0], [6.0, 7.0]);
        assert_eq!(
            min_min_dist2_within(&a, &b, Dist2::INFINITY),
            Some(min_min_dist2(&a, &b))
        );
    }

    #[test]
    fn within_kernels_reject_above_threshold_and_keep_equal() {
        let p = Point([0.0, 0.0]);
        let q = Point([3.0, 4.0]); // dist2 = 25
        assert_eq!(pt_dist2_within(&p, &q, Dist2::new(24.9)), None);
        assert_eq!(
            pt_dist2_within(&p, &q, Dist2::new(25.0)).unwrap().get(),
            25.0
        );
        // Early exit on the first axis alone: 3^2 = 9 > 8.
        assert_eq!(pt_dist2_within(&p, &q, Dist2::new(8.0)), None);
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([4.0, 5.0], [6.0, 7.0]); // minmin2 = 25
        assert_eq!(min_min_dist2_within(&a, &b, Dist2::new(24.0)), None);
        assert_eq!(
            min_min_dist2_within(&a, &b, Dist2::new(25.0))
                .unwrap()
                .get(),
            25.0
        );
    }

    #[test]
    fn axis_gap_is_the_per_axis_minmindist_contribution() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([4.0, 5.0], [6.0, 7.0]);
        assert_eq!(axis_gap(&a, &b, 0), 3.0);
        assert_eq!(axis_gap(&a, &b, 1), 4.0);
        // Symmetric, and zero on overlap.
        assert_eq!(axis_gap(&b, &a, 0), 3.0);
        let c = r([0.5, -2.0], [2.0, -1.0]);
        assert_eq!(axis_gap(&a, &c, 0), 0.0);
        assert_eq!(axis_gap(&a, &c, 1), 1.0);
    }

    #[test]
    fn intersecting_rects_have_positive_minmaxdist() {
        // Even fully overlapping MBRs have MINMAXDIST > 0 in general:
        // it bounds a *witness pair*, not the minimum.
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([0.0, 0.0], [2.0, 2.0]);
        let mm = min_max_dist2(&a, &b);
        // facet pair: same edge on both (e.g. x=0 facets): max dist across the
        // edge extent = 2 -> squared 4.
        assert_eq!(mm.get(), 4.0);
    }
}
