//! Totally-ordered squared-distance wrapper.

use std::cmp::Ordering;
use std::fmt;

/// A squared Euclidean distance with a total order.
///
/// `f64` is only partially ordered (NaN); the query algorithms need distances
/// as keys in binary heaps and sorted vectors, so this newtype provides `Ord`
/// via [`f64::total_cmp`]. Construction debug-asserts non-NaN, which all
/// metric kernels guarantee for finite inputs.
#[derive(Clone, Copy, PartialEq)]
pub struct Dist2(f64);

impl Dist2 {
    /// Positive infinity: the initial value of the pruning threshold `T`.
    pub const INFINITY: Dist2 = Dist2(f64::INFINITY);
    /// Zero distance.
    pub const ZERO: Dist2 = Dist2(0.0);

    /// Wraps a squared distance.
    #[inline]
    pub fn new(d2: f64) -> Self {
        debug_assert!(!d2.is_nan(), "distance must not be NaN");
        debug_assert!(d2 >= 0.0, "squared distance must be non-negative");
        Dist2(d2)
    }

    /// The raw squared value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The (non-squared) Euclidean distance.
    #[inline]
    pub fn sqrt(self) -> f64 {
        self.0.sqrt()
    }

    /// `true` when this is the infinite sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }
}

impl Eq for Dist2 {}

impl PartialOrd for Dist2 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dist2 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for Dist2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dist2({})", self.0)
    }
}

impl fmt::Display for Dist2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.sqrt())
    }
}

impl From<f64> for Dist2 {
    #[inline]
    fn from(d2: f64) -> Self {
        Dist2::new(d2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_numeric() {
        let mut v = [
            Dist2::new(4.0),
            Dist2::new(0.0),
            Dist2::INFINITY,
            Dist2::new(1.0),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|d| d.get()).collect::<Vec<_>>(),
            vec![0.0, 1.0, 4.0, f64::INFINITY]
        );
    }

    #[test]
    fn sqrt_reports_euclidean() {
        assert_eq!(Dist2::new(25.0).sqrt(), 5.0);
    }

    #[test]
    fn infinity_sentinel() {
        assert!(Dist2::INFINITY.is_infinite());
        assert!(Dist2::new(1e300) < Dist2::INFINITY);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn nan_rejected_in_debug() {
        let _ = Dist2::new(f64::NAN);
    }
}
