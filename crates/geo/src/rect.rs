//! Axis-aligned rectangles (minimum bounding rectangles, MBRs).

use crate::point::Point;

/// An axis-aligned `D`-dimensional rectangle, the MBR of R-tree entries.
///
/// Invariant: `lo[d] <= hi[d]` for every dimension `d`. Degenerate
/// rectangles (`lo == hi`) are valid and represent points; the closest-pair
/// metrics treat them uniformly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    lo: Point<D>,
    hi: Point<D>,
}

impl<const D: usize> Rect<D> {
    /// Creates a rectangle from its lower and upper corners.
    ///
    /// # Panics
    /// Panics (debug builds) if any `lo[d] > hi[d]`.
    #[inline]
    pub fn new(lo: Point<D>, hi: Point<D>) -> Self {
        debug_assert!(
            (0..D).all(|d| lo.coord(d) <= hi.coord(d)),
            "rect corners out of order: {lo:?} > {hi:?}"
        );
        Rect { lo, hi }
    }

    /// Creates a rectangle from corner arrays.
    #[inline]
    pub fn from_corners(lo: [f64; D], hi: [f64; D]) -> Self {
        Self::new(Point(lo), Point(hi))
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn point(p: Point<D>) -> Self {
        Rect { lo: p, hi: p }
    }

    /// The smallest rectangle enclosing both corners, regardless of order.
    #[inline]
    pub fn spanning(a: Point<D>, b: Point<D>) -> Self {
        Rect {
            lo: a.component_min(&b),
            hi: a.component_max(&b),
        }
    }

    /// Rectangle enclosing all points of a non-empty iterator.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point<D>>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::point(first);
        for p in it {
            r = r.union_point(&p);
        }
        Some(r)
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> Point<D> {
        self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> Point<D> {
        self.hi
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for (d, cd) in c.iter_mut().enumerate() {
            *cd = 0.5 * (self.lo.coord(d) + self.hi.coord(d));
        }
        Point(c)
    }

    /// Extent along dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> f64 {
        self.hi.coord(d) - self.lo.coord(d)
    }

    /// `D`-dimensional volume ("area" in the paper's 2-d setting).
    #[inline]
    pub fn area(&self) -> f64 {
        let mut a = 1.0;
        for d in 0..D {
            a *= self.extent(d);
        }
        a
    }

    /// Sum of edge lengths (the R*-tree "margin" criterion).
    #[inline]
    pub fn margin(&self) -> f64 {
        let mut m = 0.0;
        for d in 0..D {
            m += self.extent(d);
        }
        m
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|d| self.lo.coord(d) <= p.coord(d) && p.coord(d) <= self.hi.coord(d))
    }

    /// `true` when `other` lies fully inside (or on the boundary of) `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect<D>) -> bool {
        (0..D)
            .all(|d| self.lo.coord(d) <= other.lo.coord(d) && other.hi.coord(d) <= self.hi.coord(d))
    }

    /// `true` when the rectangles share at least one point (boundaries count).
    #[inline]
    pub fn intersects(&self, other: &Rect<D>) -> bool {
        (0..D)
            .all(|d| self.lo.coord(d) <= other.hi.coord(d) && other.lo.coord(d) <= self.hi.coord(d))
    }

    /// The intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect<D>) -> Option<Rect<D>> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lo: self.lo.component_max(&other.lo),
            hi: self.hi.component_min(&other.hi),
        })
    }

    /// Volume of the intersection (0 when disjoint). Used by tie-break
    /// strategy T5 of the paper (Section 3.6).
    #[inline]
    pub fn intersection_area(&self, other: &Rect<D>) -> f64 {
        let mut a = 1.0;
        for d in 0..D {
            let lo = self.lo.coord(d).max(other.lo.coord(d));
            let hi = self.hi.coord(d).min(other.hi.coord(d));
            if hi <= lo {
                return 0.0;
            }
            a *= hi - lo;
        }
        a
    }

    /// Smallest rectangle enclosing both rectangles.
    #[inline]
    pub fn union(&self, other: &Rect<D>) -> Rect<D> {
        Rect {
            lo: self.lo.component_min(&other.lo),
            hi: self.hi.component_max(&other.hi),
        }
    }

    /// Smallest rectangle enclosing `self` and the point `p`.
    #[inline]
    pub fn union_point(&self, p: &Point<D>) -> Rect<D> {
        Rect {
            lo: self.lo.component_min(p),
            hi: self.hi.component_max(p),
        }
    }

    /// Volume increase needed to also cover `other`
    /// (the classic R-tree `ChooseSubtree` criterion).
    #[inline]
    pub fn enlargement(&self, other: &Rect<D>) -> f64 {
        self.union(other).area() - self.area()
    }

    /// The facet (face) of the rectangle along dimension `dim` fixed at
    /// coordinate `value`, as a degenerate rectangle of one lower effective
    /// dimension. `value` must be one of `lo[dim]` / `hi[dim]`.
    ///
    /// Facets are how `MINMAXDIST` between two MBRs is computed: every facet
    /// of an MBR touches at least one data point.
    #[inline]
    pub fn facet(&self, dim: usize, value: f64) -> Rect<D> {
        let mut lo = self.lo.0;
        let mut hi = self.hi.0;
        lo[dim] = value;
        hi[dim] = value;
        Rect {
            lo: Point(lo),
            hi: Point(hi),
        }
    }

    /// Translates the rectangle.
    #[inline]
    pub fn translated(&self, delta: &[f64; D]) -> Rect<D> {
        Rect {
            lo: self.lo.translated(delta),
            hi: self.hi.translated(delta),
        }
    }

    /// `true` when both corners are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// `true` when the rectangle is a single point.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        (0..D).all(|d| self.lo.coord(d) == self.hi.coord(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::from_corners(lo, hi)
    }

    #[test]
    fn area_and_margin() {
        let a = r([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
    }

    #[test]
    fn containment() {
        let outer = r([0.0, 0.0], [10.0, 10.0]);
        let inner = r([1.0, 1.0], [2.0, 2.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_point(&Point([0.0, 10.0])));
        assert!(!outer.contains_point(&Point([-0.1, 5.0])));
    }

    #[test]
    fn intersection_cases() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([1.0, 1.0], [3.0, 3.0]);
        let c = r([5.0, 5.0], [6.0, 6.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r([1.0, 1.0], [2.0, 2.0])));
        assert_eq!(a.intersection_area(&b), 1.0);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
        assert_eq!(a.intersection_area(&c), 0.0);
    }

    #[test]
    fn touching_rects_intersect_with_zero_area() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([1.0, 0.0], [2.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([2.0, 2.0], [3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u, r([0.0, 0.0], [3.0, 3.0]));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
    }

    #[test]
    fn bounding_over_points() {
        let pts = vec![Point([1.0, 5.0]), Point([-1.0, 2.0]), Point([3.0, 3.0])];
        let b = Rect::bounding(pts).unwrap();
        assert_eq!(b, r([-1.0, 2.0], [3.0, 5.0]));
        assert_eq!(Rect::<2>::bounding(Vec::new()), None);
    }

    #[test]
    fn facets_are_degenerate_along_their_dim() {
        let a = r([0.0, 0.0], [2.0, 3.0]);
        let left = a.facet(0, 0.0);
        assert_eq!(left.lo().coord(0), 0.0);
        assert_eq!(left.hi().coord(0), 0.0);
        assert_eq!(left.extent(1), 3.0);
    }

    #[test]
    fn spanning_reorders_corners() {
        let s = Rect::spanning(Point([3.0, 0.0]), Point([1.0, 2.0]));
        assert_eq!(s, r([1.0, 0.0], [3.0, 2.0]));
    }

    #[test]
    fn degenerate_point_rect() {
        let p = Rect::point(Point([1.0, 1.0]));
        assert!(p.is_degenerate());
        assert_eq!(p.area(), 0.0);
        assert!(p.contains_point(&Point([1.0, 1.0])));
    }
}
