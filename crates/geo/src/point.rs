//! `D`-dimensional points with `f64` coordinates.

/// A point in `D`-dimensional Euclidean space.
///
/// Coordinates are `f64`; the type is `Copy` and deliberately tiny so it can
/// be passed by value everywhere without aliasing concerns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize>(pub [f64; D]);

impl<const D: usize> Point<D> {
    /// The origin (all coordinates zero).
    pub const ORIGIN: Self = Point([0.0; D]);

    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Point(coords)
    }

    /// Returns the coordinate along dimension `d`.
    #[inline]
    pub fn coord(&self, d: usize) -> f64 {
        self.0[d]
    }

    /// Returns the coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64; D] {
        &self.0
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let diff = self.0[d] - other.0[d];
            acc += diff * diff;
        }
        acc
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Component-wise minimum of two points (lower corner of their bounding box).
    #[inline]
    pub fn component_min(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (d, o) in out.iter_mut().enumerate() {
            *o = self.0[d].min(other.0[d]);
        }
        Point(out)
    }

    /// Component-wise maximum of two points (upper corner of their bounding box).
    #[inline]
    pub fn component_max(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (d, o) in out.iter_mut().enumerate() {
            *o = self.0[d].max(other.0[d]);
        }
        Point(out)
    }

    /// Translates the point by `offset` along every dimension given in `delta`.
    #[inline]
    pub fn translated(&self, delta: &[f64; D]) -> Self {
        let mut out = self.0;
        for d in 0..D {
            out[d] += delta[d];
        }
        Point(out)
    }

    /// `true` when every coordinate is finite (not NaN / ±inf).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Point(coords)
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::ORIGIN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_matches_hand_computation() {
        let a = Point([0.0, 0.0]);
        let b = Point([3.0, 4.0]);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn dist_is_symmetric_and_zero_on_self() {
        let a = Point([1.5, -2.5, 7.0]);
        let b = Point([0.25, 9.0, -3.5]);
        assert_eq!(a.dist2(&b), b.dist2(&a));
        assert_eq!(a.dist2(&a), 0.0);
    }

    #[test]
    fn component_min_max() {
        let a = Point([1.0, 5.0]);
        let b = Point([3.0, 2.0]);
        assert_eq!(a.component_min(&b), Point([1.0, 2.0]));
        assert_eq!(a.component_max(&b), Point([3.0, 5.0]));
    }

    #[test]
    fn translation_moves_every_coordinate() {
        let p = Point([1.0, 2.0]).translated(&[0.5, -1.0]);
        assert_eq!(p, Point([1.5, 1.0]));
    }

    #[test]
    fn finiteness_detects_nan() {
        assert!(Point([0.0, 1.0]).is_finite());
        assert!(!Point([f64::NAN, 1.0]).is_finite());
        assert!(!Point([f64::INFINITY, 1.0]).is_finite());
    }

    #[test]
    fn works_in_higher_dimensions() {
        let a: Point<4> = Point([1.0, 1.0, 1.0, 1.0]);
        let b: Point<4> = Point([2.0, 2.0, 2.0, 2.0]);
        assert_eq!(a.dist2(&b), 4.0);
    }
}
