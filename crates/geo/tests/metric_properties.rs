//! Compiled only with `--features proptest`, which additionally requires
//! restoring the `proptest = "1"` dev-dependency on a networked machine (the
//! offline workspace carries no registry dependencies).
#![cfg(feature = "proptest")]

//! Property-based tests for the metric kernels: the paper's Inequalities 1
//! and 2 must hold for *every* pair of MBRs built over random point sets.

use cpq_geo::{
    max_max_dist2, min_max_dist2, min_min_dist2, pt_dist2, pt_mindist2, pt_minmaxdist2, Point, Rect,
};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

fn point2() -> impl Strategy<Value = Point<2>> {
    (coord(), coord()).prop_map(|(x, y)| Point([x, y]))
}

fn pointset(min: usize, max: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec(point2(), min..max)
}

proptest! {
    /// Inequality 1: MINMINDIST <= dist(p, q) <= MAXMAXDIST for every pair of
    /// points contained in the respective MBRs.
    #[test]
    fn inequality_one_holds(ps in pointset(1, 12), qs in pointset(1, 12)) {
        let mp = Rect::bounding(ps.iter().copied()).unwrap();
        let mq = Rect::bounding(qs.iter().copied()).unwrap();
        let lo = min_min_dist2(&mp, &mq);
        let hi = max_max_dist2(&mp, &mq);
        for p in &ps {
            for q in &qs {
                let d = pt_dist2(p, q);
                prop_assert!(lo.get() <= d.get() + 1e-9,
                    "MINMINDIST {} > dist {}", lo.get(), d.get());
                prop_assert!(d.get() <= hi.get() + 1e-9,
                    "dist {} > MAXMAXDIST {}", d.get(), hi.get());
            }
        }
    }

    /// Inequality 2: at least one contained pair lies within MINMAXDIST.
    #[test]
    fn inequality_two_holds(ps in pointset(1, 12), qs in pointset(1, 12)) {
        let mp = Rect::bounding(ps.iter().copied()).unwrap();
        let mq = Rect::bounding(qs.iter().copied()).unwrap();
        let bound = min_max_dist2(&mp, &mq);
        let witness = ps.iter().flat_map(|p| qs.iter().map(move |q| pt_dist2(p, q)))
            .min()
            .unwrap();
        prop_assert!(witness.get() <= bound.get() + 1e-9,
            "no pair within MINMAXDIST: best {} > bound {}", witness.get(), bound.get());
    }

    /// The three metrics are always ordered MINMIN <= MINMAX <= MAXMAX.
    #[test]
    fn metric_ordering(ps in pointset(1, 12), qs in pointset(1, 12)) {
        let mp = Rect::bounding(ps.iter().copied()).unwrap();
        let mq = Rect::bounding(qs.iter().copied()).unwrap();
        let mn = min_min_dist2(&mp, &mq);
        let mm = min_max_dist2(&mp, &mq);
        let mx = max_max_dist2(&mp, &mq);
        prop_assert!(mn <= mm, "MINMIN {mn:?} > MINMAX {mm:?}");
        prop_assert!(mm <= mx, "MINMAX {mm:?} > MAXMAX {mx:?}");
    }

    /// All MBR metrics are symmetric.
    #[test]
    fn metrics_symmetric(ps in pointset(1, 8), qs in pointset(1, 8)) {
        let mp = Rect::bounding(ps.iter().copied()).unwrap();
        let mq = Rect::bounding(qs.iter().copied()).unwrap();
        prop_assert_eq!(min_min_dist2(&mp, &mq), min_min_dist2(&mq, &mp));
        prop_assert_eq!(min_max_dist2(&mp, &mq), min_max_dist2(&mq, &mp));
        prop_assert_eq!(max_max_dist2(&mp, &mq), max_max_dist2(&mq, &mp));
    }

    /// Point-to-MBR specializations agree with their box-to-box general form
    /// and with the Roussopoulos guarantees.
    #[test]
    fn point_to_mbr_guarantees(p in point2(), qs in pointset(1, 12)) {
        let mq = Rect::bounding(qs.iter().copied()).unwrap();
        let lo = pt_mindist2(&p, &mq);
        let mm = pt_minmaxdist2(&p, &mq);
        let best = qs.iter().map(|q| pt_dist2(&p, q)).min().unwrap();
        prop_assert!(lo.get() <= best.get() + 1e-9);
        prop_assert!(best.get() <= mm.get() + 1e-9);
    }

    /// Translation invariance: shifting both rects leaves all metrics alone
    /// (up to FP error).
    #[test]
    fn translation_invariance(ps in pointset(1, 8), qs in pointset(1, 8),
                              dx in -50.0..50.0f64, dy in -50.0..50.0f64) {
        let mp = Rect::bounding(ps.iter().copied()).unwrap();
        let mq = Rect::bounding(qs.iter().copied()).unwrap();
        let tp = mp.translated(&[dx, dy]);
        let tq = mq.translated(&[dx, dy]);
        let eps = 1e-6;
        prop_assert!((min_min_dist2(&mp, &mq).get() - min_min_dist2(&tp, &tq).get()).abs() < eps);
        prop_assert!((min_max_dist2(&mp, &mq).get() - min_max_dist2(&tp, &tq).get()).abs() < eps);
        prop_assert!((max_max_dist2(&mp, &mq).get() - max_max_dist2(&tp, &tq).get()).abs() < eps);
    }
}
