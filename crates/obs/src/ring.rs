//! A bounded multi-producer multi-consumer event ring buffer.
//!
//! Vyukov-style sequence-gated ring: `head`/`tail` are atomic cursors and
//! every slot carries a sequence number that tells producers and consumers
//! whose turn it is, so cursor claims are single CAS operations and threads
//! never spin on each other's slots. The payload move itself goes through a
//! per-slot mutex — the workspace forbids `unsafe`, and that lock is
//! uncontended by construction (the sequence protocol admits exactly one
//! thread per slot turn), so it costs an uncontended lock/unlock, not a
//! blocking wait.

use cpq_check::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use cpq_check::sync::Mutex;

struct Slot<T> {
    /// Turn counter: `seq == index` means free for the producer of turn
    /// `index`; `seq == index + 1` means filled for the consumer of turn
    /// `index`; the consumer releases it as `index + capacity`.
    seq: AtomicUsize,
    item: Mutex<Option<T>>,
}

/// A bounded lock-free MPMC ring buffer of events.
///
/// `try_push` fails when the ring is full (counted in
/// [`dropped`](Self::dropped)); [`force_push`](Self::force_push) instead
/// evicts the oldest event, which is what the slow-query log wants — recent
/// forensics beat ancient ones.
pub struct EventRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
}

impl<T> EventRing<T> {
    /// Creates a ring holding at least `capacity` events (rounded up to the
    /// next power of two; minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        EventRing {
            slots: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    item: Mutex::new(None),
                })
                .collect(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events currently buffered (approximate under concurrency).
    pub fn len(&self) -> usize {
        // ordering: Relaxed — advisory size probe; the result is stale the
        // moment it returns, so no synchronization is bought by more.
        self.tail
            .load(Ordering::Relaxed)
            .saturating_sub(self.head.load(Ordering::Relaxed))
    }

    /// `true` when no events are buffered (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events rejected by [`try_push`](Self::try_push) or evicted by
    /// [`force_push`](Self::force_push) since creation.
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — statistics counter; readers only need an
        // eventually-accurate total, not an ordering edge.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Pushes an event, failing (and counting a drop) when the ring is full.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        // ordering: Relaxed — the cursor value is only a CAS hint; the CAS
        // itself revalidates it, and slot hand-off synchronizes via `seq`.
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            // ordering: Acquire — pairs with the consumer's Release store of
            // `seq`; seeing our turn number proves the slot's previous
            // occupant was fully taken out before we write into it.
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // ordering: Relaxed CAS — cursor arbitration only; payload
                // visibility rides `seq` (the crossbeam ArrayQueue scheme).
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        *slot.item.lock().expect("ring slot poisoned") = Some(item);
                        // ordering: Release — publishes the payload write
                        // above to the consumer's Acquire load of `seq`.
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if seq < pos {
                // The consumer of `pos - capacity` has not freed the slot:
                // the ring is full.
                // ordering: Relaxed — statistics counter, no ordering edge.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return Err(item);
            } else {
                // Another producer claimed this turn; chase the cursor.
                // ordering: Relaxed — cursor re-read is again only a hint.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pushes an event, evicting the oldest one when the ring is full
    /// (the eviction is counted in [`dropped`](Self::dropped)).
    pub fn force_push(&self, mut item: T) {
        loop {
            match self.try_push(item) {
                Ok(()) => return,
                Err(back) => {
                    item = back;
                    // Free a slot by consuming the oldest event. If a racing
                    // consumer beat us to it, the retry finds room anyway.
                    let _evicted = self.pop();
                }
            }
        }
    }

    /// Pops the oldest event, or `None` when the ring is empty.
    pub fn pop(&self) -> Option<T> {
        // ordering: Relaxed — cursor value is a CAS hint (see `try_push`).
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            // ordering: Acquire — pairs with the producer's Release store;
            // seeing `pos + 1` proves the payload write happened-before.
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                // ordering: Relaxed on both CAS sides — cursor arbitration
                // only; payload visibility rides `seq` (see `try_push`).
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let item = slot.item.lock().expect("ring slot poisoned").take();
                        // ordering: Release — publishes the `take` above to
                        // the next-lap producer's Acquire load of `seq`.
                        slot.seq.store(pos + self.slots.len(), Ordering::Release);
                        return item;
                    }
                    Err(now) => pos = now,
                }
            } else if seq <= pos {
                // The producer of this turn has not arrived: empty.
                return None;
            } else {
                // ordering: Relaxed — cursor re-read is again only a hint.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains every buffered event, oldest first.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let ring = EventRing::new(8);
        for i in 0..5 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.drain(), vec![0, 1, 2, 3, 4]);
        assert!(ring.pop().is_none());
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let ring = EventRing::new(4);
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.try_push(99), Err(99));
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn force_push_evicts_oldest() {
        let ring = EventRing::new(4);
        for i in 0..6 {
            ring.force_push(i);
        }
        assert_eq!(ring.drain(), vec![2, 3, 4, 5], "keeps the newest events");
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let ring = EventRing::new(2);
        for round in 0..10 {
            ring.try_push(round * 2).unwrap();
            ring.try_push(round * 2 + 1).unwrap();
            assert_eq!(ring.drain(), vec![round * 2, round * 2 + 1]);
        }
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let ring = Arc::new(EventRing::new(64));
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let ring = Arc::clone(&ring);
                    s.spawn(move || {
                        for i in 0..PER_PRODUCER {
                            let mut v = p * PER_PRODUCER + i;
                            // Spin until accepted: this test wants zero losses.
                            loop {
                                match ring.try_push(v) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        v = back;
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            for _ in 0..2 {
                let ring = Arc::clone(&ring);
                let consumed = Arc::clone(&consumed);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let mut got = Vec::new();
                    // Keep draining until the producers are done AND the
                    // ring reads empty — never exit while pushes are still
                    // possible, so producers can't wedge on a full ring.
                    loop {
                        match ring.pop() {
                            Some(v) => got.push(v),
                            None if done.load(Ordering::Relaxed) => break,
                            None => std::thread::yield_now(),
                        }
                    }
                    consumed.lock().unwrap().extend(got);
                });
            }
            for h in producers {
                h.join().unwrap();
            }
            done.store(true, Ordering::Relaxed);
        });
        let mut all = consumed.lock().unwrap().clone();
        all.extend(ring.drain());
        all.sort_unstable();
        let expect: Vec<u64> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expect, "every pushed event is popped exactly once");
    }
}
