//! The slow-query log: a bounded ring of full [`QueryProfile`]s for queries
//! whose end-to-end latency crossed a threshold.

use crate::profile::QueryProfile;
use crate::ring::EventRing;
use cpq_check::sync::atomic::{AtomicU64, Ordering};

/// Captures the complete work profile of every query slower than a
/// threshold, bounded by a fixed-capacity ring (newest kept, oldest
/// evicted — recent forensics beat ancient ones).
///
/// Producers are the service's worker threads; consumers drain the ring
/// into JSONL (one [`QueryProfile::to_json`] line per query) for a file or
/// an HTTP endpoint.
pub struct SlowQueryLog {
    ring: EventRing<QueryProfile>,
    threshold_us: u64,
    observed: AtomicU64,
}

impl SlowQueryLog {
    /// Creates a log capturing queries with `latency_us() >= threshold_us`,
    /// retaining at most `capacity` profiles.
    pub fn new(threshold_us: u64, capacity: usize) -> Self {
        SlowQueryLog {
            ring: EventRing::new(capacity),
            threshold_us,
            observed: AtomicU64::new(0),
        }
    }

    /// The capture threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Slow queries observed since creation (captured or evicted).
    pub fn observed(&self) -> u64 {
        // ordering: Relaxed — statistics counter read, no ordering edge.
        self.observed.load(Ordering::Relaxed)
    }

    /// Captured profiles evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.ring.dropped()
    }

    /// Offers a finished query's profile; captures it when it is slow.
    /// Returns `true` when captured.
    pub fn observe(&self, profile: QueryProfile) -> bool {
        if profile.latency_us() < self.threshold_us {
            return false;
        }
        // ordering: Relaxed — statistics counter; the profile itself is
        // handed off through the ring's own Acquire/Release protocol.
        self.observed.fetch_add(1, Ordering::Relaxed);
        self.ring.force_push(profile);
        true
    }

    /// Drains the captured profiles, oldest first.
    pub fn drain(&self) -> Vec<QueryProfile> {
        self.ring.drain()
    }

    /// Drains the captured profiles as JSONL (one JSON object per line,
    /// trailing newline included when non-empty).
    pub fn drain_jsonl(&self) -> String {
        let mut out = String::new();
        for p in self.drain() {
            out.push_str(&p.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with_latency(id: u64, exec_us: u64) -> QueryProfile {
        QueryProfile {
            query_id: id,
            exec_us,
            ..Default::default()
        }
    }

    #[test]
    fn threshold_filters() {
        let log = SlowQueryLog::new(100, 8);
        assert!(!log.observe(profile_with_latency(1, 99)));
        assert!(log.observe(profile_with_latency(2, 100)));
        assert!(log.observe(profile_with_latency(3, 5_000)));
        assert_eq!(log.observed(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].query_id, 2);
    }

    #[test]
    fn bounded_keeps_newest() {
        let log = SlowQueryLog::new(0, 4);
        for i in 0..10 {
            log.observe(profile_with_latency(i, 1));
        }
        let ids: Vec<u64> = log.drain().iter().map(|p| p.query_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(log.evicted(), 6);
    }

    #[test]
    fn jsonl_one_line_per_query() {
        let log = SlowQueryLog::new(0, 8);
        log.observe(profile_with_latency(1, 10));
        log.observe(profile_with_latency(2, 20));
        let jsonl = log.drain_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
