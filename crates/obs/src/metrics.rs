//! The metrics registry: counters, gauges, log-bucketed histograms, named
//! registration, snapshots, and Prometheus text-format rendering.
//!
//! Handles are `Arc`s over atomics: the hot path (a worker recording a
//! query) is a handful of relaxed atomic adds and never takes a lock. The
//! registry's mutex guards only the name→handle table, touched at
//! registration and snapshot time.

use cpq_check::sync::atomic::{AtomicU64, Ordering};
use cpq_check::sync::{Arc, Mutex};

/// A monotonically increasing counter.
///
/// `store` exists for *bridged* counters — mirrors of counters owned by
/// another subsystem (e.g. `BufferPool`'s hit/miss counts), refreshed from a
/// consistent snapshot of the source before each scrape. Bridged values are
/// monotone because the sources are.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — independent statistics counter; scrapes need
        // an eventually-accurate total, not a synchronizes-with edge.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (bridged counters only; see the type docs).
    #[inline]
    pub fn store(&self, v: u64) {
        // ordering: Relaxed — the bridged source is read under its own
        // lock; this store only transports the value to the scrape path.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — see `add`; counters carry no payload to
        // acquire.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: an instantaneous `f64` value that can move both ways.
///
/// Stored as the value's bit pattern in an `AtomicU64`, so reads and writes
/// are single atomic operations.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        // ordering: Relaxed — single-word instantaneous value; a reader
        // sees either the old or new bits, which is all a gauge promises.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        // ordering: Relaxed — see `set`.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of finite histogram buckets; bucket `i` covers values `v` with
/// `v <= 2^i`. Values above `2^(BUCKETS-1)` land in the implicit `+Inf`
/// overflow bucket. With microsecond samples the finite range tops out at
/// `2^31 us ≈ 36 min` — far beyond any query deadline.
const BUCKETS: usize = 32;

/// A log-bucketed histogram of `u64` samples (power-of-two bucket bounds).
///
/// Recording is two relaxed atomic adds (bucket + sum). Buckets are
/// monotone counters, so a snapshot that reads each bucket once is
/// internally consistent: the rendered `_count` is *defined* as the sum of
/// the bucket reads, so `_bucket{le="+Inf"} == _count` holds in every
/// snapshot, torn views impossible. `_sum` is read in the same pass and may
/// trail the buckets by in-flight samples; Prometheus semantics allow this
/// (both are monotone and converge).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros()) as usize // ceil(log2 v)
        };
        // ordering: Relaxed — independent monotone counters; snapshot
        // consistency is by construction (type docs), not by ordering.
        match self.buckets.get(idx) {
            Some(b) => b.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Consistent point-in-time view (see the type docs for the guarantee).
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ordering: Relaxed — each cell is read once; `count` is defined
        // as the sum of these reads, so the view cannot tear (type docs).
        let sum = self.sum.load(Ordering::Relaxed);
        let overflow = self.overflow.load(Ordering::Relaxed);
        let read = |b: &AtomicU64| b.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self.buckets.iter().map(read).collect();
        let count = buckets.iter().sum::<u64>() + overflow;
        HistogramSnapshot {
            buckets,
            overflow,
            count,
            sum,
        }
    }
}

/// Point-in-time view of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; bucket `i` has upper bound `2^i`.
    pub buckets: Vec<u64>,
    /// Samples above the largest finite bound.
    pub overflow: u64,
    /// Total samples — by construction the sum of `buckets` + `overflow`.
    pub count: u64,
    /// Sum of all recorded sample values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper bound of finite bucket `i`.
    pub fn le(i: usize) -> u64 {
        1u64 << i
    }
}

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// The value of one series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram distribution.
    Histogram(HistogramSnapshot),
}

/// One labeled series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The series value at snapshot time.
    pub value: MetricValue,
}

/// One metric family (shared name/help/kind) in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// The family's series.
    pub series: Vec<SeriesSnapshot>,
}

/// A full registry snapshot: every family, every series, read once.
pub type Snapshot = Vec<FamilySnapshot>;

/// A named collection of metrics.
///
/// Registration is get-or-create on `(name, labels)`: registering the same
/// series twice returns the same handle, so independent subsystems can share
/// series without coordination. Registering an existing name with a
/// different kind panics — that is a programming error, not a runtime
/// condition.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T, F: Fn() -> Handle, G: Fn(&Handle) -> Option<Arc<T>>>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: F,
        cast: G,
    ) -> Arc<T> {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        let mut families = self.families.lock().expect("registry mutex poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name:?} re-registered as {kind:?}, was {:?}",
                    f.kind
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                // analyze: allow(panic-path) — the push on the line above makes the
                // vec non-empty.
                families.last_mut().expect("just pushed")
            }
        };
        let wanted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(s) = family.series.iter().find(|s| s.labels == wanted) {
            // analyze: allow(panic-path) — the kind check above guarantees the
            // cast succeeds.
            return cast(&s.handle).expect("kind checked above");
        }
        let handle = make();
        // analyze: allow(panic-path) — `make()` constructs the exact handle
        // kind requested.
        let out = cast(&handle).expect("make() produced the requested kind");
        family.series.push(Series {
            labels: wanted,
            handle,
        });
        out
    }

    /// Gets or creates a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Handle::Counter(Arc::new(Counter::new())),
            |h| match h {
                Handle::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Gets or creates a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || Handle::Gauge(Arc::new(Gauge::new())),
            |h| match h {
                Handle::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Gets or creates a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.register(
            name,
            help,
            MetricKind::Histogram,
            labels,
            || Handle::Histogram(Arc::new(Histogram::new())),
            |h| match h {
                Handle::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Reads every registered series once.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().expect("registry mutex poisoned");
        families
            .iter()
            .map(|f| FamilySnapshot {
                name: f.name.clone(),
                help: f.help.clone(),
                kind: f.kind,
                series: f
                    .series
                    .iter()
                    .map(|s| SeriesSnapshot {
                        labels: s.labels.clone(),
                        value: match &s.handle {
                            Handle::Counter(c) => MetricValue::Counter(c.get()),
                            Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                            Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect()
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4), ready to serve from a `/metrics` endpoint.
    pub fn render_prometheus(&self) -> String {
        render_snapshot(&self.snapshot())
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

/// Renders an already-taken [`Snapshot`] (see
/// [`Registry::render_prometheus`]).
pub fn render_snapshot(snapshot: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for f in snapshot {
        let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
        let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.exposition_name());
        for s in &f.series {
            match &s.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", f.name, label_block(&s.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        f.name,
                        label_block(&s.labels, None),
                        fmt_f64(*v)
                    );
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, b) in h.buckets.iter().enumerate() {
                        cum += b;
                        let le = HistogramSnapshot::le(i).to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            f.name,
                            label_block(&s.labels, Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        f.name,
                        label_block(&s.labels, Some(("le", "+Inf"))),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        f.name,
                        label_block(&s.labels, None),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        f.name,
                        label_block(&s.labels, None),
                        h.count
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.store(17);
        assert_eq!(c.get(), 17);

        let g = Gauge::new();
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new();
        // Bucket i covers (2^(i-1), 2^i]; 0 and 1 share bucket 0.
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.buckets[0], 2); // 0, 1
        assert_eq!(s.buckets[1], 1); // 2
        assert_eq!(s.buckets[2], 2); // 3, 4
        assert_eq!(s.buckets[10], 1); // 1024
        assert_eq!(s.overflow, 1); // u64::MAX
        assert_eq!(
            s.count,
            s.buckets.iter().sum::<u64>() + s.overflow,
            "count is derived from the buckets, never torn"
        );
    }

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", &[("k", "v")]);
        let b = r.counter("x_total", "help", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same (name, labels) shares one cell");
        let c = r.counter("x_total", "help", &[("k", "w")]);
        assert_eq!(c.get(), 0, "different labels are a fresh series");
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("x_total", "h", &[]);
        r.gauge("x_total", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        Registry::new().counter("0bad", "h", &[]);
    }

    #[test]
    fn render_is_well_formed() {
        let r = Registry::new();
        r.counter("q_total", "queries", &[("algo", "HEAP")]).add(3);
        r.gauge("depth", "queue depth", &[]).set(2.0);
        let h = r.histogram("lat_us", "latency", &[]);
        h.record(5);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE q_total counter"));
        assert!(text.contains("q_total{algo=\"HEAP\"} 3"));
        assert!(text.contains("depth 2"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_us_sum 105"));
        assert!(text.contains("lat_us_count 2"));
        crate::lint_exposition(&text).expect("own output passes the linter");
    }

    #[test]
    fn label_escaping() {
        let r = Registry::new();
        r.counter("e_total", "h", &[("path", "a\"b\\c\nd")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("e_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
        crate::lint_exposition(&text).expect("escaped labels still lint");
    }
}
