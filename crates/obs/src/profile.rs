//! The per-query work profile: every observable the engine and service can
//! attribute to a single query, in one structure.

/// The structured work profile of one query.
///
/// Where the paper reports one aggregate number (disk accesses) per figure
/// point, this captures *why* an individual query cost what it did: which
/// tree level burned the node accesses, how much of the leaf work the
/// threshold kernel and the plane sweep avoided, how large the HEAP
/// algorithm's priority queue grew, and where the wall-clock went.
/// Serialized as one JSON line by the slow-query log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Service-assigned query id (0 outside a service).
    pub query_id: u64,
    /// Algorithm label (`EXH`, `SIM`, `STD`, `HEAP`, `NAIVE`).
    pub algorithm: String,
    /// Join kind label (`cross`, `self`).
    pub kind: String,
    /// Requested `K`.
    pub k: u64,
    /// Terminal status label (`completed`, `timed-out`, `failed`).
    pub status: String,
    /// Node accesses on the `P` tree, indexed by tree level (0 = leaves).
    pub node_accesses_p: Vec<u64>,
    /// Node accesses on the `Q` tree, indexed by tree level. Empty for
    /// self-joins (both sides read the `P` tree and are charged to it).
    pub node_accesses_q: Vec<u64>,
    /// Buffer-pool hits during the query (approximate under concurrency —
    /// other workers' traffic on the shared pools lands in the same delta).
    pub buffer_hits: u64,
    /// Buffer-pool misses during the query (same caveat).
    pub buffer_misses: u64,
    /// Leaf-level distance-kernel invocations.
    pub dist_computations: u64,
    /// Kernel invocations that bailed out mid-accumulation because the
    /// partial sum already exceeded the threshold `T`.
    pub kernel_early_outs: u64,
    /// Leaf pairs the plane sweep never visited (axis-gap break) that a
    /// brute-force scan would have enumerated.
    pub sweep_pairs_skipped: u64,
    /// Candidate node pairs pruned by `MINMINDIST > T`.
    pub pairs_pruned: u64,
    /// Node pairs processed (recursive calls or heap pops).
    pub node_pairs_processed: u64,
    /// Insertions into the main priority structure (HEAP algorithm).
    pub heap_inserts: u64,
    /// Largest size reached by the main priority structure.
    pub heap_high_watermark: u64,
    /// Time spent queued before a worker picked the query up, microseconds.
    pub queue_wait_us: u64,
    /// Execution time on the worker, microseconds.
    pub exec_us: u64,
    /// Time inside candidate generation (`gen_cands`), nanoseconds.
    pub gen_ns: u64,
    /// Time inside leaf scanning (`scan_leaves`), nanoseconds.
    pub scan_ns: u64,
    /// Speculative worker threads used by the parallel executor (0 for a
    /// sequential run; all `parallel_*` fields stay 0 then).
    pub parallel_workers: u64,
    /// Speculative tasks executed across all workers.
    pub parallel_tasks: u64,
    /// Driver-side consultations answered from the speculation caches.
    pub parallel_cache_hits: u64,
    /// Tasks popped from another worker's queue shard.
    pub parallel_steals: u64,
    /// Steal attempts that found every foreign shard empty.
    pub parallel_steal_misses: u64,
    /// Successful CAS-tightenings of the shared global bound.
    pub parallel_bound_updates: u64,
    /// Per-worker time spent executing speculative tasks, nanoseconds
    /// (empty for sequential runs).
    pub worker_busy_ns: Vec<u64>,
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_arr(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

impl QueryProfile {
    /// End-to-end latency in microseconds (queue wait + execution).
    pub fn latency_us(&self) -> u64 {
        self.queue_wait_us + self.exec_us
    }

    /// Total node accesses across both trees and all levels.
    pub fn node_accesses(&self) -> u64 {
        self.node_accesses_p.iter().sum::<u64>() + self.node_accesses_q.iter().sum::<u64>()
    }

    /// Serializes the profile as a single JSON line (no trailing newline) —
    /// the slow-query log's JSONL record format.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"query_id\":{},\"algorithm\":{},\"kind\":{},\"k\":{},\"status\":{},",
                "\"latency_us\":{},\"queue_wait_us\":{},\"exec_us\":{},",
                "\"node_accesses_p\":{},\"node_accesses_q\":{},",
                "\"buffer_hits\":{},\"buffer_misses\":{},",
                "\"dist_computations\":{},\"kernel_early_outs\":{},",
                "\"sweep_pairs_skipped\":{},\"pairs_pruned\":{},",
                "\"node_pairs_processed\":{},\"heap_inserts\":{},",
                "\"heap_high_watermark\":{},\"gen_ns\":{},\"scan_ns\":{},",
                "\"parallel_workers\":{},\"parallel_tasks\":{},",
                "\"parallel_cache_hits\":{},\"parallel_steals\":{},",
                "\"parallel_steal_misses\":{},\"parallel_bound_updates\":{},",
                "\"worker_busy_ns\":{}}}"
            ),
            self.query_id,
            json_str(&self.algorithm),
            json_str(&self.kind),
            self.k,
            json_str(&self.status),
            self.latency_us(),
            self.queue_wait_us,
            self.exec_us,
            json_arr(&self.node_accesses_p),
            json_arr(&self.node_accesses_q),
            self.buffer_hits,
            self.buffer_misses,
            self.dist_computations,
            self.kernel_early_outs,
            self.sweep_pairs_skipped,
            self.pairs_pruned,
            self.node_pairs_processed,
            self.heap_inserts,
            self.heap_high_watermark,
            self.gen_ns,
            self.scan_ns,
            self.parallel_workers,
            self.parallel_tasks,
            self.parallel_cache_hits,
            self.parallel_steals,
            self.parallel_steal_misses,
            self.parallel_bound_updates,
            json_arr(&self.worker_busy_ns),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let p = QueryProfile {
            query_id: 7,
            algorithm: "HEAP".into(),
            kind: "cross".into(),
            k: 10,
            status: "completed".into(),
            node_accesses_p: vec![5, 2, 1],
            node_accesses_q: vec![4, 1],
            queue_wait_us: 10,
            exec_us: 90,
            ..Default::default()
        };
        let j = p.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(!j.contains('\n'), "JSONL records are single lines");
        assert!(j.contains("\"algorithm\":\"HEAP\""));
        assert!(j.contains("\"node_accesses_p\":[5,2,1]"));
        assert!(j.contains("\"latency_us\":100"));
        assert!(j.contains("\"parallel_workers\":0"));
        assert!(j.contains("\"worker_busy_ns\":[]"));
    }

    #[test]
    fn parallel_fields_serialize() {
        let p = QueryProfile {
            parallel_workers: 7,
            parallel_tasks: 42,
            parallel_steals: 3,
            worker_busy_ns: vec![11, 22],
            ..Default::default()
        };
        let j = p.to_json();
        assert!(j.contains("\"parallel_workers\":7"));
        assert!(j.contains("\"parallel_tasks\":42"));
        assert!(j.contains("\"parallel_steals\":3"));
        assert!(j.contains("\"worker_busy_ns\":[11,22]"));
    }

    #[test]
    fn totals() {
        let p = QueryProfile {
            node_accesses_p: vec![3, 1],
            node_accesses_q: vec![2],
            ..Default::default()
        };
        assert_eq!(p.node_accesses(), 6);
    }

    #[test]
    fn string_escaping() {
        let p = QueryProfile {
            status: "fail: \"disk\"\n".into(),
            ..Default::default()
        };
        assert!(p.to_json().contains("\"fail: \\\"disk\\\"\\n\""));
    }
}
