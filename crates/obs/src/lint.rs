//! A small Prometheus text-exposition linter.
//!
//! Used by the CI metrics smoke step: scrape `/metrics`, feed the body
//! through [`lint_exposition`], fail the build on any malformed line. It is
//! deliberately stricter than a scraper needs to be — it lints *our own*
//! renderer's output, so unknown constructs are errors, not extensions.

use std::collections::HashMap;

/// One problem found in an exposition body, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// 1-based line number (0 for document-level problems).
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// Splits `name{labels}` into the name and the raw label block (without
/// braces); `None` on unbalanced braces.
fn split_labels(sample: &str) -> Option<(&str, Option<&str>)> {
    match sample.find('{') {
        None => Some((sample, None)),
        Some(open) => {
            let rest = &sample[open..];
            if !rest.ends_with('}') {
                return None;
            }
            Some((&sample[..open], Some(&rest[1..rest.len() - 1])))
        }
    }
}

/// Parses a label block like `a="x",le="+Inf"`; `None` on malformed input.
fn parse_labels(block: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = &rest[..eq];
        if !is_name(key) {
            return None;
        }
        rest = rest[eq + 1..].strip_prefix('"')?;
        // Find the closing quote, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            let (i, c) = chars.next()?;
            match c {
                '"' => break i,
                '\\' => {
                    let (_, esc) = chars.next()?;
                    match esc {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        _ => return None,
                    }
                }
                c => value.push(c),
            }
        };
        out.push((key.to_string(), value));
        rest = &rest[close + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(out)
}

/// The family a sample name belongs to: `x_bucket`/`x_sum`/`x_count` roll up
/// to the histogram family `x` when such a family was declared.
fn family_of<'a>(name: &'a str, histograms: &HashMap<&str, ()>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if histograms.contains_key(base) {
                return base;
            }
        }
    }
    name
}

/// Lints a Prometheus text-exposition body.
///
/// Checks, per line: `# HELP`/`# TYPE` shape (no other comments), valid
/// metric and label names, parseable values, label-block syntax. Checks,
/// per family: `TYPE` declared before samples, known type, no duplicate
/// `TYPE`; no two samples share a name and identical label set (the
/// symptom of a series registered twice — scrapers keep whichever value
/// they read last, silently); for histograms, a `+Inf` bucket per series
/// whose cumulative buckets are non-decreasing and whose `_count` equals
/// the `+Inf` bucket. Returns every problem found (empty `Ok` means the
/// body is clean).
pub fn lint_exposition(body: &str) -> Result<(), Vec<LintError>> {
    let mut errors = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut seen: HashMap<(String, Vec<(String, String)>), usize> = HashMap::new();
    let mut histograms: HashMap<&str, ()> = HashMap::new();
    // Histogram per-series state: (family, labels-without-le) → last
    // cumulative bucket value, +Inf value, _count value.
    type SeriesKey = (String, Vec<(String, String)>);
    let mut bucket_last: HashMap<SeriesKey, (u64, f64)> = HashMap::new();
    let mut bucket_inf: HashMap<SeriesKey, u64> = HashMap::new();
    let mut counts: HashMap<SeriesKey, u64> = HashMap::new();
    let mut sums: HashMap<SeriesKey, ()> = HashMap::new();

    // First pass for TYPE lines so `family_of` knows the histogram names
    // even if a sample preceded its TYPE (which is itself reported below).
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            if let (Some(name), Some("histogram")) = (it.next(), it.next()) {
                histograms.insert(name, ());
            }
        }
    }
    // `histograms` borrows from `body`, which outlives the loop.
    let histograms = histograms;

    for (idx, line) in body.lines().enumerate() {
        let lineno = idx + 1;
        let mut err = |message: String| {
            errors.push(LintError {
                line: lineno,
                message,
            })
        };
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !is_name(name) {
                err(format!("malformed HELP line: {line:?}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            match parts.as_slice() {
                [name, kind] if is_name(name) => {
                    if !matches!(*kind, "counter" | "gauge" | "histogram") {
                        err(format!("unknown metric type {kind:?}"));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        err(format!("duplicate TYPE for {name:?}"));
                    }
                }
                _ => err(format!("malformed TYPE line: {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            err(format!(
                "unexpected comment (only HELP/TYPE allowed): {line:?}"
            ));
            continue;
        }

        // Sample line: `name[{labels}] value`.
        let Some((sample, value_str)) = line.rsplit_once(' ') else {
            err(format!("sample line without value: {line:?}"));
            continue;
        };
        let Some(value) = parse_value(value_str) else {
            err(format!("unparseable sample value {value_str:?}"));
            continue;
        };
        let Some((name, label_block)) = split_labels(sample) else {
            err(format!("unbalanced label braces: {sample:?}"));
            continue;
        };
        if !is_name(name) {
            err(format!("invalid metric name {name:?}"));
            continue;
        }
        let labels = match label_block {
            None => Vec::new(),
            Some(block) => match parse_labels(block) {
                Some(l) => l,
                None => {
                    err(format!("malformed label block {block:?}"));
                    continue;
                }
            },
        };
        let mut sorted = labels.clone();
        sorted.sort();
        if let Some(first) = seen.insert((name.to_string(), sorted), lineno) {
            err(format!(
                "duplicate sample for {name:?} with identical labels (first at line {first}) — a series registered twice"
            ));
        }

        let family = family_of(name, &histograms);
        if !types.contains_key(family) {
            err(format!("sample for {name:?} precedes its TYPE declaration"));
        }

        // Histogram bookkeeping.
        if histograms.contains_key(family) {
            let bare: Vec<(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            let key = (family.to_string(), bare);
            if name.ends_with("_bucket") {
                let le = labels.iter().find(|(k, _)| k == "le");
                let Some((_, le)) = le else {
                    err(format!("histogram bucket without le label: {line:?}"));
                    continue;
                };
                let Some(le_v) = parse_value(le) else {
                    err(format!("unparseable le bound {le:?}"));
                    continue;
                };
                let cum = value as u64;
                if let Some((prev, prev_le)) = bucket_last.get(&key) {
                    if le_v < *prev_le {
                        err(format!("bucket le bounds out of order at {line:?}"));
                    }
                    if cum < *prev {
                        err(format!("cumulative bucket decreased at {line:?}"));
                    }
                }
                bucket_last.insert(key.clone(), (cum, le_v));
                if le_v.is_infinite() {
                    bucket_inf.insert(key, cum);
                }
            } else if name.ends_with("_count") {
                counts.insert(key, value as u64);
            } else if name.ends_with("_sum") {
                sums.insert(key, ());
            }
        }
    }

    // Per-series histogram invariants.
    for (key, inf) in &bucket_inf {
        match counts.get(key) {
            Some(c) if c == inf => {}
            Some(c) => errors.push(LintError {
                line: 0,
                message: format!("histogram {:?}: _count {c} != +Inf bucket {inf}", key.0),
            }),
            None => errors.push(LintError {
                line: 0,
                message: format!("histogram {:?}: missing _count", key.0),
            }),
        }
        if !sums.contains_key(key) {
            errors.push(LintError {
                line: 0,
                message: format!("histogram {:?}: missing _sum", key.0),
            });
        }
    }
    for key in bucket_last.keys() {
        if !bucket_inf.contains_key(key) {
            errors.push(LintError {
                line: 0,
                message: format!("histogram {:?}: missing +Inf bucket", key.0),
            });
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_body_passes() {
        let body = "\
# HELP q_total queries served
# TYPE q_total counter
q_total{algo=\"HEAP\"} 3
# HELP lat latency
# TYPE lat histogram
lat_bucket{le=\"1\"} 1
lat_bucket{le=\"2\"} 2
lat_bucket{le=\"+Inf\"} 3
lat_sum 12
lat_count 3
";
        lint_exposition(body).expect("clean body");
    }

    #[test]
    fn missing_type_rejected() {
        let err = lint_exposition("q_total 3\n").unwrap_err();
        assert!(err[0].message.contains("precedes its TYPE"));
    }

    #[test]
    fn bad_value_rejected() {
        let body = "# TYPE x gauge\nx notanumber\n";
        let err = lint_exposition(body).unwrap_err();
        assert!(err.iter().any(|e| e.message.contains("unparseable")));
    }

    #[test]
    fn decreasing_bucket_rejected() {
        let body = "\
# TYPE lat histogram
lat_bucket{le=\"1\"} 5
lat_bucket{le=\"2\"} 3
lat_bucket{le=\"+Inf\"} 5
lat_sum 1
lat_count 5
";
        let err = lint_exposition(body).unwrap_err();
        assert!(err.iter().any(|e| e.message.contains("decreased")));
    }

    #[test]
    fn count_mismatch_rejected() {
        let body = "\
# TYPE lat histogram
lat_bucket{le=\"+Inf\"} 5
lat_sum 1
lat_count 4
";
        let err = lint_exposition(body).unwrap_err();
        assert!(err
            .iter()
            .any(|e| e.message.contains("_count 4 != +Inf bucket 5")));
    }

    #[test]
    fn missing_inf_bucket_rejected() {
        let body = "\
# TYPE lat histogram
lat_bucket{le=\"1\"} 5
lat_sum 1
lat_count 5
";
        let err = lint_exposition(body).unwrap_err();
        assert!(err.iter().any(|e| e.message.contains("missing +Inf")));
    }

    #[test]
    fn stray_comment_rejected() {
        let err = lint_exposition("# hello world\n").unwrap_err();
        assert!(err[0].message.contains("unexpected comment"));
    }

    #[test]
    fn duplicate_sample_rejected() {
        let body = "\
# TYPE q_total counter
q_total{algo=\"HEAP\"} 3
q_total{algo=\"HEAP\"} 5
";
        let err = lint_exposition(body).unwrap_err();
        assert!(
            err.iter()
                .any(|e| e.message.contains("duplicate sample") && e.line == 3),
            "{err:?}"
        );
        // Distinct label values are distinct series, not duplicates.
        let ok = "\
# TYPE q_total counter
q_total{algo=\"HEAP\"} 3
q_total{algo=\"EXH\"} 5
";
        lint_exposition(ok).expect("distinct series are clean");
    }

    #[test]
    fn malformed_labels_rejected() {
        let body = "# TYPE x counter\nx{oops} 1\n";
        let err = lint_exposition(body).unwrap_err();
        assert!(err.iter().any(|e| e.message.contains("malformed label")));
    }
}
