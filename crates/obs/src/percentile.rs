//! Nearest-rank percentile summaries — the single implementation shared by
//! `cpq-service`'s statistics and the benchmark harness (it used to live in
//! the service crate; both now use this one).

/// Distribution summary of `u64` samples (conventionally microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Number of samples summarized.
    pub count: u64,
    /// Arithmetic mean (integer-truncated).
    pub mean_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Largest sample.
    pub max_us: u64,
}

impl Percentiles {
    /// Summarizes `samples` (sorted in place). The nearest-rank convention:
    /// p-th percentile = the sample at `ceil(p/100 · n)`, 1-indexed.
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Percentiles::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |p: f64| -> u64 {
            let idx = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1;
            samples[idx]
        };
        Percentiles {
            count: n as u64,
            mean_us: samples.iter().sum::<u64>() / n as u64,
            p50_us: rank(50.0),
            p95_us: rank(95.0),
            p99_us: rank(99.0),
            max_us: samples[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: Vec<u64> = (1..=100).collect();
        let p = Percentiles::from_samples(&mut s);
        assert_eq!(p.count, 100);
        assert_eq!(p.p50_us, 50);
        assert_eq!(p.p95_us, 95);
        assert_eq!(p.p99_us, 99);
        assert_eq!(p.max_us, 100);
        assert_eq!(p.mean_us, 50); // 50.5 truncated

        let mut one = vec![7u64];
        let p = Percentiles::from_samples(&mut one);
        assert_eq!((p.p50_us, p.p99_us, p.max_us), (7, 7, 7));
        assert_eq!(Percentiles::from_samples(&mut []), Percentiles::default());
    }
}
