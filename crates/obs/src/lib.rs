//! # cpq-obs — observability primitives for the CPQ stack
//!
//! The paper's evaluation observes a single quantity (disk accesses) in
//! offline figure runs; a serving deployment needs to observe a *stream* of
//! queries live. This crate supplies the building blocks, all `std`-only and
//! dependency-free so every other crate in the workspace can use them:
//!
//! * **[`Registry`]** — a metrics registry of [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s. Updates are lock-free atomic operations on
//!   pre-registered handles; a mutex is taken only at registration and
//!   snapshot time. [`Registry::render_prometheus`] emits the Prometheus
//!   text exposition format (version 0.0.4).
//! * **[`Probe`]** — the per-query instrumentation trait the `cpq-core`
//!   engine threads through its entry points. [`NullProbe`] has empty
//!   inlined methods and `ENABLED = false`, so the uninstrumented hot path
//!   compiles to exactly the code it had before this crate existed;
//!   [`ProfileProbe`] accumulates a full [`QueryProfile`].
//! * **[`QueryProfile`]** — the structured work profile of one query:
//!   per-tree-level node accesses, buffer hits/misses, distance computations
//!   vs. threshold-kernel early-outs, plane-sweep pruning, heap
//!   high-watermark, and queue-wait / per-phase timings. Serializes to one
//!   JSON line for the slow-query log.
//! * **[`EventRing`]** — a bounded lock-free MPMC ring buffer, the transport
//!   between query workers and the [`SlowQueryLog`].
//! * **[`Percentiles`]** — the nearest-rank percentile summary shared by
//!   `cpq-service` and the benchmark harness (one implementation, not two).
//! * **[`lint_exposition`]** — a small exposition-format linter used by the
//!   CI metrics smoke test to reject malformed `/metrics` output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lint;
mod metrics;
mod percentile;
mod probe;
mod profile;
mod ring;
mod slowlog;

pub use lint::{lint_exposition, LintError};
pub use metrics::{
    Counter, FamilySnapshot, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricValue,
    Registry, SeriesSnapshot, Snapshot,
};
pub use percentile::Percentiles;
pub use probe::{NullProbe, ParallelReport, Probe, ProbeSide, ProfileProbe};
pub use profile::QueryProfile;
pub use ring::EventRing;
pub use slowlog::SlowQueryLog;
