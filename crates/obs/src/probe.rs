//! The per-query instrumentation hook the engine threads through its entry
//! points.
//!
//! The contract is *zero overhead when off*: [`NullProbe`]'s methods are
//! empty `#[inline]` bodies and its `ENABLED` flag is `false`, so the
//! monomorphized uninstrumented engine contains no probe code at all — no
//! timestamp reads, no branches, identical results and work counters.
//! `cpq-core`'s `probe_overhead` test pins this down bit-for-bit.

use crate::profile::QueryProfile;

/// Which side of the query a tree event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSide {
    /// The `P` tree (also the self-join tree).
    P,
    /// The `Q` tree.
    Q,
}

/// Summary of one intra-query parallel execution, reported once per run by
/// the parallel executor's teardown (see `cpq-core`'s `parallel` module).
///
/// All counters describe *speculative* work — prefetch/precompute tasks the
/// worker threads performed alongside the deterministic sequential driver —
/// so none of them affect results or the paper's work counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelReport {
    /// Worker threads that ran (total threads minus the driver).
    pub workers: u64,
    /// Speculative tasks executed across all workers.
    pub tasks: u64,
    /// Driver-side consultations answered from the speculation caches.
    pub cache_hits: u64,
    /// Tasks a worker popped from another worker's queue shard.
    pub steals: u64,
    /// Steal attempts that found every foreign shard empty.
    pub steal_misses: u64,
    /// Successful CAS-tightenings of the shared global bound.
    pub bound_updates: u64,
    /// Per-worker time spent executing tasks, nanoseconds.
    pub worker_busy_ns: Vec<u64>,
}

/// Per-query instrumentation callbacks.
///
/// Methods default to empty bodies so implementations override only what
/// they record. `ENABLED` gates the *caller-side* cost: the engine wraps
/// timestamp reads (`Instant::now`) in `if P::ENABLED` blocks, which the
/// compiler removes entirely for [`NullProbe`].
pub trait Probe {
    /// `false` only for [`NullProbe`]: lets call sites skip work (clocks,
    /// deltas) that would be observable overhead even with empty callbacks.
    const ENABLED: bool = true;

    /// One node was read on `side` at tree `level` (0 = leaf).
    #[inline]
    fn node_access(&mut self, side: ProbeSide, level: u8) {
        let _ = (side, level);
    }

    /// One leaf-pair scan finished: `dist_computations` kernel calls, of
    /// which `kernel_early_outs` bailed out on the threshold;
    /// `sweep_pairs_skipped` pairs were never visited thanks to the
    /// plane-sweep axis-gap break; the scan took `elapsed_ns`.
    #[inline]
    fn leaf_scan(
        &mut self,
        dist_computations: u64,
        kernel_early_outs: u64,
        sweep_pairs_skipped: u64,
        elapsed_ns: u64,
    ) {
        let _ = (
            dist_computations,
            kernel_early_outs,
            sweep_pairs_skipped,
            elapsed_ns,
        );
    }

    /// One candidate-generation pass (`gen_cands`) took `elapsed_ns`.
    #[inline]
    fn gen_phase(&mut self, elapsed_ns: u64) {
        let _ = elapsed_ns;
    }

    /// The parallel executor finished: speculation counters and per-worker
    /// phase timings for this run. Never called by sequential runs.
    #[inline]
    fn parallel_exec(&mut self, report: &ParallelReport) {
        let _ = report;
    }
}

/// The no-op probe: the uninstrumented path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;
}

/// A probe accumulating a [`QueryProfile`].
///
/// Engine-observable fields (node accesses per level, kernel counters,
/// phase timings) are filled by the callbacks; the serving layer completes
/// the profile with identity, status, buffer deltas, and queue/exec
/// timings after the run.
#[derive(Debug, Clone, Default)]
pub struct ProfileProbe {
    /// The profile under construction.
    pub profile: QueryProfile,
}

impl ProfileProbe {
    /// Creates a probe with an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the probe, returning the accumulated profile.
    pub fn into_profile(self) -> QueryProfile {
        self.profile
    }
}

fn bump_level(v: &mut Vec<u64>, level: u8) {
    let idx = level as usize;
    if v.len() <= idx {
        v.resize(idx + 1, 0);
    }
    v[idx] += 1;
}

impl Probe for ProfileProbe {
    #[inline]
    fn node_access(&mut self, side: ProbeSide, level: u8) {
        match side {
            ProbeSide::P => bump_level(&mut self.profile.node_accesses_p, level),
            ProbeSide::Q => bump_level(&mut self.profile.node_accesses_q, level),
        }
    }

    #[inline]
    fn leaf_scan(
        &mut self,
        dist_computations: u64,
        kernel_early_outs: u64,
        sweep_pairs_skipped: u64,
        elapsed_ns: u64,
    ) {
        self.profile.dist_computations += dist_computations;
        self.profile.kernel_early_outs += kernel_early_outs;
        self.profile.sweep_pairs_skipped += sweep_pairs_skipped;
        self.profile.scan_ns += elapsed_ns;
    }

    #[inline]
    fn gen_phase(&mut self, elapsed_ns: u64) {
        self.profile.gen_ns += elapsed_ns;
    }

    #[inline]
    fn parallel_exec(&mut self, report: &ParallelReport) {
        self.profile.parallel_workers = report.workers;
        self.profile.parallel_tasks = report.tasks;
        self.profile.parallel_cache_hits = report.cache_hits;
        self.profile.parallel_steals = report.steals;
        self.profile.parallel_steal_misses = report.steal_misses;
        self.profile.parallel_bound_updates = report.bound_updates;
        self.profile.worker_busy_ns = report.worker_busy_ns.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_probe_is_disabled() {
        assert!(!NullProbe::ENABLED);
        // And its callbacks are callable no-ops.
        let mut p = NullProbe;
        p.node_access(ProbeSide::P, 3);
        p.leaf_scan(1, 2, 3, 4);
        p.gen_phase(5);
    }

    #[test]
    fn profile_probe_accumulates() {
        let mut p = ProfileProbe::new();
        p.node_access(ProbeSide::P, 2);
        p.node_access(ProbeSide::P, 0);
        p.node_access(ProbeSide::P, 0);
        p.node_access(ProbeSide::Q, 1);
        p.leaf_scan(10, 2, 40, 100);
        p.leaf_scan(5, 1, 0, 50);
        p.gen_phase(7);
        p.parallel_exec(&ParallelReport {
            workers: 3,
            tasks: 17,
            cache_hits: 9,
            steals: 4,
            steal_misses: 2,
            bound_updates: 6,
            worker_busy_ns: vec![100, 200, 300],
        });
        let prof = p.into_profile();
        assert_eq!(prof.node_accesses_p, vec![2, 0, 1]);
        assert_eq!(prof.node_accesses_q, vec![0, 1]);
        assert_eq!(prof.dist_computations, 15);
        assert_eq!(prof.kernel_early_outs, 3);
        assert_eq!(prof.sweep_pairs_skipped, 40);
        assert_eq!(prof.scan_ns, 150);
        assert_eq!(prof.gen_ns, 7);
        assert_eq!(prof.node_accesses(), 4);
        assert_eq!(prof.parallel_workers, 3);
        assert_eq!(prof.parallel_tasks, 17);
        assert_eq!(prof.parallel_cache_hits, 9);
        assert_eq!(prof.parallel_steals, 4);
        assert_eq!(prof.parallel_steal_misses, 2);
        assert_eq!(prof.parallel_bound_updates, 6);
        assert_eq!(prof.worker_busy_ns, vec![100, 200, 300]);
    }
}
