//! Multi-threaded registry stress test: many threads hammering shared
//! counters, gauges, and histograms through the registry must lose nothing —
//! the final snapshot carries *exact* counts, not approximations.

use cpq_obs::{lint_exposition, MetricValue, Registry};
use std::sync::Arc;

const THREADS: u64 = 8;
const ITERS: u64 = 10_000;

#[test]
fn concurrent_updates_are_exact() {
    let reg = Arc::new(Registry::new());
    // Pre-register so every thread resolves the same instruments.
    let _ = reg.counter("stress_ops_total", "ops", &[]);
    let _ = reg.histogram("stress_latency", "lat", &[]);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                // Re-resolve inside the thread: get-or-create must return
                // the same underlying instrument.
                let ops = reg.counter("stress_ops_total", "ops", &[]);
                let labeled = reg.counter(
                    "stress_labeled_total",
                    "per-thread",
                    &[("thread", &t.to_string())],
                );
                let hist = reg.histogram("stress_latency", "lat", &[]);
                let gauge = reg.gauge("stress_level", "level", &[]);
                for i in 0..ITERS {
                    ops.inc();
                    labeled.add(2);
                    hist.record(i % 1024);
                    gauge.set(t as f64);
                }
            });
        }
    });

    let snap = reg.snapshot();
    let value_of = |name: &str, labels: &[(&str, &str)]| -> MetricValue {
        let fam = snap
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("family {name} missing"));
        let want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        fam.series
            .iter()
            .find(|s| s.labels == want)
            .unwrap_or_else(|| panic!("series {name}{labels:?} missing"))
            .value
            .clone()
    };

    match value_of("stress_ops_total", &[]) {
        MetricValue::Counter(v) => assert_eq!(v, THREADS * ITERS),
        other => panic!("wrong kind: {other:?}"),
    }
    for t in 0..THREADS {
        match value_of("stress_labeled_total", &[("thread", &t.to_string())]) {
            MetricValue::Counter(v) => assert_eq!(v, 2 * ITERS),
            other => panic!("wrong kind: {other:?}"),
        }
    }
    match value_of("stress_latency", &[]) {
        MetricValue::Histogram(h) => {
            assert_eq!(h.count, THREADS * ITERS);
            // Every recorded value is < 1024 = 2^10, so the le=1024 bucket
            // already holds everything.
            let full: u64 = h.buckets.iter().sum::<u64>() + h.overflow;
            assert_eq!(full, h.count);
            assert_eq!(h.overflow, 0);
            let expected_sum: u64 = THREADS * (0..ITERS).map(|i| i % 1024).sum::<u64>();
            assert_eq!(h.sum, expected_sum);
        }
        other => panic!("wrong kind: {other:?}"),
    }
    match value_of("stress_level", &[]) {
        MetricValue::Gauge(v) => assert!((0.0..THREADS as f64).contains(&v)),
        other => panic!("wrong kind: {other:?}"),
    }

    // The rendered exposition of the stressed registry must be lint-clean.
    lint_exposition(&reg.render_prometheus()).expect("stressed registry renders clean");
}

#[test]
fn snapshot_under_concurrent_writes_is_coherent() {
    // Histogram snapshots taken mid-write must satisfy count == Σ buckets
    // (torn-view freedom by construction) and sum must never exceed the
    // final total.
    let reg = Arc::new(Registry::new());
    let hist = reg.histogram("torn_check", "x", &[]);
    std::thread::scope(|s| {
        let writer = {
            let hist = Arc::clone(&hist);
            s.spawn(move || {
                for i in 0..50_000u64 {
                    hist.record(i % 100);
                }
            })
        };
        for _ in 0..200 {
            let snap = hist.snapshot();
            let total: u64 = snap.buckets.iter().sum::<u64>() + snap.overflow;
            assert_eq!(snap.count, total, "histogram count derives from buckets");
            std::thread::yield_now();
        }
        writer.join().unwrap();
    });
    let fin = hist.snapshot();
    assert_eq!(fin.count, 50_000);
}
