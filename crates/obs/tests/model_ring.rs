//! Model-checked harness for the event ring (`EventRing`).
//!
//! Compiled only under `RUSTFLAGS="--cfg cpq_model"`. The positive models
//! drive the *real* Vyukov-style ring — cursor CASes, per-slot sequence
//! hand-off, slot mutex — through exhaustive bounded DFS and assert the
//! record-integrity contract: every pushed record is popped exactly once,
//! bit-identical, never torn, never duplicated. The negative model breaks
//! the publication protocol the ring's `Release` store of `seq` provides
//! (publishing before the payload write is complete) and pins the torn
//! read the checker finds.
#![cfg(cpq_model)]

use cpq_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use cpq_check::sync::Arc;
use cpq_check::thread;
use cpq_check::{model_dfs, model_pct, replay, try_model_dfs, try_replay, DfsOptions, PctOptions};
use cpq_obs::EventRing;

#[test]
fn dfs_two_producers_lose_nothing() {
    // Preemption-bounded (CHESS-style): the unbounded choice tree of two
    // CAS retry loops is astronomically larger, and concurrency bugs
    // overwhelmingly manifest within two preemptions.
    let report = model_dfs(DfsOptions::smoke(), || {
        let ring = Arc::new(EventRing::new(4));
        let producers: Vec<_> = [1u64, 2u64]
            .into_iter()
            .map(|v| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || ring.try_push(v).expect("ring of 4 holds 2"))
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        let mut drained = ring.drain();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2], "both records, never torn or doubled");
        assert_eq!(ring.dropped(), 0);
    });
    assert!(report.complete, "the DFS must exhaust the interleavings");
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

#[test]
fn dfs_producer_consumer_overlap_preserves_records() {
    let report = model_dfs(DfsOptions::smoke(), || {
        let ring = Arc::new(EventRing::new(2));
        let consumer = {
            let ring = Arc::clone(&ring);
            // Exactly three pop *attempts* (bounded — a model must not
            // spin): each either observes a completed push or an empty
            // ring, in FIFO order either way.
            thread::spawn(move || (0..3).filter_map(|_| ring.pop()).collect::<Vec<u64>>())
        };
        ring.try_push(1).expect("ring of 2 holds the first");
        ring.try_push(2).expect("a ring of 2 holds both in flight");
        let consumed = consumer.join().expect("consumer");
        let mut all = consumed.clone();
        all.extend(ring.drain());
        assert_eq!(
            all,
            vec![1, 2],
            "FIFO, exactly once, however the race lands"
        );
    });
    assert!(report.complete);
}

#[test]
fn pct_contended_ring_with_wraparound() {
    // Two producers race four records through a capacity-2 ring while a
    // consumer makes bounded pop attempts: slots wrap and the sequence
    // numbers lap. 200 seeded PCT schedules must keep the multiset exact:
    // accepted records are consumed exactly once, rejected ones are
    // counted, nothing tears.
    let opts = PctOptions::from_env();
    let want = opts.seeds.end - opts.seeds.start;
    let n = model_pct(opts, || {
        let ring = Arc::new(EventRing::new(2));
        let producers: Vec<_> = [[1u64, 2u64], [3u64, 4u64]]
            .into_iter()
            .map(|vals| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    vals.into_iter()
                        .filter(|&v| ring.try_push(v).is_ok())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || (0..4).filter_map(|_| ring.pop()).collect::<Vec<u64>>())
        };
        let mut accepted: Vec<u64> = Vec::new();
        for p in producers {
            accepted.extend(p.join().expect("producer"));
        }
        let mut seen = consumer.join().expect("consumer");
        seen.extend(ring.drain());
        seen.sort_unstable();
        accepted.sort_unstable();
        assert_eq!(seen, accepted, "accepted records surface exactly once");
        assert_eq!(ring.dropped(), 4 - accepted.len() as u64);
    });
    assert_eq!(n, want);
}

/// The deliberately-broken publication protocol: a two-word record stored
/// as two atomics, with the ready flag raised *between* the two halves —
/// precisely what the ring avoids by storing the payload before the
/// `Release` store of the slot's `seq`.
fn torn_publication_model() {
    let lo = Arc::new(AtomicU64::new(0));
    let hi = Arc::new(AtomicU64::new(0));
    let ready = Arc::new(AtomicBool::new(false));
    let producer = {
        let (lo, hi, ready) = (Arc::clone(&lo), Arc::clone(&hi), Arc::clone(&ready));
        thread::spawn(move || {
            lo.store(7, Ordering::SeqCst);
            ready.store(true, Ordering::SeqCst); // BUG: published half-written
            hi.store(7, Ordering::SeqCst);
        })
    };
    if ready.load(Ordering::SeqCst) {
        let (l, h) = (lo.load(Ordering::SeqCst), hi.load(Ordering::SeqCst));
        assert_eq!(l, h, "torn record");
    }
    producer.join().expect("producer");
}

/// The torn-read schedule of [`torn_publication_model`], pinned by
/// [`torn_publication_is_found_and_replayable`]: the reader observes the
/// flag after the low half but before the high half lands.
const PINNED_TORN_RECORD: &[usize] = &[1, 1, 1, 0, 0, 0];

#[test]
fn torn_publication_is_found_and_replayable() {
    let failure = try_model_dfs(DfsOptions::default(), torn_publication_model)
        .expect_err("publishing before the payload completes must tear");
    assert!(
        failure.message.contains("torn record"),
        "unexpected failure: {failure}"
    );
    let replayed = try_replay(&failure.schedule, torn_publication_model)
        .expect_err("the reported schedule must reproduce the torn read");
    assert!(replayed.message.contains("torn record"));
    assert_eq!(
        failure.schedule, PINNED_TORN_RECORD,
        "the minimal torn-read schedule moved; update PINNED_TORN_RECORD"
    );
}

#[test]
#[should_panic(expected = "torn record")]
fn pinned_torn_record_schedule_still_fails() {
    replay(PINNED_TORN_RECORD, torn_publication_model);
}
