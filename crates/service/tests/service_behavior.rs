//! Behavioral contract of [`CpqService`]: results through the service are
//! bit-identical to direct engine calls (under worker contention), admission
//! control sheds instead of blocking, deadlines produce `TimedOut` partials
//! without wedging a worker, and shutdown drains the admitted backlog.

use cpq_core::{k_closest_pairs, self_closest_pairs, Algorithm, CpqConfig, PairResult};
use cpq_datasets::uniform;
use cpq_geo::Point2;
use cpq_rtree::{RTree, RTreeParams};
use cpq_service::{
    CpqService, ObsConfig, QueryKind, QueryRequest, QueryStatus, ServiceConfig, TreePair,
};
use cpq_storage::{BufferPool, MemPageFile};
use std::time::Duration;

fn build_tree(points: &[(Point2, u64)], cache_pages: usize) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), cache_pages);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for &(p, oid) in points {
        tree.insert(p, oid).unwrap();
    }
    tree
}

fn tree_pair(n: usize, cache_pages: usize) -> (RTree<2>, RTree<2>) {
    let p = build_tree(&uniform(n, 42).indexed(), cache_pages);
    let q = build_tree(&uniform(n, 1337).indexed(), cache_pages);
    (p, q)
}

/// Field-by-field pair comparison with exact f64 bit equality on the
/// distance — "same answer" here means *bit-identical*, not approximately
/// equal.
fn assert_pairs_identical(got: &[PairResult<2>], want: &[PairResult<2>], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: result count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.p.oid, w.p.oid, "{what}: pair {i} p-oid");
        assert_eq!(g.q.oid, w.q.oid, "{what}: pair {i} q-oid");
        assert_eq!(g.p.object, w.p.object, "{what}: pair {i} p-object");
        assert_eq!(g.q.object, w.q.object, "{what}: pair {i} q-object");
        assert_eq!(
            g.dist2.get().to_bits(),
            w.dist2.get().to_bits(),
            "{what}: pair {i} dist2 bits"
        );
    }
}

const ALL_ALGORITHMS: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::Exhaustive,
    Algorithm::Simple,
    Algorithm::SortedDistances,
    Algorithm::Heap,
];

/// The ISSUE's determinism gate: every algorithm × K ∈ {1, 100} × both join
/// kinds, executed through a multi-worker service *with contention* (the
/// whole workload is admitted up front, so 4 workers run concurrently over
/// the shared trees), must return results bit-identical to a direct
/// single-threaded engine call, along with identical deterministic work
/// counters.
#[test]
fn service_results_bit_identical_to_direct_calls() {
    let cfg = CpqConfig::paper();
    let (tp, tq) = tree_pair(400, 64);

    // Direct single-threaded reference answers, computed on the very trees
    // the service will serve from.
    let mut combos = Vec::new();
    for algorithm in ALL_ALGORITHMS {
        for k in [1usize, 100] {
            for kind in [QueryKind::Cross, QueryKind::SelfJoin] {
                let expected = match kind {
                    QueryKind::Cross => k_closest_pairs(&tp, &tq, k, algorithm, &cfg).unwrap(),
                    QueryKind::SelfJoin => self_closest_pairs(&tp, k, algorithm, &cfg).unwrap(),
                };
                combos.push((algorithm, k, kind, expected));
            }
        }
    }

    let service = CpqService::start(
        TreePair::new(tp, tq),
        ServiceConfig {
            workers: 4,
            queue_capacity: 128,
            cpq: cfg,
            max_parallelism: 1,
            max_shards: 1,
            default_deadline: None,
            obs: ObsConfig::default(),
        },
    );

    // Submit every combo twice before waiting on anything, so the four
    // workers genuinely contend on the shared trees and buffer pools.
    let tickets: Vec<_> = (0..2)
        .flat_map(|_| {
            combos.iter().map(|&(algorithm, k, kind, _)| {
                let req = match kind {
                    QueryKind::Cross => QueryRequest::cross(k, algorithm),
                    QueryKind::SelfJoin => QueryRequest::self_join(k, algorithm),
                };
                service.submit(req).expect("queue sized for full workload")
            })
        })
        .collect();

    for (ticket, (algorithm, k, kind, expected)) in tickets.into_iter().zip(combos.iter().cycle()) {
        let what = format!("{} K={k} {}", algorithm.label(), kind.label());
        let resp = ticket.wait();
        assert_eq!(resp.status, QueryStatus::Completed, "{what}: status");
        assert_pairs_identical(&resp.pairs, &expected.pairs, &what);
        assert_eq!(
            resp.stats.dist_computations, expected.stats.dist_computations,
            "{what}: dist_computations"
        );
        assert_eq!(
            resp.stats.node_pairs_processed, expected.stats.node_pairs_processed,
            "{what}: node_pairs_processed"
        );
    }

    let stats = service.shutdown();
    assert_eq!(stats.completed, 2 * 20);
    assert_eq!(stats.timed_out + stats.failed + stats.shed, 0);
}

/// A full queue sheds (`Err(Rejected)`) without blocking or panicking, and
/// tickets of never-executed queries resolve to `Dropped` on teardown
/// instead of hanging.
#[test]
fn full_queue_sheds_and_dropped_tickets_resolve() {
    let (tp, tq) = tree_pair(50, 16);
    // No workers: nothing drains the queue, so occupancy is deterministic.
    let service = CpqService::start(
        TreePair::new(tp, tq),
        ServiceConfig {
            workers: 0,
            queue_capacity: 2,
            cpq: CpqConfig::paper(),
            max_parallelism: 1,
            max_shards: 1,
            default_deadline: None,
            obs: ObsConfig::default(),
        },
    );

    let req = QueryRequest::cross(5, Algorithm::Heap);
    let t1 = service.submit(req).expect("first fits");
    let t2 = service.submit(req).expect("second fits");
    let rejected = match service.submit(req) {
        Err(r) => r,
        Ok(_) => panic!("third submit must shed"),
    };
    assert_eq!(rejected.0.k, 5);
    assert_eq!(service.queue_depth(), 2);
    assert_eq!(service.stats().shed, 1);

    drop(service); // tears down with the two admitted queries unexecuted
    assert_eq!(t1.wait().status, QueryStatus::Dropped);
    assert_eq!(t2.wait().status, QueryStatus::Dropped);
}

/// An already-expired deadline yields `TimedOut` with a (possibly empty)
/// partial result, and the worker survives to answer the next query — the
/// "deadline must not block a worker" half of the ISSUE's acceptance gate.
#[test]
fn expired_deadline_times_out_without_wedging_the_worker() {
    let (tp, tq) = tree_pair(200, 32);
    let service = CpqService::start(
        TreePair::new(tp, tq),
        ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cpq: CpqConfig::paper(),
            max_parallelism: 1,
            max_shards: 1,
            default_deadline: None,
            obs: ObsConfig::default(),
        },
    );

    let doomed = service
        .execute(QueryRequest::cross(10, Algorithm::Heap).with_deadline(Duration::ZERO))
        .unwrap();
    assert_eq!(doomed.status, QueryStatus::TimedOut);
    assert!(
        doomed.pairs.len() <= 10,
        "partial result never exceeds K ({} pairs)",
        doomed.pairs.len()
    );

    // The single worker must still be alive and productive.
    let followup = service
        .execute(QueryRequest::cross(10, Algorithm::Heap))
        .unwrap();
    assert_eq!(followup.status, QueryStatus::Completed);
    assert_eq!(followup.pairs.len(), 10);

    let stats = service.shutdown();
    assert_eq!((stats.completed, stats.timed_out), (1, 1));
}

/// The service default deadline applies when the request carries none, and
/// a per-request deadline overrides the default.
#[test]
fn default_deadline_applies_and_is_overridable() {
    let (tp, tq) = tree_pair(200, 32);
    let service = CpqService::start(
        TreePair::new(tp, tq),
        ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cpq: CpqConfig::paper(),
            max_parallelism: 1,
            max_shards: 1,
            default_deadline: Some(Duration::ZERO), // everything times out…
            obs: ObsConfig::default(),
        },
    );

    let defaulted = service
        .execute(QueryRequest::cross(5, Algorithm::Heap))
        .unwrap();
    assert_eq!(defaulted.status, QueryStatus::TimedOut);

    // …unless the request brings a generous deadline of its own.
    let overridden = service
        .execute(QueryRequest::cross(5, Algorithm::Heap).with_deadline(Duration::from_secs(60)))
        .unwrap();
    assert_eq!(overridden.status, QueryStatus::Completed);
    assert_eq!(overridden.pairs.len(), 5);
}

/// `shutdown` stops admission but drains the already-admitted backlog:
/// every accepted query still gets a real answer.
#[test]
fn shutdown_drains_admitted_backlog() {
    let (tp, tq) = tree_pair(100, 32);
    let service = CpqService::start(
        TreePair::new(tp, tq),
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cpq: CpqConfig::paper(),
            max_parallelism: 1,
            max_shards: 1,
            default_deadline: None,
            obs: ObsConfig::default(),
        },
    );

    let tickets: Vec<_> = (0..8)
        .map(|_| {
            service
                .submit(QueryRequest::self_join(3, Algorithm::Simple))
                .unwrap()
        })
        .collect();
    let stats = service.shutdown();
    assert_eq!(stats.completed, 8, "backlog fully drained before join");
    for t in tickets {
        let resp = t.wait();
        assert_eq!(resp.status, QueryStatus::Completed);
        assert_eq!(resp.pairs.len(), 3);
    }
}

/// Latency bookkeeping is internally consistent: latency = queue_wait + exec
/// (within rounding), and the summary percentiles cover every executed query.
#[test]
fn timing_and_summary_bookkeeping() {
    let (tp, tq) = tree_pair(100, 32);
    let service = CpqService::start(
        TreePair::new(tp, tq),
        ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            cpq: CpqConfig::paper(),
            max_parallelism: 1,
            max_shards: 1,
            default_deadline: None,
            obs: ObsConfig::default(),
        },
    );

    let tickets: Vec<_> = (0..10)
        .map(|_| {
            service
                .submit(QueryRequest::cross(2, Algorithm::SortedDistances))
                .unwrap()
        })
        .collect();
    for t in tickets {
        let resp = t.wait();
        assert!(resp.latency >= resp.queue_wait);
        assert!(resp.latency >= resp.exec);
        let sum = resp.queue_wait + resp.exec;
        let slack = Duration::from_millis(5);
        assert!(
            resp.latency <= sum + slack && sum <= resp.latency + slack,
            "latency {:?} ≉ queue_wait {:?} + exec {:?}",
            resp.latency,
            resp.queue_wait,
            resp.exec
        );
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.latency.count, 10);
    assert_eq!(stats.queue_wait.count, 10);
    assert!(stats.throughput_qps > 0.0);
}

/// Per-request intra-query parallelism: a parallel request answered through
/// the service is bit-identical (pairs *and* work counters) to a direct
/// sequential engine call, asks above `max_parallelism` are clamped rather
/// than rejected, deadlines still produce `TimedOut` partials, and the
/// per-query profile plus `/metrics` expose the parallel execution counters.
#[test]
fn parallel_requests_bit_identical_clamped_and_deadline_safe() {
    let cfg = CpqConfig::paper();
    // Unbuffered pools: the parallel engine's logical disk ledger then
    // matches the sequential pool-miss delta exactly, so full-stats
    // equality is meaningful here too.
    let (tp, tq) = tree_pair(400, 0);
    let expected_cross = k_closest_pairs(&tp, &tq, 50, Algorithm::Heap, &cfg).unwrap();
    let expected_self = self_closest_pairs(&tp, 50, Algorithm::Heap, &cfg).unwrap();

    let service = CpqService::start(
        TreePair::new(tp, tq),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            cpq: cfg,
            max_parallelism: 8,
            max_shards: 1,
            default_deadline: None,
            obs: ObsConfig::default(),
        },
    );

    // 64 exceeds the ceiling and must be clamped to 8, not refused.
    for threads in [2usize, 8, 64] {
        let resp = service
            .execute(QueryRequest::cross(50, Algorithm::Heap).with_parallelism(threads))
            .unwrap();
        assert_eq!(resp.status, QueryStatus::Completed, "threads={threads}");
        assert_pairs_identical(
            &resp.pairs,
            &expected_cross.pairs,
            &format!("parallel cross threads={threads}"),
        );
        assert_eq!(resp.stats, expected_cross.stats, "threads={threads}");
        let profile = resp.profile.expect("obs is on");
        assert_eq!(
            profile.parallel_workers,
            (threads.min(8) - 1) as u64,
            "threads={threads}: driver plus this many speculating workers"
        );

        let resp = service
            .execute(QueryRequest::self_join(50, Algorithm::Heap).with_parallelism(threads))
            .unwrap();
        assert_eq!(resp.status, QueryStatus::Completed);
        assert_pairs_identical(
            &resp.pairs,
            &expected_self.pairs,
            &format!("parallel self threads={threads}"),
        );
        assert_eq!(resp.stats, expected_self.stats, "threads={threads}");
    }

    // A request that stays sequential reports zero workers.
    let resp = service
        .execute(QueryRequest::cross(5, Algorithm::Heap))
        .unwrap();
    assert_eq!(resp.profile.expect("obs is on").parallel_workers, 0);

    // An impossible deadline on a parallel request times out with a valid
    // (possibly empty) sorted partial and releases the worker.
    let resp = service
        .execute(
            QueryRequest::cross(50, Algorithm::Heap)
                .with_parallelism(8)
                .with_deadline(Duration::ZERO),
        )
        .unwrap();
    assert_eq!(resp.status, QueryStatus::TimedOut);
    assert!(resp.pairs.len() <= 50);

    // The service is unharmed: the next parallel query completes exactly.
    let resp = service
        .execute(QueryRequest::cross(50, Algorithm::Heap).with_parallelism(8))
        .unwrap();
    assert_eq!(resp.status, QueryStatus::Completed);
    assert_pairs_identical(&resp.pairs, &expected_cross.pairs, "after timeout");

    let metrics = service.render_metrics();
    for family in [
        "cpq_parallel_queries_total",
        "cpq_parallel_tasks_total",
        "cpq_parallel_cache_hits_total",
        "cpq_parallel_steals_total",
        "cpq_parallel_steal_misses_total",
        "cpq_parallel_bound_updates_total",
    ] {
        assert!(metrics.contains(family), "missing metric family {family}");
    }
}
