//! The live serving path: a [`CpqService`] started over a mutable
//! [`LiveSet`] answers queries from pinned epoch snapshots while
//! `apply_updates` batches land, and `/metrics` carries the bridged
//! `cpq_wal_*` / `cpq_live_*` series.

use cpq_core::{k_closest_pairs, Algorithm, CpqConfig, PairResult};
use cpq_datasets::uniform_grid;
use cpq_live::{LiveConfig, LiveSet, Side, UpdateOp};
use cpq_rtree::RTreeParams;
use cpq_service::{CpqService, QueryRequest, QueryStatus, ServiceConfig};

fn keys(pairs: &[PairResult<2>]) -> Vec<(u64, u64, u64)> {
    pairs
        .iter()
        .map(|r| (r.dist2.get().to_bits(), r.p.oid, r.q.oid))
        .collect()
}

fn live_set(n: usize) -> LiveSet<2> {
    let data = uniform_grid(n, 0x5EED, 100.0);
    let set: LiveSet<2> =
        LiveSet::new_in_memory(RTreeParams::paper(), &LiveConfig::default()).expect("set");
    // Q is P shifted off the 100-unit grid lattice, so no cross pair sits
    // at distance 0 — a planted coincident pair is unambiguously first.
    let ops: Vec<UpdateOp<2>> = data
        .points
        .iter()
        .enumerate()
        .flat_map(|(i, p)| {
            [
                UpdateOp::Insert {
                    side: Side::P,
                    object: *p,
                    oid: i as u64,
                },
                UpdateOp::Insert {
                    side: Side::Q,
                    object: cpq_geo::Point2::new([p.coord(0) + 37.0, p.coord(1)]),
                    oid: 1_000_000 + i as u64,
                },
            ]
        })
        .collect();
    set.apply(&ops).expect("seed");
    set
}

/// Queries through a live service return exactly what the engine returns
/// on the same committed state, and `apply_updates` routed through the
/// service changes subsequent answers.
#[test]
fn live_service_serves_snapshots_and_routes_updates() {
    let service = CpqService::<2>::start_live(
        live_set(80),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );

    let want = {
        let live = service.live().expect("live service");
        let sp = live.p().snapshot().expect("snap p");
        let sq = live.q().snapshot().expect("snap q");
        k_closest_pairs(
            sp.tree(),
            sq.tree(),
            5,
            Algorithm::Heap,
            &CpqConfig::paper(),
        )
        .expect("engine")
    };
    let resp = service
        .execute(QueryRequest::cross(5, Algorithm::Heap))
        .expect("admitted");
    assert_eq!(resp.status, QueryStatus::Completed);
    assert_eq!(keys(&resp.pairs), keys(&want.pairs));

    let before = keys(&resp.pairs);
    // Plant a pair far closer than anything on the grid; the next query
    // must see it in front.
    let report = service
        .apply_updates(&[
            UpdateOp::Insert {
                side: Side::P,
                object: cpq_geo::Point2::new([501.5, 499.5]),
                oid: 7_000_000,
            },
            UpdateOp::Insert {
                side: Side::Q,
                object: cpq_geo::Point2::new([501.5, 499.5]),
                oid: 7_000_001,
            },
        ])
        .expect("apply");
    assert_eq!(report.applied, 2);
    let resp = service
        .execute(QueryRequest::cross(5, Algorithm::Heap))
        .expect("admitted");
    assert_eq!(resp.status, QueryStatus::Completed);
    assert_ne!(keys(&resp.pairs), before, "update invisible to queries");
    assert_eq!(
        (resp.pairs[0].p.oid, resp.pairs[0].q.oid),
        (7_000_000, 7_000_001),
        "coincident planted pair must rank first"
    );

    // Self-join runs on P's snapshot.
    let resp = service
        .execute(QueryRequest::self_join(3, Algorithm::Heap))
        .expect("admitted");
    assert_eq!(resp.status, QueryStatus::Completed);
    assert_eq!(resp.pairs.len(), 3);

    // A live service has no static pair; a static service rejects
    // apply_updates.
    assert!(service.trees().is_none());
    service.shutdown();
}

/// The bridged live series show up in the exposition with the values the
/// live trees report, and the apply counters track batches/ops.
#[test]
fn live_metrics_bridge_matches_live_stats() {
    let service = CpqService::<2>::start_live(
        live_set(60),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    service
        .apply_updates(&[UpdateOp::Delete {
            side: Side::P,
            object: cpq_geo::Point2::new([-1.0, -1.0]),
            oid: 424242, // guaranteed miss
        }])
        .expect("apply");
    let _ = service
        .execute(QueryRequest::cross(4, Algorithm::Heap))
        .expect("admitted");

    let body = service.render_metrics();
    let (lp, _) = service.live().expect("live").stats();
    assert!(body.contains(&format!(
        "cpq_live_updates_total{{tree=\"p\",op=\"insert\"}} {}",
        lp.inserts
    )));
    assert!(body.contains(&format!(
        "cpq_live_updates_total{{tree=\"p\",op=\"delete-miss\"}} {}",
        lp.delete_misses
    )));
    assert!(body.contains(&format!(
        "cpq_live_pages_total{{tree=\"p\",event=\"retired\"}} {}",
        lp.epoch.pages_retired
    )));
    assert!(body.contains("cpq_live_epoch{tree=\"p\"}"));
    // Only the delete batch went through the service entry point (the
    // seed batch hit the LiveSet directly).
    assert!(body.contains("cpq_live_apply_batches_total 1"));
    assert!(body.contains("cpq_live_apply_ops_total 1"));
    // Memory-only trees have no WAL, but the families are pre-registered
    // (zeros) so scrapers keyed on them never 404.
    assert!(body.contains("cpq_wal_records_total{tree=\"p\"} 0"));
    assert!(body.contains("cpq_wal_flushes_total{tree=\"q\"} 0"));
    // Idle service: no reader is pinning between queries.
    assert!(body.contains("cpq_live_active_pins{tree=\"p\"} 0"));
    service.shutdown();
}

/// A durable live service: WAL counters flow through the bridge.
#[test]
fn durable_live_service_reports_wal_series() {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "cpq-live-svc-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let set: LiveSet<2> =
        LiveSet::create(&dir, RTreeParams::paper(), &LiveConfig::default()).expect("create");
    let service = CpqService::<2>::start_live(
        set,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let ops: Vec<UpdateOp<2>> = (0..10)
        .map(|i| UpdateOp::Insert {
            side: Side::P,
            object: cpq_geo::Point2::new([i as f64, 0.0]),
            oid: i,
        })
        .collect();
    service.apply_updates(&ops).expect("apply");
    let body = service.render_metrics();
    let (lp, _) = service.live().expect("live").stats();
    let wal = lp.wal.expect("durable tree has WAL stats");
    assert!(wal.records > 0);
    assert!(body.contains(&format!(
        "cpq_wal_records_total{{tree=\"p\"}} {}",
        wal.records
    )));
    assert!(body.contains(&format!(
        "cpq_wal_commits_total{{tree=\"p\"}} {}",
        wal.commits
    )));
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
