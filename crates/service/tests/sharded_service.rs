//! Shard-aware request path of [`CpqService`]: a service started with
//! sharded replicas routes `scatter` requests through scatter-gather,
//! returns pairs bit-identical to the classic path, clamps the fan-out to
//! `max_shards`, and surfaces the `shard_*` counters in profiles and
//! `/metrics`.

use cpq_core::Algorithm;
use cpq_datasets::uniform;
use cpq_geo::Point2;
use cpq_obs::lint_exposition;
use cpq_rtree::{RTree, RTreeParams};
use cpq_service::{
    CpqService, ObsConfig, QueryRequest, QueryStatus, ServiceConfig, ShardedPair, ShardedTree,
    TreePair,
};
use cpq_storage::{BufferPool, MemPageFile};
use std::time::Duration;

fn pool() -> BufferPool {
    BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 64)
}

fn build_tree(objects: &[(Point2, u64)]) -> RTree<2> {
    let mut tree = RTree::new(pool(), RTreeParams::paper()).unwrap();
    for &(p, oid) in objects {
        tree.insert(p, oid).unwrap();
    }
    tree
}

fn build_sharded(name: &str, objects: &[(Point2, u64)], shards: usize) -> ShardedTree<2> {
    ShardedTree::build(name, objects, shards, RTreeParams::paper(), None, |_| {
        pool()
    })
    .unwrap()
}

fn start_sharded(max_shards: usize, obs: ObsConfig) -> CpqService<2, Point2> {
    let p = uniform(400, 42).indexed();
    let q = uniform(350, 1337).indexed();
    CpqService::start_sharded(
        TreePair::new(build_tree(&p), build_tree(&q)),
        ShardedPair {
            p: build_sharded("p", &p, 4),
            q: build_sharded("q", &q, 4),
        },
        ServiceConfig {
            workers: 2,
            max_shards,
            obs,
            ..ServiceConfig::default()
        },
    )
}

#[test]
fn scatter_requests_match_classic_path_bitwise() {
    let service = start_sharded(8, ObsConfig::disabled());
    for kind in [
        QueryRequest::cross as fn(usize, Algorithm) -> QueryRequest,
        QueryRequest::self_join,
    ] {
        for k in [1usize, 10, 250] {
            let classic = service.execute(kind(k, Algorithm::Heap)).unwrap();
            let sharded = service
                .execute(kind(k, Algorithm::Heap).with_scatter(4))
                .unwrap();
            assert_eq!(classic.status, QueryStatus::Completed);
            assert_eq!(sharded.status, QueryStatus::Completed);
            assert_eq!(classic.pairs.len(), sharded.pairs.len(), "k={k}");
            for (c, s) in classic.pairs.iter().zip(&sharded.pairs) {
                assert_eq!((c.p.oid, c.q.oid), (s.p.oid, s.q.oid));
                assert_eq!(c.dist2.get().to_bits(), s.dist2.get().to_bits());
            }
        }
    }
    service.shutdown();
}

#[test]
fn scatter_fan_out_is_clamped_and_profiled() {
    let service = start_sharded(
        2,
        ObsConfig {
            enabled: true,
            slow_query_threshold: Some(Duration::ZERO),
            slow_log_capacity: 16,
        },
    );
    // A fan-out far above max_shards is admitted and clamped, not rejected.
    let resp = service
        .execute(QueryRequest::cross(10, Algorithm::Heap).with_scatter(1000))
        .unwrap();
    assert_eq!(resp.status, QueryStatus::Completed);
    let profile = resp.profile.as_deref().expect("profile attached");
    assert_eq!(
        profile.shard_pairs_generated, 16,
        "4x4 shard grid planned: {profile:?}"
    );
    assert_eq!(
        profile.shard_pairs_opened + profile.shard_pairs_pruned,
        profile.shard_pairs_generated,
        "every shard pair accounted"
    );
    assert!(profile.shard_subqueries_completed > 0);

    // A classic query on the same service carries zeroed shard counters.
    let resp = service
        .execute(QueryRequest::cross(10, Algorithm::Heap))
        .unwrap();
    let profile = resp.profile.as_deref().expect("profile attached");
    assert_eq!(profile.shard_pairs_generated, 0);

    let text = service.render_metrics();
    assert_eq!(lint_exposition(&text), Ok(()));
    assert!(text.contains("cpq_shard_queries_total 1"));
    assert!(text.contains("cpq_shard_pairs_total{result=\"generated\"} 16"));
    service.shutdown();
}

#[test]
fn scatter_on_an_unsharded_service_falls_back_to_classic() {
    let p = uniform(200, 7).indexed();
    let q = uniform(200, 8).indexed();
    let service: CpqService<2> = CpqService::start(
        TreePair::new(build_tree(&p), build_tree(&q)),
        ServiceConfig {
            workers: 1,
            obs: ObsConfig::disabled(),
            ..ServiceConfig::default()
        },
    );
    let classic = service
        .execute(QueryRequest::cross(5, Algorithm::Heap))
        .unwrap();
    let scatter = service
        .execute(QueryRequest::cross(5, Algorithm::Heap).with_scatter(8))
        .unwrap();
    assert_eq!(scatter.status, QueryStatus::Completed);
    for (c, s) in classic.pairs.iter().zip(&scatter.pairs) {
        assert_eq!((c.p.oid, c.q.oid), (s.p.oid, s.q.oid));
    }
    service.shutdown();
}
