//! Observability contract of [`CpqService`]: executed queries carry a
//! complete work profile, slow queries land in the forensics log with that
//! same profile, `/metrics` serves lint-clean Prometheus exposition over
//! HTTP, and the bridged buffer-pool series agree with the pools' own books.

use cpq_core::Algorithm;
use cpq_datasets::uniform;
use cpq_geo::Point2;
use cpq_obs::lint_exposition;
use cpq_rtree::{RTree, RTreeParams};
use cpq_service::{CpqService, ObsConfig, QueryRequest, QueryStatus, ServiceConfig, TreePair};
use cpq_storage::{BufferPool, MemPageFile};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn build_tree(n: usize, seed: u64) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 64);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (p, oid) in uniform(n, seed).indexed() {
        tree.insert(p, oid).unwrap();
    }
    tree
}

fn start_service(obs: ObsConfig) -> CpqService<2, Point2> {
    CpqService::start(
        TreePair::new(build_tree(300, 42), build_tree(300, 1337)),
        ServiceConfig {
            workers: 2,
            obs,
            ..ServiceConfig::default()
        },
    )
}

/// With a zero threshold every query is "slow", so the log must capture a
/// *complete* profile: identity, outcome, engine work, buffer deltas, and
/// timings — the full forensics record the ISSUE asks for.
#[test]
fn slow_query_log_captures_complete_profiles() {
    let service = start_service(ObsConfig {
        enabled: true,
        slow_query_threshold: Some(Duration::ZERO),
        slow_log_capacity: 16,
    });

    let resp = service
        .execute(QueryRequest::cross(10, Algorithm::Heap))
        .unwrap();
    assert_eq!(resp.status, QueryStatus::Completed);

    // The response carries the same profile the log captured.
    let attached = resp.profile.as_deref().expect("profile attached");
    assert_eq!(attached.query_id, resp.id);

    let slow = service.drain_slow_queries();
    assert_eq!(slow.len(), 1, "zero threshold captures every query");
    let p = &slow[0];

    // Identity and outcome.
    assert_eq!(p.query_id, resp.id);
    assert_eq!(p.algorithm, "HEAP");
    assert_eq!(p.kind, "cross");
    assert_eq!(p.status, "completed");
    assert_eq!(p.k, 10);

    // Engine work: both trees were descended from the root, distances were
    // computed, and the deterministic counters match the response stats.
    assert!(p.node_accesses_p.iter().sum::<u64>() > 0, "p-tree accesses");
    assert!(p.node_accesses_q.iter().sum::<u64>() > 0, "q-tree accesses");
    assert!(p.dist_computations > 0);
    assert_eq!(p.dist_computations, resp.stats.dist_computations);
    assert_eq!(p.pairs_pruned, resp.stats.pairs_pruned);
    assert_eq!(p.node_pairs_processed, resp.stats.node_pairs_processed);
    assert_eq!(p.heap_inserts, resp.stats.queue_inserts);
    assert_eq!(p.heap_high_watermark, resp.stats.queue_peak as u64);

    // Buffer deltas: a single-worker-at-a-time query on cold-ish pools must
    // have touched the buffer (hits + misses covers every node access).
    assert!(
        p.buffer_hits + p.buffer_misses >= p.node_accesses(),
        "every node access is a pool read"
    );

    // Timings are filled (exec can round to 0us only on an empty tree).
    assert!(p.scan_ns > 0, "leaf scans were timed");
    assert_eq!(p.latency_us(), p.queue_wait_us + p.exec_us);

    // JSONL: drained once already, so observe a second query then dump.
    service
        .execute(QueryRequest::self_join(5, Algorithm::SortedDistances))
        .unwrap();
    let jsonl = service.drain_slow_queries_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 1);
    assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
    assert!(lines[0].contains("\"algorithm\":\"STD\""));
    assert!(lines[0].contains("\"kind\":\"self\""));
    service.shutdown();
}

#[test]
fn fast_queries_stay_out_of_the_slow_log() {
    let service = start_service(ObsConfig {
        enabled: true,
        slow_query_threshold: Some(Duration::from_secs(3600)),
        slow_log_capacity: 16,
    });
    service
        .execute(QueryRequest::cross(5, Algorithm::Heap))
        .unwrap();
    assert!(service.drain_slow_queries().is_empty());
    assert_eq!(service.drain_slow_queries_jsonl(), "");
    service.shutdown();
}

/// Scrapes `/metrics` over a real TCP connection and holds the body to the
/// same exposition linter CI runs, plus spot-checks the series the
/// dashboards would be built on.
#[test]
fn metrics_endpoint_serves_lint_clean_exposition() {
    let service = start_service(ObsConfig::default());
    for algorithm in [Algorithm::Naive, Algorithm::Heap] {
        service.execute(QueryRequest::cross(5, algorithm)).unwrap();
        service
            .execute(QueryRequest::self_join(3, algorithm))
            .unwrap();
    }

    let server = service.serve_metrics("127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("http header/body");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("version=0.0.4"), "exposition content type");

    if let Err(errors) = lint_exposition(body) {
        panic!("lint errors: {errors:?}");
    }

    // The query matrix: executed combinations counted, the rest present as
    // pre-registered zeros.
    assert!(body.contains("cpq_queries_total{algorithm=\"HEAP\",outcome=\"completed\"} 2"));
    assert!(body.contains("cpq_queries_total{algorithm=\"NAIVE\",outcome=\"completed\"} 2"));
    assert!(body.contains("cpq_queries_total{algorithm=\"SIM\",outcome=\"completed\"} 0"));

    // Latency histogram: 4 executed queries, all buckets cumulative
    // (the linter already enforced shape; check the count landed).
    assert!(body.contains("cpq_query_latency_microseconds_count 4"));

    // Engine work flowed through.
    assert!(body.contains("cpq_node_accesses_total{tree=\"p\"}"));
    assert!(body.contains("cpq_dist_computations_total"));

    // Bridged pool series agree with the pools' own books at scrape time.
    let (bp, _) = service
        .trees()
        .expect("static service")
        .p
        .pool()
        .stats_snapshot();
    assert!(body.contains(&format!(
        "cpq_buffer_reads_total{{tree=\"p\",result=\"hit\"}} {}",
        bp.hits
    )));
    assert!(body.contains(&format!(
        "cpq_buffer_reads_total{{tree=\"p\",result=\"miss\"}} {}",
        bp.misses
    )));

    // /healthz answers on the same listener.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"));
    assert!(raw.ends_with("ok\n"));

    server.stop();
    service.shutdown();
}

/// Sheds are counted even though shed requests never execute.
#[test]
fn sheds_are_counted() {
    let service = CpqService::start(
        TreePair::new(build_tree(200, 7), build_tree(200, 8)),
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            obs: ObsConfig::default(),
            ..ServiceConfig::default()
        },
    );
    // Flood: with one worker and a one-slot queue, some of these must shed.
    let tickets: Vec<_> = (0..32)
        .filter_map(|_| {
            service
                .submit(QueryRequest::cross(50, Algorithm::Exhaustive))
                .ok()
        })
        .collect();
    let shed = 32 - tickets.len() as u64;
    assert!(shed > 0, "flood must shed");
    for t in tickets {
        t.wait();
    }
    let body = service.render_metrics();
    assert!(body.contains(&format!("cpq_sheds_total {shed}")));
    service.shutdown();
}

/// `ObsConfig::disabled()` restores the pre-observability service: no
/// profiles, no slow log, empty metrics body.
#[test]
fn disabled_observability_is_inert() {
    let service = start_service(ObsConfig::disabled());
    let resp = service
        .execute(QueryRequest::cross(5, Algorithm::Heap))
        .unwrap();
    assert_eq!(resp.status, QueryStatus::Completed);
    assert!(resp.profile.is_none());
    assert!(service.obs().is_none());
    assert_eq!(service.render_metrics(), "");
    assert!(service.drain_slow_queries().is_empty());
    service.shutdown();
}

/// Trees on scheduled (real-I/O) pools light up the bridged `cpq_io_*`
/// series: demand reads equal the pools' misses, and the exposition stays
/// lint-clean. Unscheduled services keep the families pre-registered at
/// zero (checked implicitly by the lint test above).
#[test]
fn scheduled_pools_bridge_io_series() {
    use cpq_service::SchedConfig;

    let build_sched = |n: usize, seed: u64| {
        let pool = BufferPool::with_lru_scheduled(
            Box::new(MemPageFile::new(1024)),
            64,
            SchedConfig::default(),
        );
        let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
        for (p, oid) in uniform(n, seed).indexed() {
            tree.insert(p, oid).unwrap();
        }
        tree
    };
    let service = CpqService::start(
        TreePair::new(build_sched(300, 42), build_sched(300, 1337)),
        ServiceConfig {
            workers: 2,
            obs: ObsConfig::default(),
            ..ServiceConfig::default()
        },
    );
    let resp = service
        .execute(QueryRequest::cross(10, Algorithm::Heap))
        .unwrap();
    assert_eq!(resp.status, QueryStatus::Completed);

    let body = service.render_metrics();
    lint_exposition(&body).expect("exposition must stay lint-clean");
    let series = |name: &str, tree: &str| -> f64 {
        let needle = format!("{name}{{tree=\"{tree}\"}} ");
        body.lines()
            .find(|l| l.starts_with(&needle))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing series {needle}"))
    };
    // The P tree's scheduler served this query's misses: its bridged
    // demand counter must agree exactly with the pool's own books.
    let (bp, io_p) = service
        .trees()
        .expect("static service")
        .p
        .pool()
        .stats_snapshot();
    assert_eq!(io_p.reads, bp.misses, "pool ledger balances");
    assert_eq!(
        series("cpq_io_demand_reads_total", "p") as u64,
        io_p.reads,
        "bridged demand reads mirror the pool"
    );
    assert!(series("cpq_io_physical_pages_total", "p") > 0.0);
    assert!(series("cpq_io_physical_batches_total", "p") > 0.0);
    service.shutdown();
}
