//! Model-checked harness for the admission queue (`AdmissionQueue`).
//!
//! Compiled only under `RUSTFLAGS="--cfg cpq_model"`. The positive models
//! run the *real* queue type — the same `Mutex<VecDeque>` + `Condvar`
//! protocol the service uses — under exhaustive bounded DFS, proving FIFO
//! delivery, exactly-once consumption, and (because every blocking `pop`
//! must eventually be woken for the model to terminate) the absence of lost
//! wakeups within the bound. The negative model deliberately removes the
//! wakeup and pins the resulting deadlock schedule as a permanent
//! regression test.
#![cfg(cpq_model)]

use cpq_check::sync::{Arc, Condvar, Mutex};
use cpq_check::thread;
use cpq_check::{model, replay, try_model_dfs, try_replay, DfsOptions};
use cpq_service::AdmissionQueue;
use std::collections::VecDeque;

#[test]
fn dfs_proves_fifo_and_wakeup_single_producer() {
    let report = model(|| {
        let q = Arc::new(AdmissionQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.try_push(1u64).expect("capacity 2 admits the first item");
                q.try_push(2u64).expect("capacity 2 admits the second item");
            })
        };
        // Two blocking pops: under any schedule where the consumer runs
        // first it must park and be woken by the pushes — a lost wakeup
        // would deadlock the model, so completing the search proves the
        // notify protocol.
        let a = q.pop().expect("queue is open");
        let b = q.pop().expect("queue is open");
        assert_eq!((a, b), (1, 2), "FIFO order");
        producer.join().expect("producer");
        q.close();
        assert_eq!(q.pop(), None, "closed and drained");
    });
    assert!(report.complete, "the DFS must exhaust the interleavings");
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

#[test]
fn dfs_proves_exactly_once_two_producers() {
    let report = model(|| {
        let q = Arc::new(AdmissionQueue::new(2));
        let producers: Vec<_> = [10u64, 20u64]
            .into_iter()
            .map(|v| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.try_push(v).expect("capacity 2 admits both"))
            })
            .collect();
        let mut got = vec![q.pop().expect("open"), q.pop().expect("open")];
        for p in producers {
            p.join().expect("producer");
        }
        got.sort_unstable();
        assert_eq!(got, vec![10, 20], "each admitted item popped exactly once");
    });
    assert!(report.complete);
}

#[test]
fn dfs_shed_on_full_never_blocks() {
    let report = model(|| {
        let q = Arc::new(AdmissionQueue::new(1));
        let shedder = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                // Whatever the interleaving, a try_push either admits or
                // returns the item — it must never block or panic.
                match q.try_push(7u64) {
                    Ok(()) => true,
                    Err(v) => {
                        assert_eq!(v, 7, "shed returns the rejected item");
                        false
                    }
                }
            })
        };
        let admitted_first = q.try_push(1u64).is_ok();
        let admitted_other = shedder.join().expect("shedder");
        q.close();
        let drained = std::iter::from_fn(|| q.pop()).count();
        assert_eq!(
            drained,
            usize::from(admitted_first) + usize::from(admitted_other),
            "exactly the admitted items drain"
        );
    });
    assert!(report.complete);
}

/// The deliberately-broken queue: `push` takes the lock and enqueues but
/// never notifies — the exact bug the real queue's `notify_one` after
/// `push_back` exists to prevent.
struct BrokenQueue {
    state: Mutex<VecDeque<u64>>,
    not_empty: Condvar,
}

impl BrokenQueue {
    fn new() -> Self {
        BrokenQueue {
            state: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
        }
    }

    fn push(&self, v: u64) {
        self.state.lock().expect("model lock").push_back(v);
        // Missing: self.not_empty.notify_one();
    }

    fn pop(&self) -> u64 {
        let mut g = self.state.lock().expect("model lock");
        loop {
            if let Some(v) = g.pop_front() {
                return v;
            }
            g = self.not_empty.wait(g).expect("model wait");
        }
    }
}

fn broken_queue_model() {
    let q = Arc::new(BrokenQueue::new());
    let producer = {
        let q = Arc::clone(&q);
        thread::spawn(move || q.push(42))
    };
    assert_eq!(q.pop(), 42);
    producer.join().expect("producer");
}

/// The deadlocking schedule of [`broken_queue_model`], pinned by
/// [`dropped_wakeup_is_found_and_replayable`]: the consumer checks the
/// empty queue and parks before the producer's (notification-free) push.
const PINNED_LOST_WAKEUP: &[usize] = &[0, 0];

#[test]
fn dropped_wakeup_is_found_and_replayable() {
    let failure = try_model_dfs(DfsOptions::default(), broken_queue_model)
        .expect_err("a push without notify must strand a parked popper");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {failure}"
    );
    // The reported schedule replays to the same deadlock...
    let replayed = try_replay(&failure.schedule, broken_queue_model)
        .expect_err("the reported schedule must reproduce the deadlock");
    assert!(replayed.message.contains("deadlock"));
    // ...and matches the schedule pinned in the regression test below, so
    // that test keeps guarding the same interleaving.
    assert_eq!(
        failure.schedule, PINNED_LOST_WAKEUP,
        "the minimal deadlock schedule moved; update PINNED_LOST_WAKEUP"
    );
}

#[test]
#[should_panic(expected = "deadlock")]
fn pinned_lost_wakeup_schedule_still_deadlocks() {
    replay(PINNED_LOST_WAKEUP, broken_queue_model);
}
