//! Golden decision table for the query planner, plus end-to-end planned
//! execution through [`CpqService`].
//!
//! The planner is pure and deterministic, so its whole behavior can be
//! pinned as a table: each row is a query shape (cardinalities, window,
//! colors, K, kind, service capabilities) and the *exact* [`QueryPlan`]
//! it must produce. A planner change that shifts any decision must edit
//! this table — that is the point: rebalancing the cost thresholds is a
//! reviewed event, not a silent drift.
//!
//! The service-level tests then close the loop: a `planned_*` request
//! actually executes with the planner's knobs (echoed in the response and
//! profile) and still returns oracle-identical pairs.

use cpq_core::brute::{k_closest_pairs_brute_constrained, self_k_closest_pairs_brute_constrained};
use cpq_core::Algorithm;
use cpq_datasets::uniform;
use cpq_geo::{Point2, Rect, Rect2};
use cpq_rtree::{RTree, RTreeParams};
use cpq_service::{
    plan, Constraint, CpqService, ObsConfig, PlannerInputs, QueryKind, QueryRequest, QueryStatus,
    ServiceConfig, TreePair,
};
use cpq_storage::{BufferPool, MemPageFile};

fn inputs(n_p: u64, n_q: u64, side: f64) -> PlannerInputs<'static, 2> {
    let ws = Rect::from_corners([0.0, 0.0], [side, side]);
    PlannerInputs {
        n_p,
        n_q,
        workspace_p: Some(ws),
        workspace_q: Some(ws),
        stats_p: None,
        stats_q: None,
        max_parallelism: 1,
        shards: 0,
    }
}

/// The golden decision table. Columns: shape → (algorithm, parallelism,
/// scatter, reason).
#[test]
fn decision_table() {
    use Algorithm::{Exhaustive, Heap, SortedDistances};
    let quarter = Rect::from_corners([0.0, 0.0], [500.0, 500.0]);
    let sliver = Rect::from_corners([0.0, 0.0], [10.0, 10.0]);
    let off_data = Rect::from_corners([5_000.0, 5_000.0], [6_000.0, 6_000.0]);

    let mut wide = inputs(100_000, 100_000, 1_000.0);
    wide.max_parallelism = 8;
    let mut wide_sharded = wide;
    wide_sharded.shards = 8;
    let mut mid = inputs(10_000, 10_000, 1_000.0);
    mid.max_parallelism = 8;

    // (label, inputs, k, kind, constraint, expected)
    type Expected = (Algorithm, usize, usize, &'static str);
    type Row = (
        &'static str,
        PlannerInputs<'static, 2>,
        usize,
        QueryKind,
        Constraint<2>,
        Expected,
    );
    let table: Vec<Row> = vec![
        (
            "empty P side",
            inputs(0, 1_000, 1_000.0),
            10,
            QueryKind::Cross,
            Constraint::none(),
            (Exhaustive, 0, 0, "empty-side"),
        ),
        (
            "k = 0",
            inputs(1_000, 1_000, 1_000.0),
            0,
            QueryKind::Cross,
            Constraint::none(),
            (Exhaustive, 0, 0, "empty-side"),
        ),
        (
            "window misses the data",
            inputs(100_000, 100_000, 1_000.0),
            10,
            QueryKind::Cross,
            Constraint::window(off_data),
            (Exhaustive, 0, 0, "window-off-data"),
        ),
        (
            "tiny unconstrained",
            inputs(400, 400, 1_000.0),
            10,
            QueryKind::Cross,
            Constraint::none(),
            (Exhaustive, 0, 0, "tiny"),
        ),
        (
            "sliver window shrinks big data to tiny",
            inputs(100_000, 100_000, 1_000.0),
            10,
            QueryKind::Cross,
            Constraint::window(sliver),
            (Exhaustive, 0, 0, "tiny"),
        ),
        (
            "1-CP unconstrained",
            inputs(10_000, 10_000, 1_000.0),
            1,
            QueryKind::Cross,
            Constraint::none(),
            (SortedDistances, 0, 0, "1cp"),
        ),
        (
            "1-CP windowed still plans HEAP",
            inputs(10_000, 10_000, 1_000.0),
            1,
            QueryKind::Cross,
            Constraint::window(quarter),
            (Heap, 0, 0, "constrained"),
        ),
        (
            "colored-only constraint",
            inputs(10_000, 10_000, 1_000.0),
            10,
            QueryKind::Cross,
            Constraint::colored(),
            (Heap, 0, 0, "constrained"),
        ),
        (
            "default K-CPQ",
            inputs(10_000, 10_000, 1_000.0),
            10,
            QueryKind::Cross,
            Constraint::none(),
            (Heap, 0, 0, "default"),
        ),
        (
            "mid work + ceiling → parallel",
            mid,
            10,
            QueryKind::Cross,
            Constraint::none(),
            (Heap, 4, 0, "default"),
        ),
        (
            "quarter window keeps wide data parallel",
            wide,
            10,
            QueryKind::Cross,
            Constraint::window(quarter),
            (Heap, 4, 0, "constrained"),
        ),
        (
            "huge work + shards → scatter",
            wide_sharded,
            10,
            QueryKind::Cross,
            Constraint::none(),
            (Heap, 0, 4, "default"),
        ),
        (
            "self-join plans off the P side",
            {
                let mut i = inputs(10_000, 0, 1_000.0);
                i.workspace_q = None;
                i
            },
            1,
            QueryKind::SelfJoin,
            Constraint::none(),
            (SortedDistances, 0, 0, "1cp"),
        ),
    ];

    for (label, i, k, kind, con, (alg, par, scatter, reason)) in table {
        let p = plan(&i, k, kind, &con);
        assert_eq!(p.algorithm, alg, "{label}: algorithm");
        assert_eq!(p.parallelism, par, "{label}: parallelism");
        assert_eq!(p.scatter, scatter, "{label}: scatter");
        assert_eq!(p.reason, reason, "{label}: reason");
    }
}

fn build_tree(points: &[(Point2, u64)]) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 64);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for &(p, oid) in points {
        tree.insert(p, oid).unwrap();
    }
    tree
}

/// A planned, windowed query through the service: the planner's knobs are
/// echoed in the response, the profile records the decision, and the
/// pairs are bit-identical to the constrained oracle.
#[test]
fn planned_windowed_query_end_to_end() {
    let p = uniform(2_000, 71).indexed();
    let q = uniform(2_000, 72).indexed();
    let service: CpqService<2> = CpqService::start(
        TreePair::new(build_tree(&p), build_tree(&q)),
        ServiceConfig {
            workers: 2,
            obs: ObsConfig::default(),
            ..ServiceConfig::default()
        },
    );

    let window = Rect2::from_corners([200.0, 200.0], [700.0, 750.0]);
    let con = Constraint::window(window);
    let resp = service
        .execute(QueryRequest::planned_cross(8).with_constraint(con))
        .unwrap();
    assert_eq!(resp.status, QueryStatus::Completed);
    // The ~27% window keeps the effective work product (≈550² > 250k)
    // above the tiny bar, so the active constraint lands on the
    // "constrained" rule → HEAP, echoed back on the request.
    assert_eq!(resp.request.algorithm, Algorithm::Heap);
    let profile = resp.profile.as_ref().expect("obs on → profile attached");
    assert!(profile.planned);
    assert_eq!(profile.plan_reason, "constrained");

    let oracle = k_closest_pairs_brute_constrained(&p, &q, 8, &con);
    assert_eq!(resp.pairs.len(), oracle.len());
    for (g, o) in resp.pairs.iter().zip(&oracle) {
        assert_eq!((g.p.oid, g.q.oid), (o.p.oid, o.q.oid));
        assert_eq!(g.dist2.get().to_bits(), o.dist2.get().to_bits());
    }

    // A planned self-join with the same (symmetric) window.
    let resp = service
        .execute(QueryRequest::planned_self(5).with_constraint(con))
        .unwrap();
    assert_eq!(resp.status, QueryStatus::Completed);
    let oracle = self_k_closest_pairs_brute_constrained(&p, 5, &con);
    assert_eq!(resp.pairs.len(), oracle.len());
    for (g, o) in resp.pairs.iter().zip(&oracle) {
        assert_eq!((g.p.oid, g.q.oid), (o.p.oid, o.q.oid));
    }
    service.shutdown();
}

/// Hand-knobbed (unplanned) constrained requests work too, and leave the
/// plan fields untouched.
#[test]
fn unplanned_constrained_request_keeps_knobs() {
    let p = uniform(300, 73).indexed();
    let q = uniform(300, 74).indexed();
    let service: CpqService<2> = CpqService::start(
        TreePair::new(build_tree(&p), build_tree(&q)),
        ServiceConfig {
            workers: 1,
            obs: ObsConfig::default(),
            ..ServiceConfig::default()
        },
    );
    let con = Constraint::colored();
    let resp = service
        .execute(QueryRequest::cross(4, Algorithm::Simple).with_constraint(con))
        .unwrap();
    assert_eq!(resp.status, QueryStatus::Completed);
    assert_eq!(resp.request.algorithm, Algorithm::Simple, "knobs untouched");
    let profile = resp.profile.as_ref().unwrap();
    assert!(!profile.planned);
    assert_eq!(profile.plan_reason, "");
    // Single-colored (color 0 everywhere) data: a colored query is empty.
    let oracle = k_closest_pairs_brute_constrained(&p, &q, 4, &con);
    assert_eq!(resp.pairs.len(), oracle.len());
    service.shutdown();
}

/// An asymmetric per-side window on a self-join is a contract violation:
/// the service fails the query cleanly instead of panicking a worker.
#[test]
fn asymmetric_self_join_constraint_fails_cleanly() {
    let p = uniform(100, 75).indexed();
    let service: CpqService<2> = CpqService::start(
        TreePair::new(build_tree(&p), build_tree(&p)),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let lopsided = Constraint::windows(Some(Rect2::from_corners([0.0, 0.0], [500.0, 500.0])), None);
    let resp = service
        .execute(QueryRequest::self_join(3, Algorithm::Heap).with_constraint(lopsided))
        .unwrap();
    match &resp.status {
        QueryStatus::Failed(msg) => assert!(
            msg.contains("symmetric"),
            "error names the violated contract: {msg}"
        ),
        other => panic!("expected Failed, got {other:?}"),
    }
    // The worker survives: the next query still completes.
    let resp = service
        .execute(QueryRequest::self_join(3, Algorithm::Heap))
        .unwrap();
    assert_eq!(resp.status, QueryStatus::Completed);
    service.shutdown();
}
