//! # cpq-service — a concurrent closest-pair query-serving subsystem
//!
//! The engine crates answer *one* query at a time; this crate turns them
//! into a long-lived, embeddable service that answers a *stream* of
//! queries on a fixed pool of worker threads over shared read-only
//! R*-trees and buffer pools:
//!
//! ```text
//!  clients                 CpqService
//!  ───────      ┌────────────────────────────────┐
//!  submit ──────►  AdmissionQueue (bounded MPMC) │
//!    │ full     │     │        │        │        │
//!    ▼          │  worker-0 worker-1 … worker-N  │
//!  Rejected     │     └───┬────┴────┬───┘        │
//!               │   RTree P,Q  (read-only,       │
//!               │   shared BufferPools)          │
//!               └─────────┬──────────────────────┘
//!                         ▼
//!                  QueryTicket.wait() → QueryResponse
//! ```
//!
//! Per-request `K`, algorithm, join kind, and deadline; shed-on-full
//! admission control; cooperative deadline cancellation at node-visit
//! granularity with partial results; and latency/queue-wait/throughput
//! statistics. Everything is `std`-only.
//!
//! ## Quick start
//!
//! ```
//! use cpq_service::{CpqService, QueryRequest, QueryStatus, ServiceConfig, TreePair};
//! use cpq_core::Algorithm;
//! use cpq_rtree::{RTree, RTreeParams};
//! use cpq_storage::{BufferPool, MemPageFile};
//! use cpq_geo::Point;
//!
//! let build = || {
//!     let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 32);
//!     RTree::<2>::new(pool, RTreeParams::paper()).unwrap()
//! };
//! let (mut p, mut q) = (build(), build());
//! for i in 0..100u64 {
//!     let x = i as f64;
//!     p.insert(Point([x, 0.0]), i).unwrap();
//!     q.insert(Point([x, 3.0]), i).unwrap();
//! }
//!
//! let service = CpqService::start(
//!     TreePair::new(p, q),
//!     ServiceConfig { workers: 2, ..ServiceConfig::default() },
//! );
//! let resp = service
//!     .execute(QueryRequest::cross(5, Algorithm::Heap))
//!     .unwrap();
//! assert_eq!(resp.status, QueryStatus::Completed);
//! assert_eq!(resp.pairs.len(), 5);
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod http;
mod obs;
mod planner;
mod queue;
mod request;
mod service;
mod stats;

pub use http::MetricsServer;
pub use obs::{ObsConfig, ServiceObs};
pub use planner::{plan, PlannerInputs, QueryPlan};
pub use queue::AdmissionQueue;
pub use request::{QueryKind, QueryRequest, QueryResponse, QueryStatus, Rejected};
pub use service::{CpqService, QueryTicket, ServiceConfig, TreePair};
pub use stats::{Percentiles, ServiceStats, StatsSummary};

// Re-exported so embedders can drive cancellation themselves, and build
// the windowed/colored constraints requests carry, without depending on
// cpq-core directly.
pub use cpq_core::{CancelToken, Constraint};
// Re-exported so embedders can consume slow-query profiles without
// depending on cpq-obs directly.
pub use cpq_obs::QueryProfile;
// Re-exported so embedders can build trees over scheduled (real-disk)
// buffer pools — and read the scheduler's counters back — without
// depending on cpq-storage directly. The `cpq_io_*` series in
// `/metrics` bridge these stats per tree at scrape time.
pub use cpq_storage::{SchedConfig, SchedStats};
// Re-exported so embedders can build the sharded replicas a
// `CpqService::start_sharded` service routes scatter requests to without
// depending on cpq-shard directly.
pub use cpq_shard::{ShardConfig, ShardReport, ShardedPair, ShardedTree};
// Re-exported so embedders can build, mutate, and recover the live set a
// `CpqService::start_live` service serves — and drive continuous K-CPQ
// watches — without depending on cpq-live directly.
pub use cpq_live::{
    ApplyReport, LiveConfig, LiveError, LiveResult, LiveSet, LiveStats, LiveTree, Side, UpdateOp,
};

// Compile-time thread-safety contract of the subsystem. Service handles
// are shared across client threads and worker threads; if a refactor ever
// introduces an un-Sync field (an `Rc`, a bare `Cell`, …) these stop
// compiling rather than letting the API silently lose its guarantee.
#[cfg(test)]
mod thread_safety {
    use super::*;
    use cpq_geo::Point;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_types_are_send_sync() {
        assert_send_sync::<CpqService<2, Point<2>>>();
        assert_send_sync::<TreePair<2, Point<2>>>();
        assert_send_sync::<AdmissionQueue<QueryRequest>>();
        assert_send_sync::<QueryRequest>();
        assert_send_sync::<QueryResponse<2, Point<2>>>();
        assert_send_sync::<ServiceStats>();
        assert_send_sync::<StatsSummary>();
        assert_send_sync::<CancelToken>();
        // Tickets move to whichever thread awaits them (Send), but a
        // single ticket is owned by one waiter, so Sync is not required
        // (mpsc::Receiver is !Sync by design).
        fn assert_send<T: Send>() {}
        assert_send::<QueryTicket<2, Point<2>>>();
    }
}
