//! The query planner: turns a query's *shape* (K, join kind, windows,
//! colors) plus cheap data statistics into concrete execution knobs —
//! algorithm, intra-query parallelism, and scatter fan-out — replacing
//! hand-picked per-request settings.
//!
//! The planner is **deterministic**: the same [`PlannerInputs`] and query
//! shape always yield the same [`QueryPlan`] (the golden tests pin the
//! whole decision table). It never affects *answers* — every algorithm
//! returns the same bit-identical pairs — only cost, so a misprediction
//! is a latency bug, not a correctness bug.
//!
//! ## Decision procedure
//!
//! 1. **Effective workload.** Each side's cardinality is scaled by the
//!    fraction of its workspace surviving the side's window (uniform-
//!    density assumption, the same one the cost model makes). A window
//!    that misses the workspace zeroes the side; the product
//!    `eff_p × eff_q` is the planner's notion of work.
//! 2. **Algorithm.**
//!    * no work (empty side, `k = 0`, or a window off the data) →
//!      [`Algorithm::Exhaustive`] — any algorithm returns empty; EXH has
//!      the cheapest setup;
//!    * tiny work (`< `[`SMALL_WORK`]) → [`Algorithm::Exhaustive`] —
//!      recursion over a handful of node pairs beats paying HEAP's
//!      priority-queue overhead;
//!    * an active constraint → [`Algorithm::Heap`] — best-first order
//!      recovers fastest when clipping makes MINMINDIST lower bounds
//!      jump around, and the MINMAX/MAXMAX bounds the recursive
//!      algorithms lean on are disabled under constraints anyway;
//!    * `k = 1` → [`Algorithm::SortedDistances`] — the paper's best
//!      recursive variant, which the 1-CP MINMAXDIST special case helps
//!      most;
//!    * otherwise → [`Algorithm::Heap`].
//! 3. **Cost estimate.** When per-level tree statistics are available,
//!    the analytic model ([`cpq_core::costmodel::estimate_1cp_cost`])
//!    predicts disk accesses over the *clipped* workspaces and effective
//!    cardinalities; the estimate is recorded in the plan (and profile)
//!    and arms the parallelism trigger below.
//! 4. **Fan-out.** Scatter wins when replicas exist and the work is
//!    huge (`≥ `[`SCATTER_WORK`]): inter-shard MINMINDIST pruning
//!    removes whole subtree pairs that intra-query parallelism would
//!    still traverse. Otherwise intra-query parallelism kicks in for
//!    large work (`≥ `[`PARALLEL_WORK`]) or a large access estimate
//!    (`≥ `[`PARALLEL_ACCESSES`]), capped at [`MAX_FANOUT`] — speculative
//!    workers beyond a handful mostly duplicate the driver's frontier.

use crate::request::QueryKind;
use cpq_core::costmodel::estimate_1cp_cost;
use cpq_core::{Algorithm, Constraint};
use cpq_geo::Rect;
use cpq_rtree::LevelStats;

/// Below this effective pair-work product the planner picks the plain
/// recursive EXH algorithm: the whole query fits in a few node pairs.
pub const SMALL_WORK: f64 = 250_000.0;

/// At or above this effective pair-work product (or at
/// [`PARALLEL_ACCESSES`] estimated accesses) the planner requests
/// intra-query parallelism.
pub const PARALLEL_WORK: f64 = 25_000_000.0;

/// Cost-model disk-access estimate that arms intra-query parallelism even
/// when the raw cardinality product alone would not.
pub const PARALLEL_ACCESSES: f64 = 4_096.0;

/// At or above this effective pair-work product — four times
/// [`PARALLEL_WORK`] — the planner prefers scatter-gather over sharded
/// replicas, when the service holds them.
pub const SCATTER_WORK: f64 = 100_000_000.0;

/// Ceiling on planner-chosen parallelism and scatter fan-out (before the
/// service's own `max_parallelism` / `max_shards` clamps).
pub const MAX_FANOUT: usize = 4;

/// Everything the planner knows about the data and the service, gathered
/// once per planned query (all O(1) reads plus one root page per tree;
/// the per-level statistics are captured once at service start).
#[derive(Debug, Clone, Copy)]
pub struct PlannerInputs<'a, const D: usize> {
    /// Cardinality of the `P` tree.
    pub n_p: u64,
    /// Cardinality of the `Q` tree (equal to `n_p` for self-joins).
    pub n_q: u64,
    /// Root MBR of the `P` tree; `None` when empty or unknown.
    pub workspace_p: Option<Rect<D>>,
    /// Root MBR of the `Q` tree; `None` when empty or unknown.
    pub workspace_q: Option<Rect<D>>,
    /// Per-level statistics of the `P` tree for the cost model, when the
    /// service captured them (static sources; live trees skip the walk).
    pub stats_p: Option<&'a [LevelStats<D>]>,
    /// Per-level statistics of the `Q` tree.
    pub stats_q: Option<&'a [LevelStats<D>]>,
    /// The service's intra-query parallelism ceiling.
    pub max_parallelism: usize,
    /// Scatter fan-out available (`0` when the service holds no sharded
    /// replicas).
    pub shards: usize,
}

/// The planner's decision for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPlan {
    /// Chosen algorithm.
    pub algorithm: Algorithm,
    /// Chosen intra-query parallelism (total threads; `0` = sequential).
    pub parallelism: usize,
    /// Chosen scatter fan-out (`0` = classic single-tree path).
    pub scatter: usize,
    /// Cost-model disk-access estimate, when statistics allowed one.
    pub est_accesses: Option<f64>,
    /// Short label naming the rule that fired (recorded in the profile).
    pub reason: &'static str,
}

/// Fraction of a workspace surviving a window, under uniform density.
/// `None` window → 1; a window missing the workspace → 0; a zero-area
/// workspace (all points identical or collinear) degenerates to a
/// contains/misses test.
fn selectivity<const D: usize>(workspace: &Rect<D>, window: Option<&Rect<D>>) -> f64 {
    let Some(w) = window else { return 1.0 };
    let Some(clipped) = workspace.intersection(w) else {
        return 0.0;
    };
    let area = workspace.area();
    if area <= 0.0 {
        return 1.0; // degenerate workspace that the window touches
    }
    clipped.area() / area
}

/// Plans one query. Deterministic; see the module docs for the rules.
pub fn plan<const D: usize>(
    inputs: &PlannerInputs<'_, D>,
    k: usize,
    kind: QueryKind,
    constraint: &Constraint<D>,
) -> QueryPlan {
    // Self-joins read one tree on both sides.
    let (n_q, workspace_q, stats_q) = match kind {
        QueryKind::Cross => (inputs.n_q, inputs.workspace_q, inputs.stats_q),
        QueryKind::SelfJoin => (inputs.n_p, inputs.workspace_p, inputs.stats_p),
    };

    let sequential = |algorithm, est_accesses, reason| QueryPlan {
        algorithm,
        parallelism: 0,
        scatter: 0,
        est_accesses,
        reason,
    };

    let (Some(ws_p), Some(ws_q)) = (inputs.workspace_p, workspace_q) else {
        return sequential(Algorithm::Exhaustive, None, "empty-side");
    };
    if k == 0 || inputs.n_p == 0 || n_q == 0 {
        return sequential(Algorithm::Exhaustive, None, "empty-side");
    }

    let eff_p = inputs.n_p as f64 * selectivity(&ws_p, constraint.window_p.as_ref());
    let eff_q = n_q as f64 * selectivity(&ws_q, constraint.window_q.as_ref());
    let work = eff_p * eff_q;
    if work == 0.0 {
        return sequential(Algorithm::Exhaustive, None, "window-off-data");
    }
    if work < SMALL_WORK {
        return sequential(Algorithm::Exhaustive, None, "tiny");
    }

    let (algorithm, reason) = if constraint.is_active() {
        (Algorithm::Heap, "constrained")
    } else if k == 1 {
        (Algorithm::SortedDistances, "1cp")
    } else {
        (Algorithm::Heap, "default")
    };

    // Cost model over the *clipped* workspaces and effective cardinalities
    // — the same uniform-density assumption as the selectivity step. The
    // clip can only be non-empty here (work > 0).
    let est_accesses = match (inputs.stats_p, stats_q) {
        (Some(sp), Some(sq)) => {
            let clip = |ws: &Rect<D>, win: Option<&Rect<D>>| match win {
                Some(w) => ws.intersection(w).unwrap_or(*ws),
                None => *ws,
            };
            estimate_1cp_cost(
                sp,
                &clip(&ws_p, constraint.window_p.as_ref()),
                eff_p.round() as u64,
                sq,
                &clip(&ws_q, constraint.window_q.as_ref()),
                eff_q.round() as u64,
            )
            .map(|c| c.disk_accesses)
        }
        _ => None,
    };

    // Fan-out: scatter first (strictly bigger work bar), then intra-query
    // parallelism; scatter owns its own worker pool, so the two never mix.
    if inputs.shards >= 2 && work >= SCATTER_WORK {
        return QueryPlan {
            algorithm,
            parallelism: 0,
            scatter: inputs.shards.min(MAX_FANOUT),
            est_accesses,
            reason,
        };
    }
    let wants_parallel =
        work >= PARALLEL_WORK || est_accesses.is_some_and(|a| a >= PARALLEL_ACCESSES);
    let parallelism = if wants_parallel && inputs.max_parallelism >= 2 {
        inputs.max_parallelism.min(MAX_FANOUT)
    } else {
        0
    };
    QueryPlan {
        algorithm,
        parallelism,
        scatter: 0,
        est_accesses,
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: u64, side: f64) -> PlannerInputs<'static, 2> {
        let ws = Rect::from_corners([0.0, 0.0], [side, side]);
        PlannerInputs {
            n_p: n,
            n_q: n,
            workspace_p: Some(ws),
            workspace_q: Some(ws),
            stats_p: None,
            stats_q: None,
            max_parallelism: 1,
            shards: 0,
        }
    }

    #[test]
    fn tiny_work_runs_exhaustive() {
        let p = plan(&inputs(100, 10.0), 5, QueryKind::Cross, &Constraint::none());
        assert_eq!(p.algorithm, Algorithm::Exhaustive);
        assert_eq!((p.parallelism, p.scatter), (0, 0));
        assert_eq!(p.reason, "tiny");
    }

    #[test]
    fn window_selectivity_downgrades_algorithm() {
        // 10_000² raw work, but a 1%-area window on each side cuts the
        // effective product to 10_000 — back under the EXH bar even
        // though the constraint is active.
        let window = Rect::from_corners([0.0, 0.0], [1.0, 1.0]);
        let con = Constraint::window(window);
        let p = plan(&inputs(10_000, 10.0), 5, QueryKind::Cross, &con);
        assert_eq!(p.algorithm, Algorithm::Exhaustive);
        assert_eq!(p.reason, "tiny");
    }

    #[test]
    fn active_constraint_prefers_heap() {
        let window = Rect::from_corners([0.0, 0.0], [10.0, 10.0]);
        let con = Constraint::window(window);
        let p = plan(&inputs(10_000, 10.0), 1, QueryKind::Cross, &con);
        assert_eq!(p.algorithm, Algorithm::Heap);
        assert_eq!(p.reason, "constrained");
    }

    #[test]
    fn one_cp_prefers_sorted_distances() {
        let p = plan(
            &inputs(10_000, 10.0),
            1,
            QueryKind::Cross,
            &Constraint::none(),
        );
        assert_eq!(p.algorithm, Algorithm::SortedDistances);
        assert_eq!(p.reason, "1cp");
    }

    #[test]
    fn window_off_the_data_is_planned_empty() {
        let window = Rect::from_corners([100.0, 100.0], [200.0, 200.0]);
        let con = Constraint::window(window);
        let p = plan(&inputs(10_000, 10.0), 5, QueryKind::Cross, &con);
        assert_eq!(p.algorithm, Algorithm::Exhaustive);
        assert_eq!(p.reason, "window-off-data");
    }

    #[test]
    fn big_work_fans_out_when_allowed() {
        let mut i = inputs(10_000, 10.0);
        let p = plan(&i, 10, QueryKind::Cross, &Constraint::none());
        assert_eq!(p.parallelism, 0, "ceiling of 1 keeps it sequential");
        i.max_parallelism = 8;
        let p = plan(&i, 10, QueryKind::Cross, &Constraint::none());
        assert_eq!(p.parallelism, MAX_FANOUT);
        i.shards = 8;
        let p = plan(&i, 10, QueryKind::Cross, &Constraint::none());
        assert_eq!((p.parallelism, p.scatter), (0, MAX_FANOUT));
    }

    #[test]
    fn self_join_uses_p_side_only() {
        let mut i = inputs(10_000, 10.0);
        i.n_q = 0;
        i.workspace_q = None;
        let p = plan(&i, 10, QueryKind::SelfJoin, &Constraint::none());
        assert_eq!(p.algorithm, Algorithm::Heap);
        assert_eq!(p.reason, "default");
    }
}
