//! The request/response vocabulary of the query service.

use cpq_core::{Algorithm, Constraint, CpqStats, PairResult};
use cpq_geo::{Point, SpatialObject};
use cpq_obs::QueryProfile;
use std::time::Duration;

/// Which join shape a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// K closest pairs between the service's `P` and `Q` trees.
    Cross,
    /// K closest pairs **within** the `P` tree (Self-CPQ; distinct objects,
    /// each unordered pair once).
    SelfJoin,
}

impl QueryKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            QueryKind::Cross => "cross",
            QueryKind::SelfJoin => "self",
        }
    }
}

/// One closest-pair query, as admitted by
/// [`CpqService::submit`](crate::CpqService::submit).
///
/// `K`, the algorithm, the deadline, and the result-pair constraint are
/// all per-request — the serving shape of the range closest-pair
/// literature, where one preprocessed structure answers a stream of
/// differently-parameterized queries. `D` is the service's dimensionality
/// (it defaults to 2, so unconstrained callers never spell it).
#[derive(Debug, Clone, Copy)]
pub struct QueryRequest<const D: usize = 2> {
    /// Number of closest pairs wanted (`1` enables the 1-CP special case).
    pub k: usize,
    /// Which of the paper's algorithms executes the query.
    pub algorithm: Algorithm,
    /// Cross-tree K-CPQ or self-join.
    pub kind: QueryKind,
    /// End-to-end budget measured from admission (queue wait counts
    /// against it). `None` falls back to the service default; `Some` here
    /// overrides it. An expired query stops within one node visit and
    /// responds [`QueryStatus::TimedOut`] with its partial result.
    pub deadline: Option<Duration>,
    /// Intra-query parallelism requested for this query (total threads,
    /// driver included). `None` or values `≤ 1` run the plain sequential
    /// engine; larger values are clamped to the service's
    /// [`max_parallelism`](crate::ServiceConfig::max_parallelism). Results
    /// are bit-identical either way — parallelism only buys latency.
    pub parallelism: Option<usize>,
    /// Scatter-gather worker fan-out requested for this query. `None` or
    /// `0` runs the classic single-tree path; values `≥ 1` route the query
    /// over the service's sharded replicas (when started with
    /// [`CpqService::start_sharded`](crate::CpqService::start_sharded);
    /// ignored otherwise), clamped to the service's
    /// [`max_shards`](crate::ServiceConfig::max_shards). Results are
    /// bit-identical either way — sharding only buys pruning and fan-out.
    pub scatter: Option<usize>,
    /// Result-pair constraint: per-side query windows and/or the colored
    /// (pair spans two categories) requirement. The default
    /// [`Constraint::none`] runs the plain K-CPQ path unchanged. Self-join
    /// requests must keep the constraint symmetric
    /// ([`Constraint::is_symmetric`]) or the query fails at execution.
    pub constraint: Constraint<D>,
    /// Let the service's query planner choose algorithm, intra-query
    /// parallelism, and scatter fan-out from the cost model and query
    /// shape, overriding whatever this request carries in those fields.
    /// The response's `request` echoes the *planned* knobs, and the
    /// profile records the decision (`planned` / `plan_reason` /
    /// `plan_est_accesses`).
    pub planned: bool,
}

impl<const D: usize> QueryRequest<D> {
    /// A cross-tree K-CPQ with no per-request deadline override.
    pub fn cross(k: usize, algorithm: Algorithm) -> Self {
        QueryRequest {
            k,
            algorithm,
            kind: QueryKind::Cross,
            deadline: None,
            parallelism: None,
            scatter: None,
            constraint: Constraint::none(),
            planned: false,
        }
    }

    /// A self-join K-CPQ with no per-request deadline override.
    pub fn self_join(k: usize, algorithm: Algorithm) -> Self {
        QueryRequest {
            kind: QueryKind::SelfJoin,
            ..Self::cross(k, algorithm)
        }
    }

    /// A cross-tree K-CPQ whose execution knobs the service's planner
    /// picks. The `algorithm` field holds a placeholder until planning.
    pub fn planned_cross(k: usize) -> Self {
        QueryRequest {
            planned: true,
            ..Self::cross(k, Algorithm::Heap)
        }
    }

    /// A self-join K-CPQ whose execution knobs the planner picks.
    pub fn planned_self(k: usize) -> Self {
        QueryRequest {
            kind: QueryKind::SelfJoin,
            ..Self::planned_cross(k)
        }
    }

    /// Sets the result-pair constraint (windows and/or colored).
    pub fn with_constraint(mut self, constraint: Constraint<D>) -> Self {
        self.constraint = constraint;
        self
    }

    /// Sets the per-request deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Requests intra-query parallelism (total threads, driver included);
    /// clamped to the service's configured maximum at execution time.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = Some(threads);
        self
    }

    /// Requests scatter-gather execution over the service's sharded
    /// replicas with this worker fan-out; clamped to the service's
    /// [`max_shards`](crate::ServiceConfig::max_shards) at execution time.
    pub fn with_scatter(mut self, workers: usize) -> Self {
        self.scatter = Some(workers);
        self
    }
}

/// Terminal state of an executed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryStatus {
    /// The query ran to completion; `pairs` is the exact answer.
    Completed,
    /// The deadline expired mid-run; `pairs` holds the best pairs found
    /// before the cutoff (possibly none) — a partial, not-necessarily-final
    /// answer. The worker was released, not blocked.
    TimedOut,
    /// The engine failed (storage error, corrupt node, …).
    Failed(String),
    /// The service shut down before the query was executed. Produced only
    /// by [`QueryTicket::wait`](crate::QueryTicket::wait) when the reply
    /// channel died.
    Dropped,
}

impl QueryStatus {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            QueryStatus::Completed => "completed",
            QueryStatus::TimedOut => "timed-out",
            QueryStatus::Failed(_) => "failed",
            QueryStatus::Dropped => "dropped",
        }
    }
}

/// The answer to one [`QueryRequest`], delivered through the request's
/// [`QueryTicket`](crate::QueryTicket).
#[derive(Debug, Clone)]
pub struct QueryResponse<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// Service-assigned id (admission order).
    pub id: u64,
    /// The request this answers. For planned requests
    /// ([`QueryRequest::planned`]) the algorithm / parallelism / scatter
    /// fields carry the planner's choices, not the submitted placeholders.
    pub request: QueryRequest<D>,
    /// How the query ended.
    pub status: QueryStatus,
    /// Result pairs, ascending by distance (partial when `TimedOut`).
    pub pairs: Vec<PairResult<D, O>>,
    /// Engine work counters. `dist_computations` / `node_pairs_processed`
    /// are exact and deterministic; the `disk_accesses_*` deltas are exact
    /// in a single-worker service but *approximate* under concurrency,
    /// since other workers' faults on the shared pools land in the same
    /// counters (aggregate pool stats remain exact — see
    /// [`BufferPool::stats_snapshot`](cpq_storage::BufferPool::stats_snapshot)).
    pub stats: CpqStats,
    /// Time spent queued before a worker picked the query up.
    pub queue_wait: Duration,
    /// Execution time on the worker.
    pub exec: Duration,
    /// End-to-end latency: admission to response (`queue_wait + exec`).
    pub latency: Duration,
    /// The full work profile of this query, present when the service runs
    /// with observability on ([`ObsConfig::enabled`](crate::ObsConfig)).
    /// Boxed: the profile is an order of magnitude larger than the rest of
    /// the response and most callers only forward it.
    pub profile: Option<Box<QueryProfile>>,
}

/// The admission-time rejection: the queue was full (or the service was
/// shutting down), so the request was shed without executing. Contains the
/// request so callers can retry or degrade.
#[derive(Debug, Clone, Copy)]
pub struct Rejected<const D: usize = 2>(pub QueryRequest<D>);

impl<const D: usize> std::fmt::Display for Rejected<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query rejected by admission control (k={}, {} {})",
            self.0.k,
            self.0.algorithm.label(),
            self.0.kind.label()
        )
    }
}

impl<const D: usize> std::error::Error for Rejected<D> {}
