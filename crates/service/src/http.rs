//! A tiny std-only HTTP/1.1 listener serving `/metrics` and `/healthz`.
//!
//! This is deliberately *not* a web framework: one accept loop, blocking
//! per-request handling (a scrape is a single small response), two routes,
//! and graceful shutdown. It exists so a Prometheus scraper (or `curl`) can
//! reach the service without any non-std dependency.

use cpq_check::sync::atomic::{AtomicBool, Ordering};
use cpq_check::sync::Arc;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::thread::JoinHandle;
use std::time::Duration;

/// A running metrics endpoint; dropping it stops the listener.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves:
    ///
    /// * `GET /metrics` — `render()` output as
    ///   `text/plain; version=0.0.4` (the Prometheus exposition type);
    /// * `GET /healthz` — `ok`;
    /// * anything else — `404`.
    ///
    /// The accept loop runs on one background thread; `render` is invoked
    /// per scrape, so bridged gauges are refreshed on demand.
    pub fn start<A, F>(addr: A, render: F) -> io::Result<Self>
    where
        A: ToSocketAddrs,
        F: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept + sleep keeps shutdown latency bounded
        // without platform-specific listener wakeups.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("cpq-metrics-http".into())
                .spawn(move || {
                    // ordering: Acquire — pairs with the Release store in
                    // `shutdown`, the standard lifecycle-flag convention, so
                    // everything written before the stop request is visible
                    // to the loop's final iteration.
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                // Per-connection errors (client hung up
                                // mid-request) must not kill the listener.
                                let _ = handle_connection(stream, &render);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                // analyze: allow(panic-path) — poll backoff for the
                                // non-blocking accept loop; bounds shutdown
                                // latency without platform wakeup APIs.
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            // analyze: allow(panic-path) — same backoff as above.
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })
                // analyze: allow(panic-path) — spawning the one listener thread at
                // startup; if the OS refuses, the server cannot exist.
                .expect("spawn metrics http thread")
        };
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // ordering: Release — pairs with the Acquire load in the accept
        // loop (lifecycle-flag convention). Upgraded from Relaxed: the
        // join below already synchronized, but the flag should not depend
        // on that for correctness.
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection<F: Fn() -> String>(stream: TcpStream, render: &F) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; the routes take no body.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render(),
        ),
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn routes() {
        let server =
            MetricsServer::start("127.0.0.1:0", || "# TYPE x counter\nx 1\n".to_string()).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("version=0.0.4"));
        assert_eq!(body, "# TYPE x counter\nx 1\n");

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert_eq!(body, "ok\n");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.stop();
    }
}
