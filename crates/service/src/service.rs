//! The query service proper: admission, the worker pool, and tickets.

use crate::http::MetricsServer;
use crate::obs::{ObsConfig, ServiceObs};
use crate::planner::{plan, PlannerInputs, QueryPlan};
use crate::queue::AdmissionQueue;
use crate::request::{QueryKind, QueryRequest, QueryResponse, QueryStatus, Rejected};
use crate::stats::{ServiceStats, StatsSummary};
use cpq_check::sync::atomic::{AtomicU64, Ordering};
use cpq_check::sync::{mpsc, Arc};
use cpq_core::{
    k_closest_pairs_cancellable, k_closest_pairs_constrained_instrumented,
    k_closest_pairs_instrumented, self_closest_pairs_cancellable,
    self_closest_pairs_constrained_instrumented, self_closest_pairs_instrumented, CancelToken,
    CpqConfig, CpqStats, NullProbe, ProfileProbe, QueryProfile,
};
use cpq_geo::{Point, SpatialObject};
use cpq_live::{ApplyReport, LiveError, LiveSet, LiveTree, UpdateOp};
use cpq_rtree::{LevelStats, RTree};
use cpq_shard::{
    k_closest_pairs_sharded_constrained, self_closest_pairs_sharded_constrained, ShardConfig,
    ShardReport, ShardedPair,
};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The two read-only trees a service answers queries over.
///
/// Workers never mutate them — the whole query path is `&self` — so one
/// pair (and its two buffer pools) is shared by every worker without
/// copying. Self-join requests run on `p`.
pub struct TreePair<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// The `P` tree (also the self-join target).
    pub p: RTree<D, O>,
    /// The `Q` tree.
    pub q: RTree<D, O>,
}

impl<const D: usize, O: SpatialObject<D>> TreePair<D, O> {
    /// Bundles two trees for serving.
    pub fn new(p: RTree<D, O>, q: RTree<D, O>) -> Self {
        TreePair { p, q }
    }
}

/// Tuning knobs of a [`CpqService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads executing queries. `0` is allowed (admission-only;
    /// nothing drains the queue — useful for testing shed behavior).
    pub workers: usize,
    /// Admission-queue capacity; the `workers + queue_capacity` bound on
    /// in-flight queries is the service's whole memory commitment. Pushes
    /// beyond it shed.
    pub queue_capacity: usize,
    /// Engine configuration shared by all queries.
    pub cpq: CpqConfig,
    /// Ceiling on per-request intra-query parallelism
    /// ([`QueryRequest::parallelism`]). The default of `1` keeps every
    /// query on the plain sequential engine regardless of what requests
    /// ask for; raising it lets a request fan one query out over up to
    /// this many threads (deadlines and cancellation still stop the query
    /// within one node visit — workers poll the token inside stolen
    /// tasks, and a `TimedOut` partial stays the deterministic sequential
    /// prefix). Total thread pressure is `workers × max_parallelism`.
    pub max_parallelism: usize,
    /// Ceiling on per-request scatter-gather fan-out
    /// ([`QueryRequest::scatter`]). Only meaningful for services started
    /// with [`CpqService::start_sharded`]; the default of `1` lets scatter
    /// requests run but serializes their shard subqueries on one thread.
    /// Total thread pressure for scatter traffic is `workers × max_shards`.
    pub max_shards: usize,
    /// Deadline applied when a request does not carry its own. `None`
    /// means admitted queries may run arbitrarily long.
    pub default_deadline: Option<Duration>,
    /// Observability: metrics registry, per-query profiles, slow-query log.
    pub obs: ObsConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 64,
            cpq: CpqConfig::paper(),
            max_parallelism: 1,
            max_shards: 1,
            default_deadline: None,
            obs: ObsConfig::default(),
        }
    }
}

struct Job<const D: usize, O: SpatialObject<D>> {
    id: u64,
    req: QueryRequest<D>,
    enqueued: Instant,
    deadline_at: Option<Instant>,
    reply: mpsc::Sender<QueryResponse<D, O>>,
}

/// What a service answers queries over: a static read-only pair, or a
/// mutable [`LiveSet`] whose workers query pinned epoch snapshots.
// One `Source` lives per service, behind the `Arc<Shared>` — the variant
// size asymmetry never multiplies across a collection.
#[allow(clippy::large_enum_variant)]
enum Source<const D: usize, O: SpatialObject<D>> {
    Static(TreePair<D, O>),
    Live(LiveSet<D, O>),
}

impl<const D: usize, O: SpatialObject<D>> Source<D, O> {
    /// The two buffer pools behind the source (stable across snapshots,
    /// so the metrics bridges read the same books either way).
    fn pools(&self) -> (&cpq_storage::BufferPool, &cpq_storage::BufferPool) {
        match self {
            Source::Static(trees) => (trees.p.pool(), trees.q.pool()),
            Source::Live(live) => (live.p().pool(), live.q().pool()),
        }
    }
}

struct Shared<const D: usize, O: SpatialObject<D>> {
    source: Source<D, O>,
    /// Sharded replicas of the same datasets, present for services started
    /// with [`CpqService::start_sharded`]; requests with a `scatter` value
    /// route here.
    sharded: Option<ShardedPair<D, O>>,
    queue: AdmissionQueue<Job<D, O>>,
    stats: ServiceStats,
    cpq: CpqConfig,
    max_parallelism: usize,
    max_shards: usize,
    default_deadline: Option<Duration>,
    next_id: AtomicU64,
    /// `Some` when observability is on; workers then run the instrumented
    /// engine path and feed profiles here.
    obs: Option<ServiceObs>,
    /// Per-level tree statistics for the planner's cost model, captured
    /// once at start (one O(nodes) walk per tree, static sources only —
    /// live trees churn with every batch, so the planner falls back to
    /// cardinality heuristics there).
    plan_stats: Option<(Vec<LevelStats<D>>, Vec<LevelStats<D>>)>,
}

/// Handle for awaiting one submitted query's [`QueryResponse`].
pub struct QueryTicket<const D: usize, O: SpatialObject<D> = Point<D>> {
    id: u64,
    req: QueryRequest<D>,
    rx: mpsc::Receiver<QueryResponse<D, O>>,
}

impl<const D: usize, O: SpatialObject<D>> QueryTicket<D, O> {
    /// The service-assigned query id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives. If the service is torn down
    /// before the query executes, returns a [`QueryStatus::Dropped`]
    /// response instead of hanging.
    pub fn wait(self) -> QueryResponse<D, O> {
        match self.rx.recv() {
            Ok(resp) => resp,
            Err(_) => QueryResponse {
                id: self.id,
                request: self.req,
                status: QueryStatus::Dropped,
                pairs: Vec::new(),
                stats: CpqStats::default(),
                queue_wait: Duration::ZERO,
                exec: Duration::ZERO,
                latency: Duration::ZERO,
                profile: None,
            },
        }
    }
}

/// A multi-threaded closest-pair query service.
///
/// ```text
/// submit() ──► [bounded admission queue] ──► worker × N ──► QueryTicket
///    │ full?                                   │
///    └──► Rejected (shed)          shared read-only R*-trees + buffer pools
/// ```
///
/// * **Admission control** — the queue is bounded; a full queue sheds
///   (`Err(Rejected)`) instead of buffering unboundedly or blocking the
///   producer.
/// * **Deadlines** — each query runs under a [`CancelToken`] carrying its
///   end-to-end deadline (queue wait included). Expiry stops the engine
///   within one node visit; the response is `TimedOut` with the partial
///   result, and the worker moves on.
/// * **Determinism** — workers execute queries with the plain
///   single-threaded engine over shared `&RTree`s; a query's result pairs
///   are bit-identical to a direct [`cpq_core::k_closest_pairs`] call no
///   matter how many workers run beside it.
pub struct CpqService<const D: usize, O: SpatialObject<D> = Point<D>> {
    shared: Arc<Shared<D, O>>,
    workers: Vec<JoinHandle<()>>,
}

impl<const D: usize, O: SpatialObject<D>> CpqService<D, O> {
    /// Starts the worker pool over `trees`.
    pub fn start(trees: TreePair<D, O>, config: ServiceConfig) -> Self {
        Self::start_inner(Source::Static(trees), None, config)
    }

    /// Starts the worker pool over a mutable [`LiveSet`]: queries run on
    /// pinned epoch snapshots (each sees one committed state for its whole
    /// execution, no matter how many [`apply_updates`](Self::apply_updates)
    /// batches land mid-query), and `/metrics` gains the `cpq_wal_*` /
    /// `cpq_live_*` series bridged from the live trees.
    pub fn start_live(live: LiveSet<D, O>, config: ServiceConfig) -> Self {
        Self::start_inner(Source::Live(live), None, config)
    }

    /// Starts a shard-aware service: `trees` serve the classic path and
    /// `sharded` — replicas of the **same datasets**, partitioned — serves
    /// requests carrying a [`QueryRequest::scatter`] fan-out. Both paths
    /// return bit-identical pairs for the same request, so callers can
    /// flip traffic between them freely.
    ///
    /// Caveats of the scatter path: profiles carry the `shard_*` counters
    /// but not per-level node accesses (the probe instruments only the
    /// single-tree engine), and buffer-hit/miss deltas reflect the classic
    /// trees' pools, not the per-shard pools.
    pub fn start_sharded(
        trees: TreePair<D, O>,
        sharded: ShardedPair<D, O>,
        config: ServiceConfig,
    ) -> Self {
        Self::start_inner(Source::Static(trees), Some(sharded), config)
    }

    fn start_inner(
        source: Source<D, O>,
        sharded: Option<ShardedPair<D, O>>,
        config: ServiceConfig,
    ) -> Self {
        let plan_stats = match &source {
            Source::Static(trees) => match (trees.p.level_stats(), trees.q.level_stats()) {
                (Ok(p), Ok(q)) => Some((p, q)),
                // A stats walk that fails (storage error) only loses the
                // cost model; the planner degrades to cardinality rules.
                _ => None,
            },
            Source::Live(_) => None,
        };
        let shared = Arc::new(Shared {
            source,
            sharded,
            queue: AdmissionQueue::new(config.queue_capacity),
            stats: ServiceStats::new(),
            cpq: config.cpq,
            max_parallelism: config.max_parallelism.max(1),
            max_shards: config.max_shards.max(1),
            default_deadline: config.default_deadline,
            next_id: AtomicU64::new(0),
            obs: config.obs.enabled.then(|| ServiceObs::new(&config.obs)),
            plan_stats,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cpq-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // analyze: allow(panic-path) — spawn fails only on OS resource
                    // exhaustion; the service cannot run without its workers.
                    .expect("spawn worker thread")
            })
            .collect();
        CpqService { shared, workers }
    }

    /// Admits a query, or sheds it when the queue is full.
    ///
    /// Admission stamps the queue-entry time; the effective deadline (the
    /// request's own, falling back to the service default) starts counting
    /// here, so time spent queued eats into the budget — a query that waits
    /// out its whole deadline in the queue is answered `TimedOut` without
    /// the engine doing any work.
    pub fn submit(&self, req: QueryRequest<D>) -> Result<QueryTicket<D, O>, Rejected<D>> {
        // ordering: Relaxed — a pure id allocator; only uniqueness matters,
        // and the id is handed to the queue through a mutex anyway.
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let enqueued = Instant::now();
        let deadline_at = req
            .deadline
            .or(self.shared.default_deadline)
            .map(|d| enqueued + d);
        let job = Job {
            id,
            req,
            enqueued,
            deadline_at,
            reply: tx,
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => Ok(QueryTicket { id, req, rx }),
            Err(job) => {
                self.shared.stats.record_shed();
                if let Some(obs) = &self.shared.obs {
                    obs.record_shed();
                }
                Err(Rejected(job.req))
            }
        }
    }

    /// Convenience: submit and block for the response.
    pub fn execute(&self, req: QueryRequest<D>) -> Result<QueryResponse<D, O>, Rejected<D>> {
        self.submit(req).map(QueryTicket::wait)
    }

    /// Aggregated service statistics so far.
    pub fn stats(&self) -> StatsSummary {
        self.shared.stats.summary()
    }

    /// Requests currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The shared static trees (for reading pool statistics). `None` for
    /// services started with [`start_live`](Self::start_live) — use
    /// [`live`](Self::live) there.
    pub fn trees(&self) -> Option<&TreePair<D, O>> {
        match &self.shared.source {
            Source::Static(trees) => Some(trees),
            Source::Live(_) => None,
        }
    }

    /// The live set behind a [`start_live`](Self::start_live) service.
    pub fn live(&self) -> Option<&LiveSet<D, O>> {
        match &self.shared.source {
            Source::Live(live) => Some(live),
            Source::Static(_) => None,
        }
    }

    /// Applies a batch of streaming updates to the live set, each op
    /// durable and published to concurrent queries before the next starts.
    /// In-flight queries keep their pinned snapshots; queries admitted
    /// after return see the batch. Errors with [`LiveError::Invalid`] on a
    /// static service.
    pub fn apply_updates(&self, ops: &[UpdateOp<D, O>]) -> Result<ApplyReport, LiveError> {
        let Source::Live(live) = &self.shared.source else {
            return Err(LiveError::Invalid(
                "apply_updates on a static service; start it with start_live".into(),
            ));
        };
        let report = live.apply(ops)?;
        if let Some(obs) = &self.shared.obs {
            obs.record_apply(&report);
        }
        Ok(report)
    }

    /// The observability state, when enabled in [`ServiceConfig::obs`].
    pub fn obs(&self) -> Option<&ServiceObs> {
        self.shared.obs.as_ref()
    }

    /// Renders the Prometheus text exposition of the service's metrics,
    /// refreshing the bridged buffer-pool series at call time. Empty string
    /// when observability is off.
    pub fn render_metrics(&self) -> String {
        self.shared.render()
    }

    /// Drains the slow-query log (oldest first). Empty when observability
    /// is off or no query crossed the threshold.
    pub fn drain_slow_queries(&self) -> Vec<QueryProfile> {
        match &self.shared.obs {
            Some(obs) => obs.slow_log().drain(),
            None => Vec::new(),
        }
    }

    /// Drains the slow-query log as JSONL, one profile per line.
    pub fn drain_slow_queries_jsonl(&self) -> String {
        match &self.shared.obs {
            Some(obs) => obs.slow_log().drain_jsonl(),
            None => String::new(),
        }
    }

    /// Starts an HTTP listener serving `GET /metrics` (the exposition of
    /// [`render_metrics`](Self::render_metrics)) and `GET /healthz` on
    /// `addr` (port 0 binds an ephemeral port; see
    /// [`MetricsServer::addr`]). The listener holds the service state alive
    /// until dropped, so it keeps serving final metrics even after
    /// [`shutdown`](Self::shutdown).
    pub fn serve_metrics<A: std::net::ToSocketAddrs>(
        &self,
        addr: A,
    ) -> std::io::Result<MetricsServer> {
        let shared = Arc::clone(&self.shared);
        MetricsServer::start(addr, move || shared.render())
    }

    fn stop(&mut self) {
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            // analyze: allow(panic-path) — a panicking worker is a bug; propagate
            // the panic instead of shutting down silently.
            h.join().expect("worker thread panicked");
        }
    }

    /// Stops admission, drains the backlog (admitted queries still
    /// execute), joins the workers, and returns the final statistics.
    pub fn shutdown(mut self) -> StatsSummary {
        self.stop();
        self.shared.stats.summary()
    }
}

impl<const D: usize, O: SpatialObject<D>> Drop for CpqService<D, O> {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Buffer-pool totals the trees have accumulated so far; the worker takes
/// this before and after a query and reports the delta in the profile.
/// Under concurrency other workers' faults land in the same pools, so the
/// delta is exact for a single-worker service and approximate otherwise
/// (same caveat as [`QueryResponse::stats`]'s disk accesses).
fn pool_totals<const D: usize, O: SpatialObject<D>>(
    shared: &Shared<D, O>,
    kind: QueryKind,
) -> (u64, u64) {
    let (pool_p, pool_q) = shared.source.pools();
    let (p, _) = pool_p.stats_snapshot();
    match kind {
        QueryKind::SelfJoin => (p.hits, p.misses),
        QueryKind::Cross => {
            let (q, _) = pool_q.stats_snapshot();
            (p.hits + q.hits, p.misses + q.misses)
        }
    }
}

impl<const D: usize, O: SpatialObject<D>> Shared<D, O> {
    /// Refreshes the bridged series and renders the Prometheus exposition;
    /// empty when observability is off.
    fn render(&self) -> String {
        let Some(obs) = &self.obs else {
            return String::new();
        };
        let (pool_p, pool_q) = self.source.pools();
        let live = match &self.source {
            Source::Live(live) => Some(live.stats()),
            Source::Static(_) => None,
        };
        obs.render(pool_p, pool_q, live.as_ref(), self.queue.len())
    }

    /// Runs the planner for one planned request: gathers the cheap data
    /// statistics (cardinalities O(1), one root page per tree; the
    /// per-level stats were captured at start) and applies the
    /// deterministic rules in [`crate::planner`].
    fn plan_query(&self, req: &QueryRequest<D>) -> QueryPlan {
        let (n_p, n_q, workspace_p, workspace_q) = match &self.source {
            Source::Static(trees) => (
                trees.p.len(),
                trees.q.len(),
                trees.p.root_mbr().ok().flatten(),
                trees.q.root_mbr().ok().flatten(),
            ),
            Source::Live(live) => {
                // A pinned snapshot per side, dropped before execution —
                // the query itself pins its own (possibly newer) epoch.
                let side = |t: &LiveTree<D, O>| {
                    t.snapshot()
                        .ok()
                        .map(|s| (s.tree().len(), s.tree().root_mbr().ok().flatten()))
                        .unwrap_or((0, None))
                };
                let (n_p, ws_p) = side(live.p());
                let (n_q, ws_q) = side(live.q());
                (n_p, n_q, ws_p, ws_q)
            }
        };
        let inputs = PlannerInputs {
            n_p,
            n_q,
            workspace_p,
            workspace_q,
            stats_p: self.plan_stats.as_ref().map(|(p, _)| p.as_slice()),
            stats_q: self.plan_stats.as_ref().map(|(_, q)| q.as_slice()),
            max_parallelism: self.max_parallelism,
            shards: if self.sharded.is_some() {
                self.max_shards
            } else {
                0
            },
        };
        plan(&inputs, req.k, req.kind, &req.constraint)
    }
}

/// The classic (non-scatter) engine dispatch over two borrowed trees —
/// the static pair or a live query's pinned snapshots. Self-joins ignore
/// `q` (callers pass `p` twice).
fn run_classic<const D: usize, O: SpatialObject<D>>(
    p: &RTree<D, O>,
    q: &RTree<D, O>,
    job: &Job<D, O>,
    cpq: &CpqConfig,
    cancel: &CancelToken,
    instrument: bool,
    probe: &mut ProfileProbe,
) -> Result<cpq_core::QueryRun<D, O>, String> {
    let con = job.req.constraint;
    let classic = if con.is_active() {
        // The constrained engine has one cancellable, probed entry point
        // per kind; the uninstrumented path runs it under a NullProbe
        // (compiled-out callbacks, same zero overhead as the plain path).
        match (job.req.kind, instrument) {
            (QueryKind::Cross, true) => k_closest_pairs_constrained_instrumented(
                p,
                q,
                job.req.k,
                job.req.algorithm,
                cpq,
                con,
                cancel,
                probe,
            ),
            (QueryKind::SelfJoin, true) => self_closest_pairs_constrained_instrumented(
                p,
                job.req.k,
                job.req.algorithm,
                cpq,
                con,
                cancel,
                probe,
            ),
            (QueryKind::Cross, false) => k_closest_pairs_constrained_instrumented(
                p,
                q,
                job.req.k,
                job.req.algorithm,
                cpq,
                con,
                cancel,
                &mut NullProbe,
            ),
            (QueryKind::SelfJoin, false) => self_closest_pairs_constrained_instrumented(
                p,
                job.req.k,
                job.req.algorithm,
                cpq,
                con,
                cancel,
                &mut NullProbe,
            ),
        }
    } else {
        match (job.req.kind, instrument) {
            (QueryKind::Cross, false) => {
                k_closest_pairs_cancellable(p, q, job.req.k, job.req.algorithm, cpq, cancel)
            }
            (QueryKind::SelfJoin, false) => {
                self_closest_pairs_cancellable(p, job.req.k, job.req.algorithm, cpq, cancel)
            }
            (QueryKind::Cross, true) => {
                k_closest_pairs_instrumented(p, q, job.req.k, job.req.algorithm, cpq, cancel, probe)
            }
            (QueryKind::SelfJoin, true) => {
                self_closest_pairs_instrumented(p, job.req.k, job.req.algorithm, cpq, cancel, probe)
            }
        }
    };
    classic.map_err(|e| e.to_string())
}

fn worker_loop<const D: usize, O: SpatialObject<D>>(shared: &Shared<D, O>) {
    while let Some(mut job) = shared.queue.pop() {
        let start = Instant::now();
        let queue_wait = start.duration_since(job.enqueued);
        // Planned requests: the planner's choices overwrite the request's
        // knobs before dispatch, so the rest of the loop (and the echoed
        // response) sees exactly what will execute. Planning time counts
        // against the query's execution budget.
        let query_plan = job.req.planned.then(|| shared.plan_query(&job.req));
        if let Some(p) = &query_plan {
            job.req.algorithm = p.algorithm;
            job.req.parallelism = (p.parallelism > 0).then_some(p.parallelism);
            job.req.scatter = (p.scatter > 0).then_some(p.scatter);
        }
        let cancel = match job.deadline_at {
            Some(at) => CancelToken::with_deadline(at),
            None => CancelToken::new(),
        };
        let instrument = shared.obs.is_some();
        let (buf_before, mut probe) = if instrument {
            (pool_totals(shared, job.req.kind), ProfileProbe::new())
        } else {
            ((0, 0), ProfileProbe::new())
        };
        // The per-query engine config: the shared one, plus this request's
        // intra-query parallelism clamped to the service ceiling. The token
        // travels into the parallel executor, so a deadline expiring
        // mid-steal still stops the query within one node visit.
        let mut cpq = shared.cpq;
        cpq.parallelism = job.req.parallelism.unwrap_or(0).min(shared.max_parallelism);
        // Shard-aware dispatch: a request carrying a scatter fan-out runs
        // over the sharded replicas (when this service holds them), clamped
        // to the configured ceiling. The scatter path owns its own worker
        // fan-out, so intra-query parallelism is irrelevant to it.
        let scatter_workers = job.req.scatter.unwrap_or(0).min(shared.max_shards);
        let mut shard_report = None;
        // An asymmetric windowed self-join has no stable side assignment
        // for its unordered pairs; fail it here rather than panicking in
        // the engine's contract assert.
        let result = if job.req.kind == QueryKind::SelfJoin && !job.req.constraint.is_symmetric() {
            Err("self-join constraints must use one symmetric window".to_string())
        } else if let Some(pair) = shared.sharded.as_ref().filter(|_| scatter_workers >= 1) {
            let shard_cfg = ShardConfig {
                workers: scatter_workers,
                query_id: job.id,
                ..ShardConfig::default()
            };
            let run = match job.req.kind {
                QueryKind::Cross => k_closest_pairs_sharded_constrained(
                    &pair.p,
                    &pair.q,
                    job.req.k,
                    job.req.algorithm,
                    &cpq,
                    &shard_cfg,
                    job.req.constraint,
                    Some(&cancel),
                ),
                QueryKind::SelfJoin => self_closest_pairs_sharded_constrained(
                    &pair.p,
                    job.req.k,
                    job.req.algorithm,
                    &cpq,
                    &shard_cfg,
                    job.req.constraint,
                    Some(&cancel),
                ),
            };
            match run {
                Ok(run) => {
                    shard_report = Some(run.report);
                    Ok(cpq_core::QueryRun {
                        outcome: run.outcome,
                        completed: run.completed,
                    })
                }
                Err(e) => Err(e.to_string()),
            }
        } else {
            match &shared.source {
                Source::Static(trees) => run_classic(
                    &trees.p, &trees.q, &job, &cpq, &cancel, instrument, &mut probe,
                ),
                // Live path: pin epoch snapshots for the query's whole
                // execution — one committed state end to end, no matter
                // how many update batches commit mid-query. Self-joins
                // pin only P.
                Source::Live(live) => match live.p().snapshot() {
                    Err(e) => Err(e.to_string()),
                    Ok(snap_p) => match job.req.kind {
                        QueryKind::SelfJoin => run_classic(
                            snap_p.tree(),
                            snap_p.tree(),
                            &job,
                            &cpq,
                            &cancel,
                            instrument,
                            &mut probe,
                        ),
                        QueryKind::Cross => match live.q().snapshot() {
                            Err(e) => Err(e.to_string()),
                            Ok(snap_q) => run_classic(
                                snap_p.tree(),
                                snap_q.tree(),
                                &job,
                                &cpq,
                                &cancel,
                                instrument,
                                &mut probe,
                            ),
                        },
                    },
                },
            }
        };
        let (status, pairs, stats) = match result {
            Ok(run) => (
                if run.completed {
                    QueryStatus::Completed
                } else {
                    QueryStatus::TimedOut
                },
                run.outcome.pairs,
                run.outcome.stats,
            ),
            Err(e) => (QueryStatus::Failed(e), Vec::new(), CpqStats::default()),
        };
        let exec = start.elapsed();
        let latency = job.enqueued.elapsed();
        shared
            .stats
            .record_executed(&status, latency, queue_wait, stats.disk_accesses());
        let profile = shared.obs.as_ref().map(|obs| {
            let profile = complete_profile(
                probe,
                shared,
                &job,
                &status,
                &stats,
                shard_report,
                query_plan,
                buf_before,
                queue_wait,
                exec,
            );
            obs.record_query(&profile);
            Box::new(profile)
        });
        // A client may have dropped its ticket; the response is then
        // discarded, which is fine — stats already captured it.
        let _ = job.reply.send(QueryResponse {
            id: job.id,
            request: job.req,
            status,
            pairs,
            stats,
            queue_wait,
            exec,
            latency,
            profile,
        });
    }
}

/// Fills the serving-layer fields of a probe-accumulated profile: identity,
/// outcome, buffer deltas, stats-only counters, and timings. The
/// engine-observable fields (node accesses per level, kernel counters,
/// phase timings) were already written by the [`ProfileProbe`] callbacks.
#[allow(clippy::too_many_arguments)]
fn complete_profile<const D: usize, O: SpatialObject<D>>(
    probe: ProfileProbe,
    shared: &Shared<D, O>,
    job: &Job<D, O>,
    status: &QueryStatus,
    stats: &CpqStats,
    shard_report: Option<ShardReport>,
    query_plan: Option<QueryPlan>,
    buf_before: (u64, u64),
    queue_wait: Duration,
    exec: Duration,
) -> QueryProfile {
    let mut profile = probe.into_profile();
    profile.query_id = job.id;
    profile.algorithm = job.req.algorithm.label().to_string();
    profile.kind = job.req.kind.label().to_string();
    profile.status = status.label().to_string();
    profile.k = job.req.k as u64;
    let (hits_after, misses_after) = pool_totals(shared, job.req.kind);
    profile.buffer_hits = hits_after.saturating_sub(buf_before.0);
    profile.buffer_misses = misses_after.saturating_sub(buf_before.1);
    profile.pairs_pruned = stats.pairs_pruned;
    profile.node_pairs_processed = stats.node_pairs_processed;
    profile.heap_inserts = stats.queue_inserts;
    profile.heap_high_watermark = stats.queue_peak as u64;
    profile.queue_wait_us = queue_wait.as_micros() as u64;
    profile.exec_us = exec.as_micros() as u64;
    if let Some(r) = shard_report {
        profile.shard_pairs_generated = r.pairs_generated;
        profile.shard_pairs_pruned = r.pairs_pruned;
        profile.shard_pairs_opened = r.pairs_opened;
        profile.shard_subqueries_completed = r.subqueries_completed;
        profile.shard_bound_updates = r.bound_updates;
    }
    if let Some(p) = query_plan {
        profile.planned = true;
        profile.plan_reason = p.reason.to_string();
        profile.plan_parallelism = p.parallelism as u64;
        profile.plan_scatter = p.scatter as u64;
        profile.plan_est_accesses = p.est_accesses.map(|a| a.round() as u64).unwrap_or(0);
    }
    profile
}
