//! Service-level observability: the metrics registry wiring, the bridged
//! buffer-pool counters, and the slow-query log.
//!
//! One [`ServiceObs`] lives inside a [`CpqService`](crate::CpqService) when
//! observability is on. Workers feed it one [`QueryProfile`] per executed
//! query; scrapers read it through
//! [`CpqService::render_metrics`](crate::CpqService::render_metrics) (or the
//! HTTP listener in [`crate::http`]), which refreshes the bridged series
//! from the buffer pools at scrape time.

use cpq_check::sync::Arc;
use cpq_live::{ApplyReport, LiveStats};
use cpq_obs::{Counter, Gauge, Histogram, QueryProfile, Registry, SlowQueryLog};
use cpq_storage::BufferPool;
use std::time::Duration;

/// Observability knobs of a [`CpqService`](crate::CpqService).
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Master switch. Off: workers run the uninstrumented engine path
    /// (`NullProbe` — zero overhead), no registry exists, and
    /// [`CpqService::render_metrics`](crate::CpqService::render_metrics)
    /// returns an empty body.
    pub enabled: bool,
    /// Queries with end-to-end latency at or above this threshold have
    /// their full profile captured in the slow-query log. `None` disables
    /// capture (counters still run).
    pub slow_query_threshold: Option<Duration>,
    /// Profiles retained by the slow-query log (oldest evicted).
    pub slow_log_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            slow_query_threshold: Some(Duration::from_millis(100)),
            slow_log_capacity: 128,
        }
    }
}

impl ObsConfig {
    /// Observability fully off (the pre-observability service behavior).
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            slow_query_threshold: None,
            slow_log_capacity: 0,
        }
    }
}

/// Algorithm labels pre-registered so `/metrics` shows the full query
/// matrix (as zeros) before any traffic arrives.
const ALGORITHMS: [&str; 5] = ["NAIVE", "EXH", "SIM", "STD", "HEAP"];
const OUTCOMES: [&str; 3] = ["completed", "timed-out", "failed"];

struct TreeBridge {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    hit_ratio: Arc<Gauge>,
}

/// Bridged I/O-scheduler counters for one tree's pool. All-zero (but
/// pre-registered) when the pool is unscheduled.
struct IoBridge {
    demand_reads: Arc<Counter>,
    demand_stall_ns: Arc<Counter>,
    physical_pages: Arc<Counter>,
    physical_batches: Arc<Counter>,
    prefetch_hits: Arc<Counter>,
    prefetch_waste: Arc<Counter>,
    prefetch_dropped: Arc<Counter>,
    dedup_joins: Arc<Counter>,
    coalesce_ratio: Arc<Gauge>,
    prefetch_hit_rate: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
}

fn io_bridge(registry: &Registry, tree: &str) -> IoBridge {
    let prefetch = |result: &str| {
        registry.counter(
            "cpq_io_prefetch_total",
            "speculative prefetch outcomes, by tree (bridged from the I/O scheduler)",
            &[("tree", tree), ("result", result)],
        )
    };
    IoBridge {
        demand_reads: registry.counter(
            "cpq_io_demand_reads_total",
            "completed demand page reads through the I/O scheduler, by tree",
            &[("tree", tree)],
        ),
        demand_stall_ns: registry.counter(
            "cpq_io_demand_stall_nanoseconds_total",
            "nanoseconds demand readers spent blocked on scheduler completions, by tree",
            &[("tree", tree)],
        ),
        physical_pages: registry.counter(
            "cpq_io_physical_pages_total",
            "pages physically read from disk by the I/O scheduler, by tree",
            &[("tree", tree)],
        ),
        physical_batches: registry.counter(
            "cpq_io_physical_batches_total",
            "physical read calls issued by the I/O scheduler (coalesced spans count once), by tree",
            &[("tree", tree)],
        ),
        prefetch_hits: prefetch("hit"),
        prefetch_waste: prefetch("waste"),
        prefetch_dropped: prefetch("dropped"),
        dedup_joins: registry.counter(
            "cpq_io_dedup_joins_total",
            "demand reads that joined an already in-flight read, by tree",
            &[("tree", tree)],
        ),
        coalesce_ratio: registry.gauge(
            "cpq_io_coalesce_ratio",
            "pages delivered per physical read call; >1 means coalescing pays off, by tree",
            &[("tree", tree)],
        ),
        prefetch_hit_rate: registry.gauge(
            "cpq_io_prefetch_hit_rate",
            "fraction of issued prefetches that served a demand read, in [0,1], by tree",
            &[("tree", tree)],
        ),
        queue_depth: registry.gauge(
            "cpq_io_queue_depth",
            "read requests currently queued in the I/O scheduler (read at scrape time), by tree",
            &[("tree", tree)],
        ),
    }
}

/// Bridged `cpq_wal_*` / `cpq_live_*` series for one live tree. Present
/// (as zeros) on static services too, so dashboards keyed on the family
/// names never 404; refreshed only when the service actually serves a
/// live set.
struct LiveBridge {
    wal_records: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    wal_commits: Arc<Counter>,
    wal_flushes: Arc<Counter>,
    wal_checkpoints: Arc<Counter>,
    inserts: Arc<Counter>,
    deletes: Arc<Counter>,
    delete_misses: Arc<Counter>,
    pages_retired: Arc<Counter>,
    pages_freed: Arc<Counter>,
    free_failures: Arc<Counter>,
    epoch: Arc<Gauge>,
    active_pins: Arc<Gauge>,
    pages_pending: Arc<Gauge>,
}

fn live_bridge(registry: &Registry, tree: &str) -> LiveBridge {
    let update = |op: &str| {
        registry.counter(
            "cpq_live_updates_total",
            "committed streaming updates, by tree and op (bridged from the live trees)",
            &[("tree", tree), ("op", op)],
        )
    };
    let pages = |event: &str| {
        registry.counter(
            "cpq_live_pages_total",
            "copy-on-write page turnover, by tree and event (retired = superseded; freed = reclaimed once unpinned)",
            &[("tree", tree), ("event", event)],
        )
    };
    LiveBridge {
        wal_records: registry.counter(
            "cpq_wal_records_total",
            "records appended to the write-ahead log, by tree",
            &[("tree", tree)],
        ),
        wal_bytes: registry.counter(
            "cpq_wal_bytes_total",
            "bytes appended to the write-ahead log (framing included), by tree",
            &[("tree", tree)],
        ),
        wal_commits: registry.counter(
            "cpq_wal_commits_total",
            "acknowledged commit durability waits, by tree",
            &[("tree", tree)],
        ),
        wal_flushes: registry.counter(
            "cpq_wal_flushes_total",
            "physical WAL flushes (staying below commits is the group-commit win), by tree",
            &[("tree", tree)],
        ),
        wal_checkpoints: registry.counter(
            "cpq_wal_checkpoints_total",
            "sharp checkpoints taken (each truncates the log), by tree",
            &[("tree", tree)],
        ),
        inserts: update("insert"),
        deletes: update("delete"),
        delete_misses: update("delete-miss"),
        pages_retired: pages("retired"),
        pages_freed: pages("freed"),
        free_failures: registry.counter(
            "cpq_live_free_failures_total",
            "page frees that failed during epoch reclamation (each leaks one page), by tree",
            &[("tree", tree)],
        ),
        epoch: registry.gauge(
            "cpq_live_epoch",
            "latest published epoch (one publish per committed update), by tree",
            &[("tree", tree)],
        ),
        active_pins: registry.gauge(
            "cpq_live_active_pins",
            "reader snapshots currently pinning an epoch (read at scrape time), by tree",
            &[("tree", tree)],
        ),
        pages_pending: registry.gauge(
            "cpq_live_pages_pending",
            "retired pages not yet reclaimable because an older epoch is pinned, by tree",
            &[("tree", tree)],
        ),
    }
}

impl LiveBridge {
    fn refresh(&self, stats: &LiveStats) {
        if let Some(w) = &stats.wal {
            self.wal_records.store(w.records);
            self.wal_bytes.store(w.bytes);
            self.wal_commits.store(w.commits);
            self.wal_flushes.store(w.flushes);
            self.wal_checkpoints.store(w.checkpoints);
        }
        self.inserts.store(stats.inserts);
        self.deletes.store(stats.deletes);
        self.delete_misses.store(stats.delete_misses);
        self.pages_retired.store(stats.epoch.pages_retired);
        self.pages_freed.store(stats.epoch.pages_freed);
        self.free_failures.store(stats.free_failures);
        self.epoch.set(stats.epoch.epoch as f64);
        self.active_pins.set(stats.epoch.active_pins as f64);
        self.pages_pending.set(stats.epoch.pages_pending as f64);
    }
}

impl IoBridge {
    fn refresh(&self, pool: &BufferPool) {
        let Some(s) = pool.sched_stats() else { return };
        self.demand_reads.store(s.demand_reads);
        self.demand_stall_ns.store(s.demand_stall_ns);
        self.physical_pages.store(s.physical_pages);
        self.physical_batches.store(s.physical_batches);
        self.prefetch_hits.store(s.prefetch_hits);
        self.prefetch_waste.store(s.prefetch_waste);
        self.prefetch_dropped.store(s.prefetch_dropped);
        self.dedup_joins.store(s.dedup_joins);
        self.coalesce_ratio.set(s.coalesce_ratio());
        self.prefetch_hit_rate.set(s.prefetch_hit_rate());
        self.queue_depth.set(pool.io_queue_depth() as f64);
    }
}

/// The observability state of one service: registry, pre-registered
/// instruments, and the slow-query log.
pub struct ServiceObs {
    registry: Registry,
    latency_us: Arc<Histogram>,
    queue_wait_us: Arc<Histogram>,
    node_accesses_p: Arc<Counter>,
    node_accesses_q: Arc<Counter>,
    dist_computations: Arc<Counter>,
    kernel_early_outs: Arc<Counter>,
    sweep_pairs_skipped: Arc<Counter>,
    pairs_pruned: Arc<Counter>,
    node_pairs_processed: Arc<Counter>,
    heap_inserts: Arc<Counter>,
    parallel_queries: Arc<Counter>,
    parallel_tasks: Arc<Counter>,
    parallel_cache_hits: Arc<Counter>,
    parallel_steals: Arc<Counter>,
    parallel_steal_misses: Arc<Counter>,
    parallel_bound_updates: Arc<Counter>,
    shard_queries: Arc<Counter>,
    shard_pairs_generated: Arc<Counter>,
    shard_pairs_pruned: Arc<Counter>,
    shard_pairs_opened: Arc<Counter>,
    shard_subqueries: Arc<Counter>,
    shard_bound_updates: Arc<Counter>,
    plan_parallel: Arc<Counter>,
    plan_scatter: Arc<Counter>,
    sheds: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    slow_observed: Arc<Counter>,
    slow_evicted: Arc<Counter>,
    apply_batches: Arc<Counter>,
    apply_ops: Arc<Counter>,
    bridge_p: TreeBridge,
    bridge_q: TreeBridge,
    io_bridge_p: IoBridge,
    io_bridge_q: IoBridge,
    live_bridge_p: LiveBridge,
    live_bridge_q: LiveBridge,
    slow_log: SlowQueryLog,
}

fn bridge(registry: &Registry, tree: &str) -> TreeBridge {
    TreeBridge {
        hits: registry.counter(
            "cpq_buffer_reads_total",
            "buffer-pool logical reads by tree and result (bridged from the pool at scrape time)",
            &[("tree", tree), ("result", "hit")],
        ),
        misses: registry.counter(
            "cpq_buffer_reads_total",
            "buffer-pool logical reads by tree and result (bridged from the pool at scrape time)",
            &[("tree", tree), ("result", "miss")],
        ),
        hit_ratio: registry.gauge(
            "cpq_buffer_hit_ratio",
            "buffer-pool hit ratio in [0,1] (bridged from the pool at scrape time)",
            &[("tree", tree)],
        ),
    }
}

impl ServiceObs {
    /// Builds the registry with every family pre-registered.
    pub fn new(config: &ObsConfig) -> Self {
        let registry = Registry::new();
        for algo in ALGORITHMS {
            for outcome in OUTCOMES {
                registry.counter(
                    "cpq_queries_total",
                    "queries executed, by algorithm and outcome",
                    &[("algorithm", algo), ("outcome", outcome)],
                );
            }
            // Planner decisions pre-registered per algorithm so dashboards
            // can plot planner-vs-hand-knobbed traffic before any arrives.
            registry.counter(
                "cpq_plan_queries_total",
                "planner-executed queries, by chosen algorithm",
                &[("algorithm", algo)],
            );
        }
        let threshold_us = config
            .slow_query_threshold
            .map(|d| d.as_micros() as u64)
            // No threshold: nothing is slow enough; capacity 0 keeps the
            // ring trivial.
            .unwrap_or(u64::MAX);
        let capacity = if config.slow_query_threshold.is_some() {
            config.slow_log_capacity
        } else {
            0
        };
        ServiceObs {
            latency_us: registry.histogram(
                "cpq_query_latency_microseconds",
                "end-to-end query latency (admission to response), microseconds",
                &[],
            ),
            queue_wait_us: registry.histogram(
                "cpq_queue_wait_microseconds",
                "time queued before a worker picked the query up, microseconds",
                &[],
            ),
            node_accesses_p: registry.counter(
                "cpq_node_accesses_total",
                "R-tree node accesses during query execution, by tree",
                &[("tree", "p")],
            ),
            node_accesses_q: registry.counter(
                "cpq_node_accesses_total",
                "R-tree node accesses during query execution, by tree",
                &[("tree", "q")],
            ),
            dist_computations: registry.counter(
                "cpq_dist_computations_total",
                "leaf-level distance-kernel invocations",
                &[],
            ),
            kernel_early_outs: registry.counter(
                "cpq_kernel_early_outs_total",
                "distance-kernel calls that bailed out on the threshold",
                &[],
            ),
            sweep_pairs_skipped: registry.counter(
                "cpq_sweep_pairs_skipped_total",
                "leaf pairs never visited thanks to the plane-sweep axis-gap break",
                &[],
            ),
            pairs_pruned: registry.counter(
                "cpq_pairs_pruned_total",
                "candidate node pairs pruned by MINMINDIST > T",
                &[],
            ),
            node_pairs_processed: registry.counter(
                "cpq_node_pairs_processed_total",
                "node pairs processed (recursive calls or heap pops)",
                &[],
            ),
            heap_inserts: registry.counter(
                "cpq_heap_inserts_total",
                "insertions into the HEAP algorithm's priority queue",
                &[],
            ),
            parallel_queries: registry.counter(
                "cpq_parallel_queries_total",
                "queries executed by the intra-query parallel engine",
                &[],
            ),
            parallel_tasks: registry.counter(
                "cpq_parallel_tasks_total",
                "node-pair tasks executed speculatively by parallel workers",
                &[],
            ),
            parallel_cache_hits: registry.counter(
                "cpq_parallel_cache_hits_total",
                "driver node-pair visits answered from the speculation cache",
                &[],
            ),
            parallel_steals: registry.counter(
                "cpq_parallel_steals_total",
                "tasks a parallel worker stole from another worker's shard",
                &[],
            ),
            parallel_steal_misses: registry.counter(
                "cpq_parallel_steal_misses_total",
                "full steal sweeps that found every shard empty",
                &[],
            ),
            parallel_bound_updates: registry.counter(
                "cpq_parallel_bound_updates_total",
                "successful tightenings of the shared global distance bound",
                &[],
            ),
            shard_queries: registry.counter(
                "cpq_shard_queries_total",
                "queries executed by the scatter-gather sharded path",
                &[],
            ),
            shard_pairs_generated: registry.counter(
                "cpq_shard_pairs_total",
                "shard pairs by scatter outcome (generated = pruned + opened on completed runs)",
                &[("result", "generated")],
            ),
            shard_pairs_pruned: registry.counter(
                "cpq_shard_pairs_total",
                "shard pairs by scatter outcome (generated = pruned + opened on completed runs)",
                &[("result", "pruned")],
            ),
            shard_pairs_opened: registry.counter(
                "cpq_shard_pairs_total",
                "shard pairs by scatter outcome (generated = pruned + opened on completed runs)",
                &[("result", "opened")],
            ),
            shard_subqueries: registry.counter(
                "cpq_shard_subqueries_total",
                "shard-pair engine subqueries that ran to completion",
                &[],
            ),
            shard_bound_updates: registry.counter(
                "cpq_shard_bound_updates_total",
                "successful tightenings of the cross-shard global distance bound",
                &[],
            ),
            plan_parallel: registry.counter(
                "cpq_plan_parallel_total",
                "planned queries for which the planner chose intra-query parallelism",
                &[],
            ),
            plan_scatter: registry.counter(
                "cpq_plan_scatter_total",
                "planned queries for which the planner chose scatter-gather fan-out",
                &[],
            ),
            sheds: registry.counter(
                "cpq_sheds_total",
                "requests shed by admission control (never executed)",
                &[],
            ),
            queue_depth: registry.gauge(
                "cpq_queue_depth",
                "requests currently waiting for a worker (read at scrape time)",
                &[],
            ),
            slow_observed: registry.counter(
                "cpq_slow_queries_total",
                "queries at or above the slow-query latency threshold",
                &[],
            ),
            slow_evicted: registry.counter(
                "cpq_slow_log_evictions_total",
                "slow-query profiles evicted because the log was full",
                &[],
            ),
            apply_batches: registry.counter(
                "cpq_live_apply_batches_total",
                "update batches accepted through the service's apply_updates entry point",
                &[],
            ),
            apply_ops: registry.counter(
                "cpq_live_apply_ops_total",
                "individual update operations applied through apply_updates",
                &[],
            ),
            bridge_p: bridge(&registry, "p"),
            bridge_q: bridge(&registry, "q"),
            io_bridge_p: io_bridge(&registry, "p"),
            io_bridge_q: io_bridge(&registry, "q"),
            live_bridge_p: live_bridge(&registry, "p"),
            live_bridge_q: live_bridge(&registry, "q"),
            slow_log: SlowQueryLog::new(threshold_us, capacity.max(1)),
            registry,
        }
    }

    /// The underlying registry (for snapshots or extra instruments).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The slow-query log.
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slow_log
    }

    /// Records one shed request.
    pub fn record_shed(&self) {
        self.sheds.inc();
    }

    /// Records one accepted `apply_updates` batch.
    pub fn record_apply(&self, report: &ApplyReport) {
        self.apply_batches.inc();
        self.apply_ops.add(report.applied as u64);
    }

    /// Records one executed query from its completed profile, and offers it
    /// to the slow-query log.
    pub fn record_query(&self, profile: &QueryProfile) {
        self.registry
            .counter(
                "cpq_queries_total",
                "queries executed, by algorithm and outcome",
                &[
                    ("algorithm", profile.algorithm.as_str()),
                    ("outcome", profile.status.as_str()),
                ],
            )
            .inc();
        if profile.planned {
            self.registry
                .counter(
                    "cpq_plan_queries_total",
                    "planner-executed queries, by chosen algorithm",
                    &[("algorithm", profile.algorithm.as_str())],
                )
                .inc();
            if profile.plan_parallelism > 0 {
                self.plan_parallel.inc();
            }
            if profile.plan_scatter > 0 {
                self.plan_scatter.inc();
            }
        }
        self.latency_us.record(profile.latency_us());
        self.queue_wait_us.record(profile.queue_wait_us);
        self.node_accesses_p
            .add(profile.node_accesses_p.iter().sum());
        self.node_accesses_q
            .add(profile.node_accesses_q.iter().sum());
        self.dist_computations.add(profile.dist_computations);
        self.kernel_early_outs.add(profile.kernel_early_outs);
        self.sweep_pairs_skipped.add(profile.sweep_pairs_skipped);
        self.pairs_pruned.add(profile.pairs_pruned);
        self.node_pairs_processed.add(profile.node_pairs_processed);
        self.heap_inserts.add(profile.heap_inserts);
        if profile.parallel_workers > 0 {
            self.parallel_queries.inc();
        }
        self.parallel_tasks.add(profile.parallel_tasks);
        self.parallel_cache_hits.add(profile.parallel_cache_hits);
        self.parallel_steals.add(profile.parallel_steals);
        self.parallel_steal_misses
            .add(profile.parallel_steal_misses);
        self.parallel_bound_updates
            .add(profile.parallel_bound_updates);
        if profile.shard_pairs_generated > 0 {
            self.shard_queries.inc();
        }
        self.shard_pairs_generated
            .add(profile.shard_pairs_generated);
        self.shard_pairs_pruned.add(profile.shard_pairs_pruned);
        self.shard_pairs_opened.add(profile.shard_pairs_opened);
        self.shard_subqueries
            .add(profile.shard_subqueries_completed);
        self.shard_bound_updates.add(profile.shard_bound_updates);
        self.slow_log.observe(profile.clone());
    }

    /// Refreshes the series that mirror external state — the bridged
    /// buffer-pool counters/ratios and the queue-depth gauge — then renders
    /// the registry in Prometheus text-exposition format.
    ///
    /// The bridge uses `Counter::store` with the pools' *cumulative* totals
    /// (taken under each pool's single-lock
    /// [`stats_snapshot`](cpq_storage::BufferPool::stats_snapshot)), so the
    /// exposed series can never disagree with the pools' own books.
    pub fn render(
        &self,
        pool_p: &BufferPool,
        pool_q: &BufferPool,
        live: Option<&(LiveStats, LiveStats)>,
        queue_depth: usize,
    ) -> String {
        let (bp, _) = pool_p.stats_snapshot();
        self.bridge_p.hits.store(bp.hits);
        self.bridge_p.misses.store(bp.misses);
        self.bridge_p.hit_ratio.set(bp.hit_rate());
        let (bq, _) = pool_q.stats_snapshot();
        self.bridge_q.hits.store(bq.hits);
        self.bridge_q.misses.store(bq.misses);
        self.bridge_q.hit_ratio.set(bq.hit_rate());
        self.io_bridge_p.refresh(pool_p);
        self.io_bridge_q.refresh(pool_q);
        if let Some((lp, lq)) = live {
            self.live_bridge_p.refresh(lp);
            self.live_bridge_q.refresh(lq);
        }
        self.queue_depth.set(queue_depth as f64);
        self.slow_observed.store(self.slow_log.observed());
        self.slow_evicted.store(self.slow_log.evicted());
        self.registry.render_prometheus()
    }
}
