//! The bounded MPMC admission queue.
//!
//! Built on `Mutex<VecDeque>` + `Condvar` only — the workspace has no
//! registry dependencies. Capacity is fixed at construction; a push against
//! a full queue **sheds** (returns the item to the caller) instead of
//! blocking or panicking, which is the admission-control contract of
//! [`CpqService`](crate::CpqService): under overload, producers get an
//! immediate `Rejected` and the latency of admitted queries stays bounded.

use cpq_check::sync::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO with shed-on-full push and
/// blocking pop.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue admitting at most `capacity` in-flight items.
    ///
    /// `capacity` must be at least 1.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "admission queue capacity must be >= 1");
        AdmissionQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy the instant it returns; for reporting).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().expect("admission queue mutex poisoned")
    }

    /// Attempts to enqueue `item`. Returns it back (`Err`) when the queue is
    /// full — the load-shedding path — or already closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut g = self.lock();
        if g.closed || g.items.len() >= self.capacity {
            return Err(item);
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open but empty.
    /// Returns `None` only once the queue is closed **and** drained, so no
    /// admitted item is ever lost to a shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .expect("admission queue mutex poisoned");
        }
    }

    /// Closes the queue: further pushes shed, and poppers drain the backlog
    /// then observe `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_shed_on_full() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue sheds, returning item");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "space freed re-admits");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_backlog_then_ends() {
        let q = AdmissionQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3), "closed queue sheds");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays ended");
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let q = Arc::new(AdmissionQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        // Feed items one at a time through a capacity-1 queue.
        for i in 0..50 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(_) => std::thread::yield_now(),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(AdmissionQueue::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let mut v = t * 1000 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expected: u64 = (0..4u64)
            .map(|t| (0..100u64).map(|i| t * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expected, "every admitted item consumed exactly once");
    }
}
