//! Service-level statistics: per-query samples aggregated into counts,
//! latency/queue-wait percentiles, and throughput.

use crate::request::QueryStatus;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency distribution summary, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Number of samples summarized.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Largest sample.
    pub max_us: u64,
}

impl Percentiles {
    /// Summarizes `samples` (sorted in place). The nearest-rank convention:
    /// p-th percentile = the sample at ceil(p/100 · n), 1-indexed.
    fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Percentiles::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |p: f64| -> u64 {
            let idx = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1;
            samples[idx]
        };
        Percentiles {
            count: n as u64,
            mean_us: samples.iter().sum::<u64>() / n as u64,
            p50_us: rank(50.0),
            p95_us: rank(95.0),
            p99_us: rank(99.0),
            max_us: samples[n - 1],
        }
    }
}

#[derive(Default)]
struct Agg {
    latencies_us: Vec<u64>,
    queue_waits_us: Vec<u64>,
    completed: u64,
    timed_out: u64,
    failed: u64,
    shed: u64,
    query_disk_accesses: u64,
    first_response: Option<Instant>,
    last_response: Option<Instant>,
}

/// Aggregated view of a service's lifetime, as returned by
/// [`ServiceStats::summary`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSummary {
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries cut off by their deadline (answered partially).
    pub timed_out: u64,
    /// Queries that failed in the engine.
    pub failed: u64,
    /// Requests shed by admission control (never executed).
    pub shed: u64,
    /// End-to-end latency distribution over executed queries.
    pub latency: Percentiles,
    /// Queue-wait distribution over executed queries.
    pub queue_wait: Percentiles,
    /// Sum of per-query disk-access deltas (see the caveat on
    /// [`QueryResponse::stats`](crate::QueryResponse::stats)).
    pub query_disk_accesses: u64,
    /// Executed queries per second, measured first-response → last-response.
    /// Zero until two responses exist.
    pub throughput_qps: f64,
}

/// Thread-safe collector the workers feed; readable at any time.
///
/// Samples are kept raw (8 bytes per executed query) and summarized on
/// demand — exact percentiles at serving-benchmark scale; a streaming
/// histogram can replace the buffers if a deployment ever keeps a service
/// up for billions of queries.
#[derive(Default)]
pub struct ServiceStats {
    agg: Mutex<Agg>,
}

impl ServiceStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Agg> {
        self.agg.lock().expect("service stats mutex poisoned")
    }

    /// Records one executed query (any terminal status except `Dropped`).
    pub fn record_executed(
        &self,
        status: &QueryStatus,
        latency: Duration,
        queue_wait: Duration,
        disk_accesses: u64,
    ) {
        let now = Instant::now();
        let mut g = self.lock();
        match status {
            QueryStatus::Completed => g.completed += 1,
            QueryStatus::TimedOut => g.timed_out += 1,
            QueryStatus::Failed(_) => g.failed += 1,
            QueryStatus::Dropped => {}
        }
        g.latencies_us.push(latency.as_micros() as u64);
        g.queue_waits_us.push(queue_wait.as_micros() as u64);
        g.query_disk_accesses += disk_accesses;
        g.first_response.get_or_insert(now);
        g.last_response = Some(now);
    }

    /// Records one request shed at admission.
    pub fn record_shed(&self) {
        self.lock().shed += 1;
    }

    /// Summarizes everything recorded so far.
    pub fn summary(&self) -> StatsSummary {
        let mut g = self.lock();
        let executed = g.completed + g.timed_out + g.failed;
        let throughput = match (g.first_response, g.last_response) {
            (Some(a), Some(b)) if b > a && executed >= 2 => {
                (executed - 1) as f64 / (b - a).as_secs_f64()
            }
            _ => 0.0,
        };
        let latency = Percentiles::from_samples(&mut g.latencies_us);
        let queue_wait = Percentiles::from_samples(&mut g.queue_waits_us);
        StatsSummary {
            completed: g.completed,
            timed_out: g.timed_out,
            failed: g.failed,
            shed: g.shed,
            latency,
            queue_wait,
            query_disk_accesses: g.query_disk_accesses,
            throughput_qps: throughput,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: Vec<u64> = (1..=100).collect();
        let p = Percentiles::from_samples(&mut s);
        assert_eq!(p.count, 100);
        assert_eq!(p.p50_us, 50);
        assert_eq!(p.p95_us, 95);
        assert_eq!(p.p99_us, 99);
        assert_eq!(p.max_us, 100);
        assert_eq!(p.mean_us, 50); // 50.5 truncated

        let mut one = vec![7u64];
        let p = Percentiles::from_samples(&mut one);
        assert_eq!((p.p50_us, p.p99_us, p.max_us), (7, 7, 7));
        assert_eq!(Percentiles::from_samples(&mut []), Percentiles::default());
    }

    #[test]
    fn record_and_summarize() {
        let stats = ServiceStats::new();
        stats.record_executed(
            &QueryStatus::Completed,
            Duration::from_micros(100),
            Duration::from_micros(10),
            5,
        );
        stats.record_executed(
            &QueryStatus::TimedOut,
            Duration::from_micros(300),
            Duration::from_micros(30),
            2,
        );
        stats.record_shed();
        let s = stats.summary();
        assert_eq!(s.completed, 1);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.query_disk_accesses, 7);
        assert_eq!(s.latency.count, 2);
        assert_eq!(s.latency.max_us, 300);
        assert_eq!(s.queue_wait.p50_us, 10);
    }
}
