//! Service-level statistics: per-query samples aggregated into counts,
//! latency/queue-wait percentiles, and throughput.

use crate::request::QueryStatus;
use cpq_check::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

// The percentile math lives in cpq-obs (one implementation for the service
// and the benchmark harness); re-exported here so `cpq_service::Percentiles`
// keeps working.
pub use cpq_obs::Percentiles;

#[derive(Default)]
struct Agg {
    latencies_us: Vec<u64>,
    queue_waits_us: Vec<u64>,
    completed: u64,
    timed_out: u64,
    failed: u64,
    shed: u64,
    query_disk_accesses: u64,
    first_response: Option<Instant>,
    last_response: Option<Instant>,
}

/// Aggregated view of a service's lifetime, as returned by
/// [`ServiceStats::summary`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSummary {
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries cut off by their deadline (answered partially).
    pub timed_out: u64,
    /// Queries that failed in the engine.
    pub failed: u64,
    /// Requests shed by admission control (never executed).
    pub shed: u64,
    /// End-to-end latency distribution over executed queries.
    pub latency: Percentiles,
    /// Queue-wait distribution over executed queries.
    pub queue_wait: Percentiles,
    /// Sum of per-query disk-access deltas (see the caveat on
    /// [`QueryResponse::stats`](crate::QueryResponse::stats)).
    pub query_disk_accesses: u64,
    /// Executed queries per second, measured first-response → last-response.
    /// Zero until two responses exist.
    pub throughput_qps: f64,
}

/// Thread-safe collector the workers feed; readable at any time.
///
/// Samples are kept raw (8 bytes per executed query) and summarized on
/// demand — exact percentiles at serving-benchmark scale; a streaming
/// histogram can replace the buffers if a deployment ever keeps a service
/// up for billions of queries.
#[derive(Default)]
pub struct ServiceStats {
    agg: Mutex<Agg>,
}

impl ServiceStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Agg> {
        self.agg.lock().expect("service stats mutex poisoned")
    }

    /// Records one executed query (any terminal status except `Dropped`).
    pub fn record_executed(
        &self,
        status: &QueryStatus,
        latency: Duration,
        queue_wait: Duration,
        disk_accesses: u64,
    ) {
        let now = Instant::now();
        let mut g = self.lock();
        match status {
            QueryStatus::Completed => g.completed += 1,
            QueryStatus::TimedOut => g.timed_out += 1,
            QueryStatus::Failed(_) => g.failed += 1,
            QueryStatus::Dropped => {}
        }
        g.latencies_us.push(latency.as_micros() as u64);
        g.queue_waits_us.push(queue_wait.as_micros() as u64);
        g.query_disk_accesses += disk_accesses;
        g.first_response.get_or_insert(now);
        g.last_response = Some(now);
    }

    /// Records one request shed at admission.
    pub fn record_shed(&self) {
        self.lock().shed += 1;
    }

    /// Summarizes everything recorded so far.
    pub fn summary(&self) -> StatsSummary {
        let mut g = self.lock();
        let executed = g.completed + g.timed_out + g.failed;
        let throughput = match (g.first_response, g.last_response) {
            (Some(a), Some(b)) if b > a && executed >= 2 => {
                (executed - 1) as f64 / (b - a).as_secs_f64()
            }
            _ => 0.0,
        };
        let latency = Percentiles::from_samples(&mut g.latencies_us);
        let queue_wait = Percentiles::from_samples(&mut g.queue_waits_us);
        StatsSummary {
            completed: g.completed,
            timed_out: g.timed_out,
            failed: g.failed,
            shed: g.shed,
            latency,
            queue_wait,
            query_disk_accesses: g.query_disk_accesses,
            throughput_qps: throughput,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summarize() {
        let stats = ServiceStats::new();
        stats.record_executed(
            &QueryStatus::Completed,
            Duration::from_micros(100),
            Duration::from_micros(10),
            5,
        );
        stats.record_executed(
            &QueryStatus::TimedOut,
            Duration::from_micros(300),
            Duration::from_micros(30),
            2,
        );
        stats.record_shed();
        let s = stats.summary();
        assert_eq!(s.completed, 1);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.query_disk_accesses, 7);
        assert_eq!(s.latency.count, 2);
        assert_eq!(s.latency.max_us, 300);
        assert_eq!(s.queue_wait.p50_us, 10);
    }
}
