//! Minimal seeded pseudo-random number generation for datasets and tests.
//!
//! The build environment has no network access, so the workspace cannot pull
//! `rand`/`rand_chacha` from crates.io. Every use of randomness in this
//! repository is *seeded and deterministic* — dataset generation and
//! randomized tests — so a small, well-understood generator is all that is
//! needed: [splitmix64] to expand a 64-bit seed into generator state, and
//! [xoshiro256++] (Blackman & Vigna) as the stream generator.
//!
//! The API deliberately mirrors the subset of `rand` the repository used
//! (`seed_from_u64`, `random_range`, `random_bool`) so call sites stay
//! idiomatic and a future return to `rand` would be mechanical.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c
//! [xoshiro256++]: https://prng.di.unimi.it/xoshiro256plusplus.c

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Expands a 64-bit seed into a well-mixed sequence (used for state
/// initialization; also a decent standalone generator for one-off mixing).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ generator.
///
/// Deterministic in its seed, `Clone` for reproducible branching streams.
/// Not cryptographically secure — it backs synthetic datasets and randomized
/// tests, nothing else.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (see [`SampleRange`] for the supported
    /// range types). Panics on an empty range, like `rand` does.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (rand-compatible signature).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

/// Range types [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        // Multiplicative scaling keeps the result in [start, end) for all
        // finite bounds (u < 1 and IEEE rounding never exceeds `end`
        // when `end - start` is finite).
        let span = self.end - self.start;
        assert!(span.is_finite(), "range span must be finite");
        let v = self.start + rng.next_f64() * span;
        if v >= self.end {
            // Guard against rare upward rounding at the boundary.
            self.end - span * f64::EPSILON
        } else {
            v
        }
    }
}

/// Samples a uniform integer in `[0, bound)` without modulo bias
/// (Lemire's multiply-then-widen rejection method).
#[inline]
fn bounded_u64(rng: &mut Rng, bound: u64) -> u64 {
    assert!(bound > 0, "empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + bounded_u64(rng, span + 1) as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u64, i64, usize, u32, i32, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: xoshiro256++ seeded with s = [1, 2, 3, 4].
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let expect: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 40_000;
        let buckets = 8;
        let mut counts = vec![0usize; buckets];
        for _ in 0..n {
            counts[rng.random_range(0usize..buckets)] += 1;
        }
        let expect = n / buckets;
        for c in counts {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 5) as u64,
                "bucket count {c} far from {expect}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = Rng::seed_from_u64(1);
        let _ = rng.random_range(5usize..5);
    }
}
