//! `cpq_lint` — the workspace's static concurrency-hygiene scanner.
//!
//! A std-only, line-level lint pass run by `scripts/ci.sh`. It enforces
//! four rules across `crates/*/src/**/*.rs` and `src/**/*.rs` (integration
//! `tests/` directories and `#[cfg(test)]` regions are out of scope, and
//! rule applicability varies per file — see each rule):
//!
//! * `ordering-comment` — every use of an atomic memory ordering
//!   (`Ordering::Relaxed`/`Acquire`/`Release`/`AcqRel`/`SeqCst`) must carry
//!   an `// ordering:` justification comment on the same line or within the
//!   six preceding lines. The model checker explores interleavings, not
//!   weak-memory reorderings, so ordering *strength* is argued in prose at
//!   every site.
//! * `forbid-unsafe` — every crate root (`lib.rs`) declares
//!   `#![forbid(unsafe_code)]`.
//! * `panic-path` — no `.unwrap()`, `.expect(`, or `thread::sleep` in
//!   non-test library code (binaries and the checker crate itself are
//!   exempt). Allowed: `expect` messages mentioning `poisoned` (the
//!   workspace convention for propagating a peer thread's panic), and
//!   sites waived inline with `// lint: allow(unwrap|expect|sleep)`.
//! * `std-sync-direct` — the shim-migrated crates (`storage`, `obs`,
//!   `core`, `service`) must not name `std::sync` in library code; they go
//!   through `cpq_check::sync` so `--cfg cpq_model` can model them.
//!
//! A file-wide waiver `// lint: file-allow(<rule-keyword>)` disables one
//! rule for one file; it is meant for files whose module docs carry a
//! blanket justification (e.g. the shim's modeled atomics, which are
//! SeqCst by design).
//!
//! All match patterns are assembled at runtime from fragments so this
//! file's own source never matches them.

use std::fmt;
use std::path::{Path, PathBuf};

/// The crates whose library code must route sync primitives through the
/// `cpq_check` shim.
const SHIM_MIGRATED_CRATES: &[&str] = &["storage", "obs", "core", "service", "shard", "live"];

/// How many preceding lines an `// ordering:` justification may sit above
/// its `Ordering::` use.
const ORDERING_COMMENT_WINDOW: usize = 6;

struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One source line split into its code and comment parts, with test-region
/// membership resolved.
struct LineInfo {
    code: String,
    comment: String,
    in_test: bool,
}

/// Split `content` into per-line code/comment parts, tracking `/* */`
/// blocks (line comments and block comments both count as comment text)
/// and string literals (so `"https://…"` is not a comment start), and mark
/// lines belonging to `#[cfg(test)]`-gated items.
fn classify(content: &str) -> Vec<LineInfo> {
    let mut infos = Vec::new();
    let mut block_comment_depth = 0usize;

    for raw in content.lines() {
        let mut code = String::new();
        let mut comment = String::new();
        let mut chars = raw.chars().peekable();
        let mut in_string = false;
        let mut escaped = false;
        while let Some(c) = chars.next() {
            if block_comment_depth > 0 {
                comment.push(c);
                if c == '*' && chars.peek() == Some(&'/') {
                    comment.push(chars.next().expect("peeked"));
                    block_comment_depth -= 1;
                } else if c == '/' && chars.peek() == Some(&'*') {
                    comment.push(chars.next().expect("peeked"));
                    block_comment_depth += 1;
                }
                continue;
            }
            if in_string {
                code.push(c);
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => {
                    in_string = true;
                    code.push(c);
                }
                '/' if chars.peek() == Some(&'/') => {
                    // Line comment: the rest of the line is comment text.
                    comment.push(c);
                    comment.extend(chars.by_ref());
                }
                '/' if chars.peek() == Some(&'*') => {
                    comment.push(c);
                    comment.push(chars.next().expect("peeked"));
                    block_comment_depth += 1;
                }
                _ => code.push(c),
            }
        }
        infos.push(LineInfo {
            code,
            comment,
            in_test: false,
        });
    }

    mark_test_regions(&mut infos);
    infos
}

/// Mark the lines of every `#[cfg(test)]`-gated item (typically
/// `mod tests { … }`) as test code. The item body is found by brace
/// counting on the comment-stripped code; a braceless item (e.g. a gated
/// `use`) ends at its `;`.
fn mark_test_regions(infos: &mut [LineInfo]) {
    let mut i = 0;
    while i < infos.len() {
        let code = infos[i].code.trim().to_string();
        let is_cfg_test = code.starts_with("#[cfg(") && code.contains("test");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Walk forward to the gated item and through its body.
        let mut depth = 0usize;
        let mut opened = false;
        let mut j = i;
        while j < infos.len() {
            infos[j].in_test = true;
            for c in infos[j].code.clone().chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            if opened && depth == 0 {
                break;
            }
            if !opened && infos[j].code.contains(';') && j > i {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Assemble a pattern from fragments at runtime, so the pattern text never
/// appears literally in this file.
fn pat(parts: &[&str]) -> String {
    parts.concat()
}

fn ordering_needles() -> Vec<String> {
    ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
        .iter()
        .map(|v| pat(&["Ordering", "::", v]))
        .collect()
}

fn file_allows(content_infos: &[LineInfo], keyword: &str) -> bool {
    let needle = pat(&["lint: file-allow(", keyword, ")"]);
    content_infos.iter().any(|l| l.comment.contains(&needle))
}

fn line_allows(infos: &[LineInfo], idx: usize, keyword: &str) -> bool {
    let needle = pat(&["lint: allow(", keyword, ")"]);
    if infos[idx].comment.contains(&needle) {
        return true;
    }
    // Walk up the contiguous comment block above the line: a waiver's
    // rationale may wrap across several comment lines, and the waiver may
    // ride the trailing comment of the last code line before the block.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        if infos[i].comment.contains(&needle) {
            return true;
        }
        if !infos[i].code.trim().is_empty() || infos[i].comment.trim().is_empty() {
            return false;
        }
    }
    false
}

/// Rule `ordering-comment`.
fn check_ordering_comments(rel: &str, infos: &[LineInfo], findings: &mut Vec<Finding>) {
    if file_allows(infos, "ordering") {
        return;
    }
    let needles = ordering_needles();
    for (idx, info) in infos.iter().enumerate() {
        if info.in_test {
            continue;
        }
        if !needles.iter().any(|n| info.code.contains(n)) {
            continue;
        }
        let justified = (idx.saturating_sub(ORDERING_COMMENT_WINDOW)..=idx)
            .any(|j| infos[j].comment.contains("ordering:"));
        if !justified {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: "ordering-comment",
                message: format!(
                    "atomic memory ordering without an `// ordering:` \
                     justification within {ORDERING_COMMENT_WINDOW} lines"
                ),
            });
        }
    }
}

/// Rule `panic-path`.
fn check_panic_paths(rel: &str, infos: &[LineInfo], findings: &mut Vec<Finding>) {
    let unwrap_needle = pat(&[".", "unwrap()"]);
    let expect_needle = pat(&[".", "expect("]);
    let sleep_needle = pat(&["thread", "::", "sleep"]);
    for (idx, info) in infos.iter().enumerate() {
        if info.in_test {
            continue;
        }
        if info.code.contains(&unwrap_needle)
            && !line_allows(infos, idx, "unwrap")
            && !file_allows(infos, "unwrap")
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: "panic-path",
                message: "`unwrap()` in non-test library code (return an error, \
                          or waive with `// lint: allow(unwrap)` + rationale)"
                    .to_string(),
            });
        }
        if info.code.contains(&expect_needle)
            && !info.code.contains("poisoned")
            && !line_allows(infos, idx, "expect")
            && !file_allows(infos, "expect")
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: "panic-path",
                message: "`expect()` in non-test library code (only the \
                          \"poisoned\" lock convention is allowed implicitly; \
                          waive others with `// lint: allow(expect)` + rationale)"
                    .to_string(),
            });
        }
        if info.code.contains(&sleep_needle)
            && !line_allows(infos, idx, "sleep")
            && !file_allows(infos, "sleep")
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: "panic-path",
                message: "`thread::sleep` in non-test library code (use a \
                          condvar/timeout, or waive with `// lint: allow(sleep)` \
                          + rationale)"
                    .to_string(),
            });
        }
    }
}

/// Rule `std-sync-direct`.
fn check_std_sync(rel: &str, infos: &[LineInfo], findings: &mut Vec<Finding>) {
    if file_allows(infos, "std-sync") {
        return;
    }
    let needle = pat(&["std", "::", "sync"]);
    for (idx, info) in infos.iter().enumerate() {
        if info.in_test {
            continue;
        }
        if info.code.contains(&needle) && !line_allows(infos, idx, "std-sync") {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: "std-sync-direct",
                message: "direct std sync primitive in a shim-migrated crate; \
                          import from `cpq_check::sync` so `--cfg cpq_model` \
                          can model it"
                    .to_string(),
            });
        }
    }
}

/// Rule `forbid-unsafe` (crate roots only).
fn check_forbid_unsafe(rel: &str, content: &str, findings: &mut Vec<Finding>) {
    let needle = pat(&["#![", "forbid(unsafe_code)]"]);
    if !content.contains(&needle) {
        findings.push(Finding {
            file: rel.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// Which crate (by directory name) a workspace-relative path belongs to,
/// or `None` for the facade `src/`.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
}

fn is_bin_path(rel: &str) -> bool {
    rel.contains("/bin/") || rel.ends_with("/main.rs")
}

/// Run every applicable rule over one file.
fn scan_file(rel: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let infos = classify(content);
    let krate = crate_of(rel);

    if rel.ends_with("/lib.rs") || rel == "src/lib.rs" {
        check_forbid_unsafe(rel, content, &mut findings);
    }

    check_ordering_comments(rel, &infos, &mut findings);

    // The checker crate is the lint's own infrastructure (and its model
    // engine is allowed internal invariant expects); binaries report
    // errors however suits a CLI.
    if krate != Some("check") && !is_bin_path(rel) {
        check_panic_paths(rel, &infos, &mut findings);
    }

    if krate.is_some_and(|k| SHIM_MIGRATED_CRATES.contains(&k)) && !is_bin_path(rel) {
        check_std_sync(rel, &infos, &mut findings);
    }

    findings
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
    {
        let entry = entry.map_err(|e| e.to_string())?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files).map_err(|e| e.to_string())?;
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        collect_rs_files(&facade_src, &mut files).map_err(|e| e.to_string())?;
    }
    files.sort();

    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        findings.extend(scan_file(&rel, &content));
    }
    Ok(findings)
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    match run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("cpq_lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("cpq_lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cpq_lint: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ordering_line(variant: &str) -> String {
        format!(
            "        x.store(1, {});\n",
            pat(&["Ordering", "::", variant])
        )
    }

    #[test]
    fn ordering_without_comment_is_flagged() {
        let content = format!("fn f() {{\n{}}}\n", ordering_line("Relaxed"));
        let findings = scan_file("crates/core/src/x.rs", &content);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "ordering-comment");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn ordering_with_nearby_comment_passes() {
        let content = format!(
            "fn f() {{\n    // ordering: Relaxed — plain counter.\n{}}}\n",
            ordering_line("Relaxed")
        );
        assert!(scan_file("crates/core/src/x.rs", &content).is_empty());
    }

    #[test]
    fn ordering_comment_window_is_bounded() {
        let filler = "    let y = 1;\n".repeat(ORDERING_COMMENT_WINDOW + 1);
        let content = format!(
            "fn f() {{\n    // ordering: too far away.\n{filler}{}}}\n",
            ordering_line("Acquire")
        );
        assert_eq!(scan_file("crates/core/src/x.rs", &content).len(), 1);
    }

    #[test]
    fn test_modules_are_exempt() {
        let content = format!(
            "#[cfg(test)]\nmod tests {{\n    fn f() {{\n{}\
                     let v = opt{};\n    }}\n}}\n",
            ordering_line("SeqCst"),
            pat(&[".", "unwrap()"]),
        );
        assert!(scan_file("crates/core/src/x.rs", &content).is_empty());
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged_and_waivable() {
        let unwrap = pat(&[".", "unwrap()"]);
        let bare = format!("fn f() {{\n    let v = opt{unwrap};\n}}\n");
        let findings = scan_file("crates/core/src/x.rs", &bare);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "panic-path");

        let waived = format!(
            "fn f() {{\n    // lint: allow(unwrap) — infallible by construction.\n    \
             let v = opt{unwrap};\n}}\n"
        );
        assert!(scan_file("crates/core/src/x.rs", &waived).is_empty());
    }

    #[test]
    fn poisoned_expect_convention_is_allowed() {
        let expect = pat(&[".", "expect("]);
        let content = format!("fn f() {{\n    let g = m.lock(){expect}\"mutex poisoned\");\n}}\n");
        assert!(scan_file("crates/core/src/x.rs", &content).is_empty());
        let other = format!("fn f() {{\n    let g = m.lock(){expect}\"fine\");\n}}\n");
        assert_eq!(scan_file("crates/core/src/x.rs", &other).len(), 1);
    }

    #[test]
    fn std_sync_applies_only_to_migrated_crates() {
        let import = format!("use {}{}Arc;\n", pat(&["std", "::", "sync"]), "::");
        let flagged = scan_file("crates/storage/src/x.rs", &import);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].rule, "std-sync-direct");
        assert!(scan_file("crates/rng/src/x.rs", &import).is_empty());
        assert!(scan_file("crates/check/src/x.rs", &import).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let content = format!(
            "// mentions {} in prose\nfn f() {{\n    let url = \"https://example\";\n}}\n",
            pat(&["std", "::", "sync"])
        );
        assert!(scan_file("crates/storage/src/x.rs", &content).is_empty());
    }

    #[test]
    fn lib_rs_requires_forbid_unsafe() {
        let findings = scan_file("crates/core/src/lib.rs", "pub mod x;\n");
        assert!(findings.iter().any(|f| f.rule == "forbid-unsafe"));
        let ok = format!("{}\npub mod x;\n", pat(&["#![", "forbid(unsafe_code)]"]));
        assert!(scan_file("crates/core/src/lib.rs", &ok).is_empty());
    }

    #[test]
    fn bins_are_exempt_from_panic_paths_but_not_ordering() {
        let unwrap = pat(&[".", "unwrap()"]);
        let content = format!(
            "fn main() {{\n    let v = opt{unwrap};\n{}}}\n",
            ordering_line("Relaxed")
        );
        let findings = scan_file("crates/bench/src/bin/tool.rs", &content);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "ordering-comment");
    }

    #[test]
    fn file_allow_disables_one_rule_for_one_file() {
        let content = format!(
            "// lint: file-allow(ordering) — modeled atomics are SeqCst by design.\n\
             fn f() {{\n{}}}\n",
            ordering_line("SeqCst")
        );
        assert!(scan_file("crates/obs/src/x.rs", &content).is_empty());
    }
}
