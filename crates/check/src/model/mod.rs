//! The model-checking runtime (compiled only under `--cfg cpq_model`).
//!
//! A model run executes a closure whose threads are spawned through
//! [`crate::thread::spawn`] and whose shared state lives behind
//! [`crate::sync`] types. Every visible operation (lock, unlock, condvar
//! wait/notify, atomic access, spawn, join, yield) is a *schedule point*:
//! the thread parks and a scheduler decides which thread performs its next
//! operation. Exactly one thread runs between consecutive schedule points,
//! so a run is fully determined by the sequence of scheduling choices —
//! which is what makes exhaustive exploration and seed replay possible.
//!
//! Two explorers are provided:
//!
//! * [`try_model_dfs`] — iterative-deepening-free bounded DFS over the
//!   choice tree, optionally CHESS-style preemption-bounded. Completing
//!   the search proves every interleaving within the bound upholds the
//!   model's assertions.
//! * [`try_model_pct`] — PCT-style randomized schedules: each seed assigns
//!   random thread priorities and random demotion points; the highest-
//!   priority schedulable thread always runs. Any failure reports the seed,
//!   and the same seed replays the identical schedule.
//!
//! Failures carry the full choice list, so a DFS-found bug is pinned with
//! [`replay`] and a PCT-found bug with a one-seed [`try_model_pct`] range.

mod exec;
pub(crate) mod shim;

use exec::{run_once, Chooser, IterationOutcome};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Options for bounded-DFS exploration.
#[derive(Debug, Clone)]
pub struct DfsOptions {
    /// CHESS-style preemption bound: `Some(k)` explores only schedules with
    /// at most `k` preemptive context switches (switches away from a thread
    /// that could have kept running). `None` is fully exhaustive. Most
    /// concurrency bugs manifest within 2 preemptions, and the bound tames
    /// the exponential blowup on models with more than a handful of
    /// operations per thread.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; exceeding it yields an incomplete
    /// (but passing) report rather than an endless test.
    pub max_schedules: u64,
    /// Hard cap on schedule points in a single run. Hitting it fails the
    /// model — it almost always means an unbounded spin loop, which a
    /// model closure must not contain (see the crate docs' ground rules).
    pub max_steps: usize,
}

impl Default for DfsOptions {
    fn default() -> Self {
        DfsOptions {
            preemption_bound: None,
            max_schedules: 500_000,
            max_steps: 50_000,
        }
    }
}

impl DfsOptions {
    /// The configuration the CI smoke tier uses for its small models:
    /// preemption bound 2 (the CHESS sweet spot), generous caps.
    pub fn smoke() -> Self {
        DfsOptions {
            preemption_bound: Some(2),
            ..DfsOptions::default()
        }
    }
}

/// Options for PCT-style randomized exploration.
#[derive(Debug, Clone)]
pub struct PctOptions {
    /// Seeds to run, one schedule per seed (`0..200` in the CI smoke tier).
    pub seeds: Range<u64>,
    /// Probability, at each scheduling choice, that the thread that just
    /// yielded is demoted below every other priority — the "priority
    /// change points" of PCT, in expectation one per `1/p` choices.
    pub change_prob: f64,
    /// Hard cap on schedule points in a single run (see
    /// [`DfsOptions::max_steps`]).
    pub max_steps: usize,
}

impl Default for PctOptions {
    fn default() -> Self {
        PctOptions {
            seeds: 0..200,
            change_prob: 0.1,
            max_steps: 50_000,
        }
    }
}

impl PctOptions {
    /// A single-seed range — used to replay a failure pinned by seed.
    pub fn one_seed(seed: u64) -> Self {
        PctOptions {
            seeds: seed..seed + 1,
            ..PctOptions::default()
        }
    }

    /// The CI configuration: like [`Default`], but the seed count scales
    /// with the `CPQ_MODEL_SEEDS` environment variable so `ci.sh --full`
    /// widens the randomized sweep without recompiling the harnesses.
    /// Unset or unparsable values fall back to the default 200 seeds.
    pub fn from_env() -> Self {
        let seeds = std::env::var("CPQ_MODEL_SEEDS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(200);
        PctOptions {
            seeds: 0..seeds,
            ..PctOptions::default()
        }
    }
}

/// Outcome of a completed (non-failing) exploration.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Schedules executed.
    pub schedules: u64,
    /// `true` when the whole (bounded) choice tree was explored; `false`
    /// when `max_schedules` cut the search short.
    pub complete: bool,
}

/// A failing schedule: what went wrong and how to reproduce it exactly.
#[derive(Debug, Clone)]
pub struct ModelFailure {
    /// The first panic message (assertion text, deadlock report, …).
    /// A second non-teardown panic observed while the run wound down is
    /// appended — the double-panic report.
    pub message: String,
    /// The branch choices taken, replayable via [`replay`].
    pub schedule: Vec<usize>,
    /// The PCT seed, when the failing schedule came from [`try_model_pct`].
    pub seed: Option<u64>,
    /// 1-based index of the failing schedule within the exploration.
    pub schedule_index: u64,
}

impl fmt::Display for ModelFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model failed on schedule #{}", self.schedule_index)?;
        if let Some(seed) = self.seed {
            write!(f, " (pct seed {seed})")?;
        }
        write!(
            f,
            ": {}\n  replay schedule: {:?}",
            self.message, self.schedule
        )
    }
}

impl std::error::Error for ModelFailure {}

fn share(f: impl Fn() + Send + Sync + 'static) -> Arc<dyn Fn() + Send + Sync> {
    Arc::new(f)
}

fn outcome_failure(
    out: &mut IterationOutcome,
    schedule_index: u64,
    seed: Option<u64>,
) -> Option<Box<ModelFailure>> {
    out.failure.take().map(|message| {
        Box::new(ModelFailure {
            message,
            schedule: std::mem::take(&mut out.schedule),
            seed,
            schedule_index,
        })
    })
}

/// Given the choices taken and the number of alternatives that existed at
/// each choice, compute the next DFS prefix: bump the deepest choice that
/// still has an unexplored sibling, dropping everything after it. `None`
/// means the tree is exhausted.
fn next_dfs_prefix(mut schedule: Vec<usize>, sizes: &[usize]) -> Option<Vec<usize>> {
    loop {
        let chosen = schedule.pop()?;
        if chosen + 1 < sizes[schedule.len()] {
            schedule.push(chosen + 1);
            return Some(schedule);
        }
    }
}

/// Bounded-DFS exploration; returns the failing schedule instead of
/// panicking.
pub fn try_model_dfs(
    opts: DfsOptions,
    f: impl Fn() + Send + Sync + 'static,
) -> Result<ModelReport, Box<ModelFailure>> {
    exec::install_panic_hook();
    let f = share(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules: u64 = 0;
    loop {
        schedules += 1;
        let mut out = run_once(
            Chooser::dfs(prefix, opts.preemption_bound),
            opts.max_steps,
            &f,
        );
        if let Some(failure) = outcome_failure(&mut out, schedules, None) {
            return Err(failure);
        }
        match next_dfs_prefix(out.schedule, &out.sizes) {
            None => {
                return Ok(ModelReport {
                    schedules,
                    complete: true,
                })
            }
            Some(_) if schedules >= opts.max_schedules => {
                return Ok(ModelReport {
                    schedules,
                    complete: false,
                })
            }
            Some(next) => prefix = next,
        }
    }
}

/// Bounded-DFS exploration; panics with the replayable schedule on failure.
pub fn model_dfs(opts: DfsOptions, f: impl Fn() + Send + Sync + 'static) -> ModelReport {
    match try_model_dfs(opts, f) {
        Ok(report) => report,
        Err(failure) => panic!("{failure}"),
    }
}

/// Fully-exhaustive DFS with default options; panics on failure. The
/// entry point for small permanent models.
pub fn model(f: impl Fn() + Send + Sync + 'static) -> ModelReport {
    model_dfs(DfsOptions::default(), f)
}

/// PCT-style randomized exploration over a seed range; returns the failing
/// seed + schedule instead of panicking. `Ok` carries the number of
/// schedules run.
pub fn try_model_pct(
    opts: PctOptions,
    f: impl Fn() + Send + Sync + 'static,
) -> Result<u64, Box<ModelFailure>> {
    exec::install_panic_hook();
    let f = share(f);
    let mut schedules: u64 = 0;
    for seed in opts.seeds.clone() {
        schedules += 1;
        let mut out = run_once(Chooser::pct(seed, opts.change_prob), opts.max_steps, &f);
        if let Some(failure) = outcome_failure(&mut out, schedules, Some(seed)) {
            return Err(failure);
        }
    }
    Ok(schedules)
}

/// PCT-style randomized exploration; panics with the failing seed on
/// failure, returning the number of schedules run otherwise.
pub fn model_pct(opts: PctOptions, f: impl Fn() + Send + Sync + 'static) -> u64 {
    match try_model_pct(opts, f) {
        Ok(n) => n,
        Err(failure) => panic!("{failure}"),
    }
}

/// Re-run one specific schedule (from [`ModelFailure::schedule`]); returns
/// the failure it reproduces, if any.
///
/// Replay follows the recorded branch choices and takes the first
/// alternative at any point past the end of the recording, so a pinned
/// failing schedule deterministically reaches its failure.
pub fn try_replay(
    schedule: &[usize],
    f: impl Fn() + Send + Sync + 'static,
) -> Result<(), Box<ModelFailure>> {
    exec::install_panic_hook();
    let f = share(f);
    let mut out = run_once(
        Chooser::dfs(schedule.to_vec(), None),
        DfsOptions::default().max_steps,
        &f,
    );
    match outcome_failure(&mut out, 1, None) {
        Some(failure) => Err(failure),
        None => Ok(()),
    }
}

/// Re-run one specific schedule, panicking with the reproduced failure.
/// Used by pinned `#[should_panic]` regression tests.
pub fn replay(schedule: &[usize], f: impl Fn() + Send + Sync + 'static) {
    if let Err(failure) = try_replay(schedule, f) {
        panic!("{failure}");
    }
}
