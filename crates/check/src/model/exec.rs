//! The cooperative execution engine: one OS thread per model thread, at
//! most one unparked at a time, every shim operation a schedule point.
//!
//! ## How a run works
//!
//! [`run_once`] builds a fresh [`Exec`], registers model thread 0 as the
//! initial gate holder, spawns an OS thread for it, and waits until every
//! model thread has finished. A model thread executes user code only while
//! it holds the *gate* (`ExecState::gate == Some(tid)`); every shim
//! operation funnels through [`Exec::op`], which releases the gate, lets
//! the chooser pick the next runner, and parks until re-gated. Blocking
//! operations (contended lock, condvar wait, join) park the thread in a
//! [`Run`] state that the matching release/notify/finish transitions back
//! to `Ready`.
//!
//! ## Teardown
//!
//! The first failure (assertion panic, deadlock, step-budget blowout)
//! records a message plus the branch schedule and sets `abort`; every
//! still-parked thread is then unwound with a private [`TeardownPanic`]
//! payload so its destructors run and its OS thread exits. A *second*
//! non-teardown panic observed during this drain is appended to the
//! original message — that is the double-panic report. A process-global
//! panic hook suppresses the default "thread panicked" stderr noise for
//! teardown unwinds (and for model assertion panics, which are reported
//! through [`IterationOutcome::failure`] instead).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

use cpq_rng::Rng;

/// Unique ids for modeled objects (mutexes, rwlocks, condvars, atomics).
/// Process-global so ids never collide across overlapping executions; the
/// per-execution state for an object is created lazily on first use.
static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_object_id() -> u64 {
    // ordering: Relaxed — a pure id allocator; only uniqueness matters and
    // fetch_add is atomic at any ordering, no other memory is published.
    NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The execution + model-thread id this OS thread belongs to, if any.
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    /// Set while this thread is being unwound by the scheduler, so the
    /// panic hook can stay silent.
    static TEARING_DOWN: RefCell<bool> = const { RefCell::new(false) };
}

/// Handle to the ambient model execution, cloned per shim operation.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) tid: usize,
}

/// The ambient execution context, or `None` when the calling thread is not
/// a model thread (shim types then fall back to plain std behavior).
pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Panic payload used to unwind parked threads after a failure. Private to
/// the engine: user code never sees or throws it.
struct TeardownPanic;

/// What a model thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Run {
    /// Schedulable: will perform its next operation when gated.
    Ready,
    /// Parked on a contended mutex.
    BlockedMutex(u64),
    /// Parked waiting for a rwlock read lock (a writer holds it).
    BlockedRead(u64),
    /// Parked waiting for a rwlock write lock.
    BlockedWrite(u64),
    /// Parked in a condvar wait. `notified` flips when a notify reaches
    /// this thread; `can_timeout` marks `wait_timeout`, which the model
    /// treats as always allowed to wake spuriously (a timeout can fire
    /// under any real schedule), keeping periodic-wakeup loops live.
    CondWait { notified: bool, can_timeout: bool },
    /// Parked in `join` on another model thread.
    BlockedJoin(usize),
    /// Done (returned or unwound); never scheduled again.
    Finished,
}

impl Run {
    fn schedulable(&self) -> bool {
        match self {
            Run::Ready => true,
            Run::CondWait {
                notified,
                can_timeout,
            } => *notified || *can_timeout,
            _ => false,
        }
    }
}

/// Per-execution state of one modeled synchronization object.
#[derive(Debug)]
enum Obj {
    Mutex {
        owner: Option<usize>,
    },
    RwLock {
        writer: Option<usize>,
        readers: usize,
    },
    /// `waiters` holds the tids parked on this condvar that have not yet
    /// been claimed by a notify, in arrival order.
    Condvar {
        waiters: Vec<usize>,
    },
}

/// How the scheduler picks among schedulable threads.
pub(crate) enum Chooser {
    Dfs {
        /// Branch choices to follow before switching to first-alternative.
        replay: Vec<usize>,
        preemption_bound: Option<usize>,
        preemptions: usize,
    },
    Pct {
        rng: Rng,
        change_prob: f64,
        /// Per-thread priority; higher runs first. Random draws are
        /// non-negative, demotions use strictly decreasing negatives so a
        /// demoted thread ranks below everything seen so far.
        prio: Vec<i64>,
        next_low: i64,
    },
}

impl Chooser {
    pub(crate) fn dfs(replay: Vec<usize>, preemption_bound: Option<usize>) -> Chooser {
        Chooser::Dfs {
            replay,
            preemption_bound,
            preemptions: 0,
        }
    }

    pub(crate) fn pct(seed: u64, change_prob: f64) -> Chooser {
        Chooser::Pct {
            rng: Rng::seed_from_u64(seed),
            change_prob,
            prio: Vec::new(),
            next_low: -1,
        }
    }

    /// Priority for a newly registered thread (PCT only).
    fn register_thread(&mut self) {
        if let Chooser::Pct { rng, prio, .. } = self {
            prio.push((rng.next_u64() >> 1) as i64);
        }
    }
}

/// Outcome of `Exec::op`'s action closure.
pub(crate) enum Op<R> {
    /// Operation completed; the thread keeps the gate and resumes user code.
    Done(R),
    /// Operation must park; the thread re-runs the closure when re-gated.
    Block(Run),
}

pub(crate) struct ExecState {
    threads: Vec<Run>,
    objects: HashMap<u64, Obj>,
    /// The model thread currently allowed to run, if any.
    gate: Option<usize>,
    /// The thread that made the previous step (for preemption accounting
    /// and PCT demotion points).
    last: Option<usize>,
    chooser: Chooser,
    /// Branch-choice record of this run: `schedule[i]` is the index chosen
    /// among `sizes[i]` schedulable candidates at decision `i`. Forced
    /// moves (a single candidate) are not recorded.
    schedule: Vec<usize>,
    sizes: Vec<usize>,
    steps: usize,
    max_steps: usize,
    /// First failure message (later non-teardown panics are appended).
    failure: Option<String>,
    /// Set on failure: parked threads unwind, arriving threads unwind.
    abort: bool,
    /// Model threads not yet `Finished`.
    alive: usize,
    /// OS handles for every spawned model thread except thread 0 (whose
    /// handle the controller holds directly).
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    /// Record a failure (first wins; the rest append) and begin teardown.
    fn fail(&mut self, message: String) {
        match &mut self.failure {
            None => self.failure = Some(message),
            Some(existing) => {
                let _ = write!(existing, "\n  additionally: {message}");
            }
        }
        self.abort = true;
        self.gate = None;
    }

    fn schedulable_candidates(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t].schedulable())
            .collect()
    }

    /// Pick the next gate holder. Called with the gate conceptually free
    /// (the previous runner recorded in `last`).
    fn pick_next(&mut self) {
        if self.abort {
            return;
        }
        let candidates = self.schedulable_candidates();
        if candidates.is_empty() {
            if self.alive == 0 {
                self.gate = None;
            } else {
                let mut msg = String::from(
                    "deadlock: live threads but none schedulable \
                     (a lost wakeup also surfaces here); thread states:",
                );
                for (t, run) in self.threads.iter().enumerate() {
                    let _ = write!(msg, " [{t}: {run:?}]");
                }
                self.fail(msg);
            }
            return;
        }
        self.steps += 1;
        if self.steps > self.max_steps {
            self.fail(format!(
                "schedule exceeded max_steps ({}): the model likely contains \
                 an unbounded spin/retry loop, which model closures must not",
                self.max_steps
            ));
            return;
        }
        let chosen = if candidates.len() == 1 {
            // Forced move: no branch to record or explore.
            candidates[0]
        } else {
            self.choose(&candidates)
        };
        if self.abort {
            return;
        }
        if let Chooser::Dfs { preemptions, .. } = &mut self.chooser {
            if let Some(last) = self.last {
                if chosen != last && self.threads[last].schedulable() {
                    *preemptions += 1;
                }
            }
        }
        self.gate = Some(chosen);
    }

    fn choose(&mut self, candidates: &[usize]) -> usize {
        match &mut self.chooser {
            Chooser::Dfs {
                replay,
                preemption_bound,
                preemptions,
            } => {
                // Preemption budget spent: stick with the previous runner
                // when it can keep going — a forced move, not a branch, so
                // the bounded tree stays finite and replayable.
                if let Some(bound) = preemption_bound {
                    if *preemptions >= *bound {
                        if let Some(last) = self.last {
                            if self.threads[last].schedulable() {
                                return last;
                            }
                        }
                    }
                }
                let depth = self.schedule.len();
                let idx = replay.get(depth).copied().unwrap_or(0);
                if idx >= candidates.len() {
                    self.fail(format!(
                        "replay divergence at depth {depth}: choice {idx} of \
                         {} candidates — the model closure is not \
                         deterministic",
                        candidates.len()
                    ));
                    return candidates[0];
                }
                self.schedule.push(idx);
                self.sizes.push(candidates.len());
                candidates[idx]
            }
            Chooser::Pct {
                rng,
                change_prob,
                prio,
                next_low,
            } => {
                // A PCT change point demotes the thread that just yielded
                // below every priority handed out so far.
                if rng.random_bool(*change_prob) {
                    if let Some(last) = self.last {
                        prio[last] = *next_low;
                        *next_low -= 1;
                    }
                }
                let chosen = candidates
                    .iter()
                    .copied()
                    .max_by_key(|&t| prio[t])
                    .expect("candidates non-empty");
                // Record the branch too, so PCT failures replay without
                // the RNG as well.
                let idx = candidates
                    .iter()
                    .position(|&t| t == chosen)
                    .expect("chosen is a candidate");
                self.schedule.push(idx);
                self.sizes.push(candidates.len());
                chosen
            }
        }
    }

    /// Wake every thread parked on `pred`-matching state.
    fn wake_where(&mut self, pred: impl Fn(&Run) -> bool) {
        for run in &mut self.threads {
            if pred(run) {
                *run = Run::Ready;
            }
        }
    }
}

pub(crate) struct Exec {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

/// The outcome of a single schedule.
pub(crate) struct IterationOutcome {
    pub(crate) schedule: Vec<usize>,
    pub(crate) sizes: Vec<usize>,
    pub(crate) failure: Option<String>,
}

impl Exec {
    fn lock(&self) -> StdMutexGuard<'_, ExecState> {
        // A model thread can panic (assertion failure) while the engine's
        // own state lock is *not* held, so poisoning can only come from a
        // panic inside this module's short critical sections — treat it as
        // recoverable to keep teardown moving.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Unwind the calling model thread on behalf of the scheduler.
    fn teardown(&self) -> ! {
        TEARING_DOWN.with(|t| *t.borrow_mut() = true);
        std::panic::panic_any(TeardownPanic)
    }

    /// The heart of the engine: execute one modeled operation.
    ///
    /// On entry the calling thread yields the gate (a schedule point), then
    /// parks until re-gated, then runs `action` under the state lock.
    /// `Op::Done` keeps the gate and returns; `Op::Block` parks in the
    /// returned `Run` state and re-runs `action` when re-gated (actions are
    /// `FnMut` state machines for two-phase operations like condvar waits).
    pub(crate) fn op<R>(
        &self,
        tid: usize,
        mut action: impl FnMut(&mut ExecState, usize) -> Op<R>,
    ) -> R {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            self.teardown();
        }
        // Schedule point: hand the gate back before acting.
        if st.gate == Some(tid) {
            st.last = Some(tid);
            st.pick_next();
            self.cv.notify_all();
        }
        loop {
            while st.gate != Some(tid) {
                if st.abort {
                    drop(st);
                    self.teardown();
                }
                st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            if st.abort {
                drop(st);
                self.teardown();
            }
            match action(&mut st, tid) {
                Op::Done(r) => {
                    st.threads[tid] = Run::Ready;
                    if st.abort {
                        // The action itself failed the model.
                        drop(st);
                        self.teardown();
                    }
                    return r;
                }
                Op::Block(run) => {
                    st.threads[tid] = run;
                    st.last = Some(tid);
                    st.pick_next();
                    self.cv.notify_all();
                }
            }
        }
    }

    /// Park until the scheduler gates this thread, *without* yielding first.
    /// Used once per thread before its closure runs: unlike `op`, arriving
    /// here must not be a schedule point, because arrival time depends on
    /// OS spawn latency and an extra yield would make the branch structure
    /// nondeterministic across runs.
    fn start_barrier(&self, tid: usize) {
        let mut st = self.lock();
        loop {
            if st.abort {
                drop(st);
                self.teardown();
            }
            if st.gate == Some(tid) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Mutate execution state without a schedule point. Used for cleanup
    /// during a panic unwind (guard drops while `std::thread::panicking()`)
    /// where parking would self-deadlock; the bookkeeping still has to
    /// happen so teardown sees consistent state.
    pub(crate) fn direct(&self, f: impl FnOnce(&mut ExecState)) {
        let mut st = self.lock();
        f(&mut st);
        self.cv.notify_all();
    }

    /// Register a new model thread (caller must currently hold the gate via
    /// an `op`); returns its tid.
    pub(crate) fn register_thread(st: &mut ExecState) -> usize {
        let tid = st.threads.len();
        st.threads.push(Run::Ready);
        st.chooser.register_thread();
        st.alive += 1;
        tid
    }

    fn add_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock().os_handles.push(handle);
    }

    /// Wait (without scheduling — for non-model callers only) until model
    /// thread `tid` finishes. Model threads drive the schedule themselves,
    /// so a plain condvar wait here cannot stall them.
    pub(crate) fn wait_finished(&self, tid: usize) {
        let mut st = self.lock();
        while !st.join_target_finished(tid) {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Called by the thread wrapper when a model thread's closure returns
    /// or unwinds. `panic_msg` is `Some` only for non-teardown panics.
    fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.threads[tid] = Run::Finished;
        st.alive -= 1;
        st.wake_where(|run| *run == Run::BlockedJoin(tid));
        match panic_msg {
            Some(msg) => {
                let schedule = st.schedule.clone();
                st.fail(format!(
                    "thread {tid} panicked: {msg} (schedule so far: {schedule:?})"
                ));
            }
            None => {
                if st.gate == Some(tid) {
                    st.last = Some(tid);
                    st.pick_next();
                }
            }
        }
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Modeled-object operations, called from `op` actions in the shim.
// ---------------------------------------------------------------------------

impl ExecState {
    fn obj(&mut self, id: u64, init: impl FnOnce() -> Obj) -> &mut Obj {
        self.objects.entry(id).or_insert_with(init)
    }

    pub(crate) fn mutex_lock(&mut self, id: u64, tid: usize) -> Op<()> {
        match self.obj(id, || Obj::Mutex { owner: None }) {
            Obj::Mutex { owner } => match *owner {
                None => {
                    *owner = Some(tid);
                    Op::Done(())
                }
                Some(holder) if holder == tid => {
                    self.fail(format!(
                        "thread {tid} re-locked a mutex it already holds \
                         (guaranteed self-deadlock)"
                    ));
                    Op::Block(Run::BlockedMutex(id))
                }
                Some(_) => Op::Block(Run::BlockedMutex(id)),
            },
            other => {
                let msg = format!("object {id} is not a mutex: {other:?}");
                self.fail(msg);
                Op::Done(())
            }
        }
    }

    pub(crate) fn mutex_try_lock(&mut self, id: u64, tid: usize) -> Op<bool> {
        match self.obj(id, || Obj::Mutex { owner: None }) {
            Obj::Mutex { owner } => match *owner {
                None => {
                    *owner = Some(tid);
                    Op::Done(true)
                }
                Some(_) => Op::Done(false),
            },
            _ => Op::Done(false),
        }
    }

    pub(crate) fn mutex_unlock(&mut self, id: u64) {
        if let Some(Obj::Mutex { owner }) = self.objects.get_mut(&id) {
            *owner = None;
        }
        self.wake_where(|run| *run == Run::BlockedMutex(id));
    }

    pub(crate) fn rw_read_lock(&mut self, id: u64, _tid: usize) -> Op<()> {
        match self.obj(id, || Obj::RwLock {
            writer: None,
            readers: 0,
        }) {
            Obj::RwLock { writer, readers } => {
                if writer.is_none() {
                    *readers += 1;
                    Op::Done(())
                } else {
                    Op::Block(Run::BlockedRead(id))
                }
            }
            other => {
                let msg = format!("object {id} is not a rwlock: {other:?}");
                self.fail(msg);
                Op::Done(())
            }
        }
    }

    pub(crate) fn rw_write_lock(&mut self, id: u64, tid: usize) -> Op<()> {
        match self.obj(id, || Obj::RwLock {
            writer: None,
            readers: 0,
        }) {
            Obj::RwLock { writer, readers } => {
                if *writer == Some(tid) {
                    self.fail(format!(
                        "thread {tid} re-locked a rwlock it already holds for \
                         writing (guaranteed self-deadlock)"
                    ));
                    return Op::Block(Run::BlockedWrite(id));
                }
                if writer.is_none() && *readers == 0 {
                    *writer = Some(tid);
                    Op::Done(())
                } else {
                    Op::Block(Run::BlockedWrite(id))
                }
            }
            other => {
                let msg = format!("object {id} is not a rwlock: {other:?}");
                self.fail(msg);
                Op::Done(())
            }
        }
    }

    pub(crate) fn rw_read_unlock(&mut self, id: u64) {
        if let Some(Obj::RwLock { readers, .. }) = self.objects.get_mut(&id) {
            *readers = readers.saturating_sub(1);
        }
        self.wake_where(|run| *run == Run::BlockedRead(id) || *run == Run::BlockedWrite(id));
    }

    pub(crate) fn rw_write_unlock(&mut self, id: u64) {
        if let Some(Obj::RwLock { writer, .. }) = self.objects.get_mut(&id) {
            *writer = None;
        }
        self.wake_where(|run| *run == Run::BlockedRead(id) || *run == Run::BlockedWrite(id));
    }

    /// Phase 1 of a condvar wait: atomically release the mutex and park on
    /// the condvar (exactly the std contract).
    pub(crate) fn cond_wait_begin(
        &mut self,
        cv_id: u64,
        mutex_id: u64,
        tid: usize,
        can_timeout: bool,
    ) -> Op<()> {
        match self.obj(cv_id, || Obj::Condvar {
            waiters: Vec::new(),
        }) {
            Obj::Condvar { waiters } => waiters.push(tid),
            other => {
                let msg = format!("object {cv_id} is not a condvar: {other:?}");
                self.fail(msg);
            }
        }
        self.mutex_unlock(mutex_id);
        Op::Block(Run::CondWait {
            notified: false,
            can_timeout,
        })
    }

    /// Phase 2: the wait was re-scheduled. Returns `true` when the wake is
    /// a timeout (the thread was never claimed by a notify and must remove
    /// itself from the waiter list).
    pub(crate) fn cond_wait_finish(&mut self, cv_id: u64, tid: usize) -> bool {
        let notified = matches!(self.threads[tid], Run::CondWait { notified: true, .. });
        if !notified {
            if let Some(Obj::Condvar { waiters }) = self.objects.get_mut(&cv_id) {
                waiters.retain(|&t| t != tid);
            }
        }
        !notified
    }

    pub(crate) fn cond_notify(&mut self, cv_id: u64, all: bool) {
        let woken: Vec<usize> = match self.objects.get_mut(&cv_id) {
            Some(Obj::Condvar { waiters }) => {
                if all {
                    std::mem::take(waiters)
                } else if waiters.is_empty() {
                    Vec::new()
                } else {
                    vec![waiters.remove(0)]
                }
            }
            _ => Vec::new(),
        };
        for tid in woken {
            if let Run::CondWait { notified, .. } = &mut self.threads[tid] {
                *notified = true;
            }
        }
    }

    pub(crate) fn join_target_finished(&self, target: usize) -> bool {
        self.threads[target] == Run::Finished
    }
}

// ---------------------------------------------------------------------------
// Thread wrappers and the run controller.
// ---------------------------------------------------------------------------

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("(non-string panic payload)")
    }
}

/// Spawn the OS thread backing model thread `tid`. `result` receives the
/// closure's return value for `join` (None for thread 0, whose value is
/// discarded).
pub(crate) fn spawn_model_thread<T: Send + 'static>(
    exec: &Arc<Exec>,
    tid: usize,
    f: impl FnOnce() -> T + Send + 'static,
    result: Option<Arc<StdMutex<Option<T>>>>,
) -> std::thread::JoinHandle<()> {
    let exec = Arc::clone(exec);
    std::thread::Builder::new()
        .name(format!("cpq-model-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    exec: Arc::clone(&exec),
                    tid,
                })
            });
            // Park until first scheduled, so no user code ever runs
            // concurrently with the spawner.
            let started = catch_unwind(AssertUnwindSafe(|| {
                exec.start_barrier(tid);
            }));
            let outcome = match started {
                Ok(()) => catch_unwind(AssertUnwindSafe(f)),
                Err(payload) => Err(payload),
            };
            match outcome {
                Ok(value) => {
                    if let Some(slot) = &result {
                        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
                    }
                    exec.finish_thread(tid, None);
                }
                Err(payload) => {
                    if payload.is::<TeardownPanic>() {
                        exec.finish_thread(tid, None);
                    } else {
                        exec.finish_thread(tid, Some(panic_message(payload.as_ref())));
                    }
                }
            }
        })
        .expect("failed to spawn model OS thread")
}

/// Register `handle` so the controller joins it at the end of the run.
pub(crate) fn adopt_os_handle(exec: &Arc<Exec>, handle: std::thread::JoinHandle<()>) {
    exec.add_os_handle(handle);
}

/// Execute the model closure once under `chooser`, to completion or first
/// failure, and return the branch record.
pub(crate) fn run_once(
    chooser: Chooser,
    max_steps: usize,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> IterationOutcome {
    let mut chooser = chooser;
    chooser.register_thread(); // thread 0
    let exec = Arc::new(Exec {
        state: StdMutex::new(ExecState {
            threads: vec![Run::Ready],
            objects: HashMap::new(),
            gate: Some(0),
            last: None,
            chooser,
            schedule: Vec::new(),
            sizes: Vec::new(),
            steps: 0,
            max_steps,
            failure: None,
            abort: false,
            alive: 1,
            os_handles: Vec::new(),
        }),
        cv: StdCondvar::new(),
    });
    let f = Arc::clone(f);
    let root = spawn_model_thread(&exec, 0, move || f(), None);

    let (failure, schedule, sizes, handles) = {
        let mut st = exec.lock();
        while st.alive > 0 {
            st = exec.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        (
            st.failure.take(),
            std::mem::take(&mut st.schedule),
            std::mem::take(&mut st.sizes),
            std::mem::take(&mut st.os_handles),
        )
    };
    // Every model thread has reached `finish_thread`; joining only waits
    // for the OS threads to run off the end of their wrappers.
    let _ = root.join();
    for handle in handles {
        let _ = handle.join();
    }
    IterationOutcome {
        schedule,
        sizes,
        failure,
    }
}

/// Install (once per process) a panic hook that silences model-thread
/// panics: teardown unwinds are pure bookkeeping, and assertion failures
/// are reported through the model failure instead of stderr.
pub(crate) fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model =
                TEARING_DOWN.with(|t| *t.borrow()) || CURRENT.with(|c| c.borrow().is_some());
            if !in_model {
                previous(info);
            }
        }));
    });
}
