//! Modeled replacements for the `std::sync` / `std::thread` types the
//! workspace uses, active under `--cfg cpq_model`.
//!
//! Every type wraps its std counterpart (the *inner* primitive still
//! provides real mutual exclusion and atomicity) plus a model object id.
//! When the calling thread belongs to a model execution, each visible
//! operation first goes through the scheduler — acquiring a contended lock
//! parks the model thread, a condvar wait parks it until a modeled notify,
//! an atomic access is a schedule point executed sequentially consistently
//! under the scheduler's gate. When no execution is ambient (ordinary test
//! code, or a thread unwinding from a panic), every operation falls back
//! to plain std behavior.
//!
//! This file *implements* the modeled atomics: callers' orderings are
//! accepted and deliberately executed SeqCst under the scheduler gate (the
//! model explores interleavings, not hardware reorderings), so per-site
//! ordering justifications are meaningless here — hence the file-wide
//! waiver below.
//!
//! Mixing model and non-model threads on the *same* lock or condvar is
//! not supported: a modeled notify does not reach a std waiter. Model
//! closures follow the ground rules in the crate docs, so this never
//! arises in practice.

// analyze: allow-file(ordering-comment) — modeled atomics execute SeqCst
// under the scheduler gate regardless of the caller's ordering, so
// per-site justifications carry no information in this file.

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{
    Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    RwLock as StdRwLock, RwLockReadGuard as StdRwLockReadGuard,
    RwLockWriteGuard as StdRwLockWriteGuard, TryLockError, TryLockResult,
};
use std::time::Duration;

use super::exec::{
    adopt_os_handle, current, next_object_id, spawn_model_thread, Ctx, Exec, Op, Run,
};

/// The ambient model context, or `None` when the operation should fall
/// back to std: the thread is not a model thread, or it is unwinding from
/// a panic (parking during unwind would self-deadlock; guard bookkeeping
/// on that path goes through `Exec::direct` instead).
fn model_ctx() -> Option<Ctx> {
    if std::thread::panicking() {
        return None;
    }
    current()
}

fn relock<T: ?Sized>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    // Poison on the inner std primitive is not an error channel here: the
    // model reports panics through the scheduler, and fallback mode keeps
    // std behavior close enough for tests.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Modeled `std::sync::Mutex`: contended acquisition parks the model
/// thread; acquisition and release are schedule points.
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new modeled mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: next_object_id(),
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (a schedule point; parks while contended).
    /// Never returns `Err`: the model reports poisoning through the
    /// scheduler, and fallback mode recovers the inner value.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = model_ctx();
        if let Some(ctx) = &ctx {
            let id = self.id;
            ctx.exec.op(ctx.tid, move |st, tid| st.mutex_lock(id, tid));
        }
        Ok(MutexGuard {
            lock: self,
            inner: Some(relock(&self.inner)),
            ctx,
        })
    }

    /// Attempt the lock without parking (still a schedule point).
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        let ctx = model_ctx();
        if let Some(ctx) = &ctx {
            let id = self.id;
            let acquired = ctx
                .exec
                .op(ctx.tid, move |st, tid| st.mutex_try_lock(id, tid));
            if !acquired {
                return Err(TryLockError::WouldBlock);
            }
            return Ok(MutexGuard {
                lock: self,
                inner: Some(relock(&self.inner)),
                ctx: Some(ctx.clone()),
            });
        }
        match self.inner.try_lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                ctx: None,
            }),
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(p)) => Ok(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                ctx: None,
            }),
        }
    }

    /// Mutable access without locking (exclusivity via `&mut`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(v) => f.debug_struct("Mutex").field("data", &&*v).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard for [`Mutex`]; release is a schedule point.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// `Some` when acquisition went through the scheduler, so release must
    /// update the model state too.
    ctx: Option<Ctx>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Release the real lock and detach from the model *without* a modeled
    /// unlock — used by condvar waits, whose "release" is part of the
    /// atomic wait-begin transition.
    fn dismantle(mut self) -> &'a Mutex<T> {
        self.inner = None;
        self.ctx = None;
        self.lock
    }

    /// Move the inner std guard out for a fallback condvar wait.
    fn take_inner(mut self) -> StdMutexGuard<'a, T> {
        self.ctx = None;
        self.inner.take().expect("guard still holds the inner lock")
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard still holds the inner lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard still holds the inner lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first; the gate keeps other model threads
        // parked until our next schedule point, so no one observes the
        // window between the real and the modeled release.
        self.inner = None;
        if let Some(ctx) = self.ctx.take() {
            let id = self.lock.id;
            if std::thread::panicking() {
                ctx.exec.direct(|st| st.mutex_unlock(id));
            } else {
                ctx.exec.op(ctx.tid, move |st, _| {
                    st.mutex_unlock(id);
                    Op::Done(())
                });
            }
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a modeled `wait_timeout`; mirrors the std API surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended by timing out rather than by a notify.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Modeled `std::sync::Condvar` with the exact std wait/notify contract:
/// the mutex release and wait registration are one atomic transition, and
/// a notify wakes only threads already parked.
///
/// `wait_timeout` waiters are always *eligible* to wake spuriously — a
/// real timeout can fire under any schedule — which both keeps periodic
/// wakeup loops live and lets the checker explore timeout paths.
pub struct Condvar {
    id: u64,
    inner: StdCondvar,
}

impl Condvar {
    /// Create a new modeled condvar.
    pub fn new() -> Condvar {
        Condvar {
            id: next_object_id(),
            inner: StdCondvar::new(),
        }
    }

    /// Park until notified, releasing (and then reacquiring) the mutex.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.ctx.clone() {
            Some(ctx) => {
                let mutex = guard.dismantle();
                let cv_id = self.id;
                let mutex_id = mutex.id;
                let mut registered = false;
                ctx.exec.op(ctx.tid, move |st, tid| {
                    if !registered {
                        registered = true;
                        return st.cond_wait_begin(cv_id, mutex_id, tid, false);
                    }
                    st.cond_wait_finish(cv_id, tid);
                    Op::Done(())
                });
                mutex.lock()
            }
            None => {
                let lock = guard.lock;
                let std_guard = guard.take_inner();
                let woken = self
                    .inner
                    .wait(std_guard)
                    .unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard {
                    lock,
                    inner: Some(woken),
                    ctx: None,
                })
            }
        }
    }

    /// Park until notified or (nondeterministically, under the model) a
    /// timeout; the boolean in the result reports which.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match guard.ctx.clone() {
            Some(ctx) => {
                let mutex = guard.dismantle();
                let cv_id = self.id;
                let mutex_id = mutex.id;
                let mut registered = false;
                let timed_out = ctx.exec.op(ctx.tid, move |st, tid| {
                    if !registered {
                        registered = true;
                        return match st.cond_wait_begin(cv_id, mutex_id, tid, true) {
                            Op::Block(run) => Op::Block(run),
                            Op::Done(()) => Op::Done(false),
                        };
                    }
                    Op::Done(st.cond_wait_finish(cv_id, tid))
                });
                let reacquired = match mutex.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                Ok((reacquired, WaitTimeoutResult(timed_out)))
            }
            None => {
                let lock = guard.lock;
                let std_guard = guard.take_inner();
                let (woken, res) = self
                    .inner
                    .wait_timeout(std_guard, dur)
                    .unwrap_or_else(|p| p.into_inner());
                Ok((
                    MutexGuard {
                        lock,
                        inner: Some(woken),
                        ctx: None,
                    },
                    WaitTimeoutResult(res.timed_out()),
                ))
            }
        }
    }

    /// Wake one parked waiter (a schedule point under the model).
    pub fn notify_one(&self) {
        match model_ctx() {
            Some(ctx) => {
                let id = self.id;
                ctx.exec.op(ctx.tid, move |st, _| {
                    st.cond_notify(id, false);
                    Op::Done(())
                });
            }
            None => self.inner.notify_one(),
        }
    }

    /// Wake every parked waiter (a schedule point under the model).
    pub fn notify_all(&self) {
        match model_ctx() {
            Some(ctx) => {
                let id = self.id;
                ctx.exec.op(ctx.tid, move |st, _| {
                    st.cond_notify(id, true);
                    Op::Done(())
                });
            }
            None => self.inner.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Modeled `std::sync::RwLock`: readers share, a writer excludes; both
/// directions park while contended and every transition is a schedule
/// point. Writer preference is not modeled — any eligible waiter may be
/// scheduled, which is a superset of real acquisition orders.
pub struct RwLock<T: ?Sized> {
    id: u64,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new modeled rwlock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            id: next_object_id(),
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock (a schedule point; parks while a writer
    /// holds the lock). Never returns `Err` (see [`Mutex::lock`]).
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let ctx = model_ctx();
        if let Some(ctx) = &ctx {
            let id = self.id;
            ctx.exec
                .op(ctx.tid, move |st, tid| st.rw_read_lock(id, tid));
        }
        Ok(RwLockReadGuard {
            lock: self,
            inner: Some(self.inner.read().unwrap_or_else(|p| p.into_inner())),
            ctx,
        })
    }

    /// Acquire the exclusive write lock (a schedule point; parks while
    /// readers or a writer hold the lock).
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let ctx = model_ctx();
        if let Some(ctx) = &ctx {
            let id = self.id;
            ctx.exec
                .op(ctx.tid, move |st, tid| st.rw_write_lock(id, tid));
        }
        Ok(RwLockWriteGuard {
            lock: self,
            inner: Some(self.inner.write().unwrap_or_else(|p| p.into_inner())),
            ctx,
        })
    }

    /// Mutable access without locking (exclusivity via `&mut`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(v) => f.debug_struct("RwLock").field("data", &&*v).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Shared-read guard for [`RwLock`]; release is a schedule point.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockReadGuard<'a, T>>,
    ctx: Option<Ctx>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard still holds the inner lock")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(ctx) = self.ctx.take() {
            let id = self.lock.id;
            if std::thread::panicking() {
                ctx.exec.direct(|st| st.rw_read_unlock(id));
            } else {
                ctx.exec.op(ctx.tid, move |st, _| {
                    st.rw_read_unlock(id);
                    Op::Done(())
                });
            }
        }
    }
}

/// Exclusive-write guard for [`RwLock`]; release is a schedule point.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
    ctx: Option<Ctx>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard still holds the inner lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard still holds the inner lock")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(ctx) = self.ctx.take() {
            let id = self.lock.id;
            if std::thread::panicking() {
                ctx.exec.direct(|st| st.rw_write_unlock(id));
            } else {
                ctx.exec.op(ctx.tid, move |st, _| {
                    st.rw_write_unlock(id);
                    Op::Done(())
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Run one atomic operation as a schedule point. The inner std atomic is
/// mutated while the calling thread holds the scheduler gate, so modeled
/// atomics are sequentially consistent at interleaving granularity
/// regardless of the `Ordering` the caller names (the checker explores
/// orderings *of operations*, not hardware reorderings below them).
fn atomic_op<R>(f: impl Fn() -> R) -> R {
    match model_ctx() {
        Some(ctx) => ctx.exec.op(ctx.tid, move |_, _| Op::Done(f())),
        None => f(),
    }
}

macro_rules! modeled_int_atomic {
    ($name:ident, $std:path, $prim:ty) => {
        /// Modeled integer atomic: every operation is a schedule point,
        /// executed sequentially consistently under the scheduler's gate.
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Create a new modeled atomic.
            pub fn new(value: $prim) -> Self {
                Self {
                    inner: <$std>::new(value),
                }
            }

            /// Load the value (a schedule point).
            pub fn load(&self, _order: Ordering) -> $prim {
                atomic_op(|| self.inner.load(Ordering::SeqCst))
            }

            /// Store a value (a schedule point).
            pub fn store(&self, value: $prim, _order: Ordering) {
                atomic_op(|| self.inner.store(value, Ordering::SeqCst))
            }

            /// Swap in a value, returning the previous one.
            pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                atomic_op(|| self.inner.swap(value, Ordering::SeqCst))
            }

            /// Add, returning the previous value.
            pub fn fetch_add(&self, value: $prim, _order: Ordering) -> $prim {
                atomic_op(|| self.inner.fetch_add(value, Ordering::SeqCst))
            }

            /// Subtract, returning the previous value.
            pub fn fetch_sub(&self, value: $prim, _order: Ordering) -> $prim {
                atomic_op(|| self.inner.fetch_sub(value, Ordering::SeqCst))
            }

            /// Maximum, returning the previous value.
            pub fn fetch_max(&self, value: $prim, _order: Ordering) -> $prim {
                atomic_op(|| self.inner.fetch_max(value, Ordering::SeqCst))
            }

            /// Minimum, returning the previous value.
            pub fn fetch_min(&self, value: $prim, _order: Ordering) -> $prim {
                atomic_op(|| self.inner.fetch_min(value, Ordering::SeqCst))
            }

            /// Compare-and-exchange; one schedule point covering the whole
            /// read-modify-write.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                atomic_op(|| {
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                })
            }

            /// Weak compare-and-exchange. The model gives it strong
            /// semantics (no spurious failure): spurious failures only add
            /// retry iterations, never new outcomes, and modeling them
            /// would make every CAS loop an unbounded schedule.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Mutable access without synchronization (exclusivity via
            /// `&mut`).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Consume the atomic, returning the value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$prim>::default())
            }
        }

        impl From<$prim> for $name {
            fn from(value: $prim) -> Self {
                Self::new(value)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.inner.load(Ordering::SeqCst), f)
            }
        }
    };
}

modeled_int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
modeled_int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Modeled `AtomicBool`: every operation is a schedule point, executed
/// sequentially consistently under the scheduler's gate.
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Create a new modeled atomic.
    pub fn new(value: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Load the value (a schedule point).
    pub fn load(&self, _order: Ordering) -> bool {
        atomic_op(|| self.inner.load(Ordering::SeqCst))
    }

    /// Store a value (a schedule point).
    pub fn store(&self, value: bool, _order: Ordering) {
        atomic_op(|| self.inner.store(value, Ordering::SeqCst))
    }

    /// Swap in a value, returning the previous one.
    pub fn swap(&self, value: bool, _order: Ordering) -> bool {
        atomic_op(|| self.inner.swap(value, Ordering::SeqCst))
    }

    /// Compare-and-exchange; one schedule point covering the whole
    /// read-modify-write.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        atomic_op(|| {
            self.inner
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
        })
    }

    /// Weak compare-and-exchange with strong semantics (see the integer
    /// atomics for why).
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(current, new, success, failure)
    }

    /// Logical-or, returning the previous value.
    pub fn fetch_or(&self, value: bool, _order: Ordering) -> bool {
        atomic_op(|| self.inner.fetch_or(value, Ordering::SeqCst))
    }

    /// Logical-and, returning the previous value.
    pub fn fetch_and(&self, value: bool, _order: Ordering) -> bool {
        atomic_op(|| self.inner.fetch_and(value, Ordering::SeqCst))
    }

    /// Mutable access without synchronization (exclusivity via `&mut`).
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }

    /// Consume the atomic, returning the value.
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl From<bool> for AtomicBool {
    fn from(value: bool) -> Self {
        Self::new(value)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner.load(Ordering::SeqCst), f)
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

enum HandleInner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<Exec>,
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
}

/// Modeled `std::thread::JoinHandle`: joining a model thread is a modeled
/// blocking operation.
pub struct JoinHandle<T>(HandleInner<T>);

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result; `Err` when the
    /// thread panicked (mirroring std).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            HandleInner::Std(handle) => handle.join(),
            HandleInner::Model { exec, tid, result } => {
                match model_ctx() {
                    Some(ctx) => {
                        ctx.exec.op(ctx.tid, move |st, _| {
                            if st.join_target_finished(tid) {
                                Op::Done(())
                            } else {
                                Op::Block(Run::BlockedJoin(tid))
                            }
                        });
                    }
                    None => exec.wait_finished(tid),
                }
                match result.lock().unwrap_or_else(|p| p.into_inner()).take() {
                    Some(value) => Ok(value),
                    None => Err(Box::new(format!("model thread {tid} panicked"))),
                }
            }
        }
    }
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

/// Modeled `std::thread::spawn`: inside a model execution the new thread
/// registers with the scheduler and runs only when gated; outside one it
/// is a plain std spawn.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match model_ctx() {
        None => JoinHandle(HandleInner::Std(std::thread::spawn(f))),
        Some(ctx) => {
            let tid = ctx
                .exec
                .op(ctx.tid, |st, _| Op::Done(Exec::register_thread(st)));
            let result = Arc::new(StdMutex::new(None));
            let handle = spawn_model_thread(&ctx.exec, tid, f, Some(Arc::clone(&result)));
            adopt_os_handle(&ctx.exec, handle);
            JoinHandle(HandleInner::Model {
                exec: Arc::clone(&ctx.exec),
                tid,
                result,
            })
        }
    }
}

/// Modeled `std::thread::yield_now`: a pure schedule point under the
/// model, a real yield outside one.
pub fn yield_now() {
    match model_ctx() {
        Some(ctx) => ctx.exec.op(ctx.tid, |_, _| Op::Done(())),
        None => std::thread::yield_now(),
    }
}
