//! The `std::thread` shim surface.
//!
//! Normal builds re-export `std::thread::{spawn, yield_now, JoinHandle}`.
//! Under `--cfg cpq_model`, `spawn` registers the new thread with the
//! current model execution (when one is active — outside a model it falls
//! back to std), `yield_now` becomes a pure schedule point, and
//! `JoinHandle::join` becomes a modeled blocking operation.
//!
//! `std::thread::scope` is deliberately *not* re-exported: scoped threads
//! cannot be registered with the model scheduler, so code that must run
//! under the model uses `spawn` + `Arc`. (Scoped threads remain fine in
//! code that is never model-checked — the `parallel.rs` executor keeps
//! using `std::thread::scope` directly; its protocol state is model-checked
//! through dedicated harnesses instead.)

#[cfg(not(cpq_model))]
pub use std::thread::{spawn, yield_now, JoinHandle};

#[cfg(cpq_model)]
pub use crate::model::shim::{spawn, yield_now, JoinHandle};
