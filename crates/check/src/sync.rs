//! The `std::sync` shim surface.
//!
//! Normal builds re-export `std::sync` unchanged — importing from
//! `cpq_check::sync` instead of `std::sync` is a zero-cost, zero-behavior
//! text substitution (the `cpq_analyze` pass `std-sync-direct` enforces
//! that the migrated crates use this path). Under `--cfg cpq_model` the lock,
//! condvar, and atomic types are replaced by modeled equivalents that
//! yield to the cooperative scheduler at every visible operation; types
//! with no scheduling relevance (`Arc`, `mpsc`, …) stay std in both modes.

#[cfg(not(cpq_model))]
pub use std::sync::{
    mpsc, Arc, Barrier, Condvar, LockResult, Mutex, MutexGuard, Once, OnceLock, PoisonError,
    RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError, TryLockResult, WaitTimeoutResult,
    Weak,
};

/// Atomic types and memory orderings (std's, re-exported).
#[cfg(not(cpq_model))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

#[cfg(cpq_model)]
pub use crate::model::shim::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(cpq_model)]
pub use std::sync::{
    mpsc, Arc, Barrier, LockResult, Once, OnceLock, PoisonError, TryLockError, TryLockResult, Weak,
};

/// Atomic types: modeled integers/bools plus std's `Ordering`.
///
/// The modeled types accept and record the requested `Ordering` but execute
/// sequentially consistently at their schedule point — the model explores
/// interleavings of operations, not hardware-level reorderings below them.
#[cfg(cpq_model)]
pub mod atomic {
    pub use crate::model::shim::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::{
        AtomicI16, AtomicI32, AtomicI64, AtomicI8, AtomicIsize, AtomicU16, AtomicU32, AtomicU8,
        Ordering,
    };
}
