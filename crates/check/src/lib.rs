//! # cpq-check — an in-repo concurrency model checker and lint pass
//!
//! Every correctness claim this workspace makes about its concurrent
//! subsystems — the service admission queue, the buffer-pool disk-access
//! ledger, the observability event ring, and the parallel K-CPQ descent's
//! shared bound — used to rest on stress tests that sample whatever
//! schedules the OS happens to produce. The paper's cost metric is *exact*
//! disk-access counts, so a single lost update silently falsifies every
//! figure. This crate lets the workspace **prove** those invariants under
//! adversarial interleavings instead of hoping for them, without any
//! registry dependency (loom/shuttle are unavailable offline).
//!
//! ## The shim
//!
//! [`sync`] and [`thread`] mirror the `std::sync` / `std::thread` surface
//! the workspace uses. In a normal build they are *pure re-exports of std*
//! — zero cost, zero behavior change, proven by the existing parity and
//! divergence gates. Under `RUSTFLAGS="--cfg cpq_model"` the same paths
//! resolve to modeled types that route every acquire/release/load/store/CAS
//! through a cooperative scheduler, so a test harness can explore *chosen*
//! thread interleavings deterministically:
//!
//! * **Bounded DFS** ([`model`], [`model_dfs`]) — exhaustively enumerates
//!   schedules (optionally preemption-bounded, CHESS-style) for small
//!   models; completing the search is a proof over the explored bound.
//! * **PCT-style randomized schedules** ([`model_pct`]) — seeded
//!   priority-based schedules for models too big to enumerate; any failing
//!   seed replays bit-identically, and is pinned as a regression test.
//! * **Deadlock detection** — a step where no thread is schedulable but
//!   some are still alive fails the model with every thread's blocked
//!   state and the schedule that led there.
//! * **Double-panic detection** — the first assertion failure is captured
//!   with its schedule; any further non-teardown panic is appended to the
//!   report rather than aborting the process.
//!
//! The model is an *interleaving-level* checker: it explores every ordering
//! of shim operations but does not model weak-memory reordering below that
//! granularity (every modeled atomic op is sequentially consistent at its
//! schedule point). Protocol bugs — lost updates, lost wakeups, torn
//! publishes, double executions, deadlocks — live at exactly this
//! granularity; `Ordering` *strength* arguments are enforced socially by
//! the `cpq_analyze` rule that every `Ordering::` use carries a written
//! justification, and semantically by its `atomics-pairing` pass.
//!
//! ## Ground rules for model closures
//!
//! * Create all shared state *inside* the closure — each schedule runs it
//!   afresh, and modeled lock/queue state resets per run.
//! * Share mutable state across model threads only through shim types (or
//!   plain `std` primitives used purely for result collection — they add
//!   no schedule points but are safe).
//! * Keep closures deterministic: no wall-clock reads, no ambient RNG, no
//!   iteration-order-dependent asserts.
//! * Do not call `std::thread::scope`/`spawn` *inside* a model — unmanaged
//!   threads bypass the scheduler. Use [`thread::spawn`] from the shim.
//!
//! ## Static analysis
//!
//! The workspace's static invariants — ordering-justification comments,
//! `#![forbid(unsafe_code)]` everywhere, no `unwrap()`/`expect()`/
//! `thread::sleep` in non-test library code outside the waived
//! allowances, and no direct `std::sync` imports in the shim-migrated
//! crates — are enforced in CI by the `cpq-analyze` crate's pass
//! registry (which superseded the line-level `cpq_lint` scanner that
//! used to live in this crate). See `DESIGN.md` §12 and §17.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sync;
pub mod thread;

#[cfg(cpq_model)]
mod model;

#[cfg(cpq_model)]
pub use model::{
    model, model_dfs, model_pct, replay, try_model_dfs, try_model_pct, try_replay, DfsOptions,
    ModelFailure, ModelReport, PctOptions,
};
