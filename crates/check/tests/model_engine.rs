//! Self-tests for the model-checking engine: the checker must find known
//! bugs (and their minimal preemption budgets), prove known-correct
//! models, detect deadlocks, and replay failures deterministically.
//!
//! Compiled only under `RUSTFLAGS="--cfg cpq_model"`; in a normal build
//! this file is empty.
#![cfg(cpq_model)]

use cpq_check::sync::atomic::{AtomicU64, Ordering};
use cpq_check::sync::{Arc, Condvar, Mutex};
use cpq_check::thread;
use cpq_check::{
    model, model_pct, try_model_dfs, try_model_pct, try_replay, DfsOptions, PctOptions,
};

/// Two threads perform a load/store increment (a deliberately non-atomic
/// read-modify-write). The classic lost update: both read 0, both write 1.
fn racy_increment_model() {
    let x = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let x = Arc::clone(&x);
            thread::spawn(move || {
                let v = x.load(Ordering::SeqCst);
                x.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn dfs_finds_lost_update() {
    let failure = try_model_dfs(DfsOptions::default(), racy_increment_model)
        .expect_err("the lost update must be found");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {failure}"
    );
    assert!(!failure.schedule.is_empty());
}

#[test]
fn lost_update_needs_one_preemption() {
    // With zero preemptions allowed each thread runs its read-modify-write
    // atomically, so the bug is invisible; one preemption exposes it.
    let zero = DfsOptions {
        preemption_bound: Some(0),
        ..DfsOptions::default()
    };
    let report = try_model_dfs(zero, racy_increment_model).expect("serial schedules are correct");
    assert!(report.complete);

    let one = DfsOptions {
        preemption_bound: Some(1),
        ..DfsOptions::default()
    };
    try_model_dfs(one, racy_increment_model).expect_err("one preemption exposes the bug");
}

#[test]
fn replay_reproduces_a_dfs_failure() {
    let failure =
        try_model_dfs(DfsOptions::default(), racy_increment_model).expect_err("bug exists");
    let replayed = try_replay(&failure.schedule, racy_increment_model)
        .expect_err("the pinned schedule must reproduce the failure");
    assert!(replayed.message.contains("lost update"));
}

#[test]
fn pct_finds_lost_update_and_the_seed_replays() {
    let failure =
        try_model_pct(PctOptions::default(), racy_increment_model).expect_err("bug exists");
    let seed = failure.seed.expect("pct failures carry their seed");
    // The same seed alone reproduces the failure.
    let again = try_model_pct(PctOptions::one_seed(seed), racy_increment_model)
        .expect_err("seed replay must fail again");
    assert_eq!(again.seed, Some(seed));
    assert_eq!(again.message, failure.message);
    assert_eq!(again.schedule, failure.schedule);
}

#[test]
fn atomic_rmw_is_race_free() {
    let report = model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = Arc::clone(&x);
                thread::spawn(move || {
                    x.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(x.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete);
    // The proof means something only if multiple interleavings ran.
    assert!(
        report.schedules > 1,
        "explored {} schedules",
        report.schedules
    );
}

#[test]
fn mutex_provides_exclusion() {
    let report = model(|| {
        let cell = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut g = cell.lock().expect("model lock");
                    let v = *g;
                    *g = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(*cell.lock().expect("model lock"), 2);
    });
    assert!(report.complete);
}

#[test]
fn opposite_lock_order_deadlocks() {
    let failure = try_model_dfs(DfsOptions::default(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().expect("model lock");
            let _gb = b2.lock().expect("model lock");
        });
        {
            let _gb = b.lock().expect("model lock");
            let _ga = a.lock().expect("model lock");
        }
        let _ = t.join();
    })
    .expect_err("AB/BA locking must deadlock under some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {failure}"
    );
}

#[test]
fn lost_wakeup_deadlocks() {
    // The notifier sets the flag but never notifies; a schedule where the
    // waiter checks first and parks then hangs forever. A condvar protocol
    // bug, caught as a deadlock.
    let failure = try_model_dfs(DfsOptions::default(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let setter = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                *state.0.lock().expect("model lock") = true;
                // Missing: state.1.notify_one();
            })
        };
        let mut ready = state.0.lock().expect("model lock");
        while !*ready {
            ready = state.1.wait(ready).expect("model wait");
        }
        drop(ready);
        setter.join().expect("setter");
    })
    .expect_err("missing notify must deadlock under some schedule");
    assert!(failure.message.contains("deadlock"));
}

#[test]
fn correct_condvar_protocol_is_proved() {
    let report = model(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let setter = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                *state.0.lock().expect("model lock") = true;
                state.1.notify_one();
            })
        };
        let mut ready = state.0.lock().expect("model lock");
        while !*ready {
            ready = state.1.wait(ready).expect("model wait");
        }
        drop(ready);
        setter.join().expect("setter");
    });
    assert!(report.complete);
}

#[test]
fn wait_timeout_explores_the_timeout_path() {
    // No notifier exists, so only the timeout can wake the waiter: the
    // model must not report a deadlock, and must report timed_out.
    let report = model(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let guard = state.0.lock().expect("model lock");
        let (_guard, res) = state
            .1
            .wait_timeout(guard, std::time::Duration::from_millis(1))
            .expect("model wait");
        assert!(res.timed_out());
    });
    assert!(report.complete);
}

#[test]
fn unbounded_spin_is_rejected() {
    let failure = try_model_dfs(
        DfsOptions {
            max_steps: 500,
            ..DfsOptions::default()
        },
        || loop {
            thread::yield_now();
        },
    )
    .expect_err("a spin loop must exhaust the step budget");
    assert!(failure.message.contains("max_steps"));
}

#[test]
fn pct_runs_the_whole_seed_range_on_correct_models() {
    let n = model_pct(
        PctOptions {
            seeds: 0..25,
            ..PctOptions::default()
        },
        || {
            let x = Arc::new(AtomicU64::new(0));
            let t = {
                let x = Arc::clone(&x);
                thread::spawn(move || x.fetch_add(1, Ordering::SeqCst))
            };
            x.fetch_add(1, Ordering::SeqCst);
            t.join().expect("worker");
            assert_eq!(x.load(Ordering::SeqCst), 2);
        },
    );
    assert_eq!(n, 25);
}
