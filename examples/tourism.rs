//! The paper's motivating scenario (Section 1): one data set holds the
//! locations of archeological sites (spatially clustered, like real
//! geography), the other the most important holiday resorts. A K-CPQ finds
//! the K site/resort pairs with the smallest distances, so tourists in a
//! resort can easily visit the paired site — the tourist authority picks K
//! by its advertising budget.
//!
//! The example also contrasts the algorithms' disk-access costs, showing why
//! algorithm choice matters for a query optimizer.
//!
//! ```sh
//! cargo run --release --example tourism
//! ```

use cpq::core::{k_closest_pairs, Algorithm, CpqConfig};
use cpq::datasets::{clustered, uniform, ClusterSpec};
use cpq::rtree::{RTree, RTreeParams};
use cpq::storage::{BufferPool, MemPageFile, DEFAULT_PAGE_SIZE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Archeological sites cluster around historical regions.
    let sites = clustered(
        30_000,
        ClusterSpec {
            clusters: 40,
            spread: 0.015,
            noise: 0.03,
            skew: 1.1,
        },
        2024,
    );
    // Resorts spread along the whole country.
    let resorts = uniform(5_000, 7);

    let build = |ds: &cpq::datasets::Dataset| -> Result<RTree<2>, Box<dyn std::error::Error>> {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 256);
        let mut tree = RTree::new(pool, RTreeParams::paper())?;
        for (i, &p) in ds.points.iter().enumerate() {
            tree.insert(p, i as u64)?;
        }
        Ok(tree)
    };
    let t_sites = build(&sites)?;
    let t_resorts = build(&resorts)?;

    // The advertising budget pays for 15 pairs.
    let k = 15;
    let out = k_closest_pairs(
        &t_sites,
        &t_resorts,
        k,
        Algorithm::Heap,
        &CpqConfig::paper(),
    )?;
    println!("top {k} site/resort pairs for the campaign:");
    for (i, pair) in out.pairs.iter().enumerate() {
        println!(
            "  {:>2}. site #{:<6} at ({:7.2}, {:7.2})  <->  resort #{:<5} at ({:7.2}, {:7.2})  {:.2} km",
            i + 1,
            pair.p.oid,
            pair.p.point().coord(0),
            pair.p.point().coord(1),
            pair.q.oid,
            pair.q.point().coord(0),
            pair.q.point().coord(1),
            pair.distance()
        );
    }

    // Which algorithm should the optimizer pick? Compare the paper's four
    // on this workload with no buffer (worst case).
    println!("\nalgorithm comparison (zero buffer):");
    println!(
        "  {:<6} {:>14} {:>12} {:>12}",
        "algo", "disk accesses", "node pairs", "pruned"
    );
    for alg in Algorithm::EVALUATED {
        t_sites.pool().set_capacity(0);
        t_resorts.pool().set_capacity(0);
        t_sites.pool().reset_stats();
        t_resorts.pool().reset_stats();
        let out = k_closest_pairs(&t_sites, &t_resorts, k, alg, &CpqConfig::paper())?;
        println!(
            "  {:<6} {:>14} {:>12} {:>12}",
            alg.label(),
            out.stats.disk_accesses(),
            out.stats.node_pairs_processed,
            out.stats.pairs_pruned
        );
    }
    Ok(())
}
