//! Interactive spatial-database shell over the whole `cpq` stack.
//!
//! ```sh
//! cargo run --release --example shell
//! ```
//!
//! Type `help` at the prompt for the command list; all the paper's
//! algorithms, tree variants, and buffer configurations are reachable.

use cpq::shell::Shell;
use std::io::{BufRead, Write};

fn main() {
    let mut shell = Shell::new();
    println!("cpq shell — type `help` for commands, `quit` to exit");
    let stdin = std::io::stdin();
    loop {
        print!("cpq> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match shell.execute(line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
