//! Quickstart: index two point sets in R*-trees and find their closest
//! pairs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cpq::core::{closest_pair, k_closest_pairs, Algorithm, CpqConfig};
use cpq::datasets::uniform;
use cpq::geo::Point;
use cpq::rtree::{RTree, RTreeParams};
use cpq::storage::{BufferPool, MemPageFile, DEFAULT_PAGE_SIZE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two data sets: P and Q, 10,000 uniform points each, in overlapping
    // workspaces.
    let p = uniform(10_000, 42);
    let q = uniform(10_000, 43);

    // Each set gets its own R*-tree over a paged store (1 KiB pages — the
    // paper's configuration, giving node capacity M = 21).
    let build = |points: &[Point<2>]| -> Result<RTree<2>, Box<dyn std::error::Error>> {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 64);
        let mut tree = RTree::new(pool, RTreeParams::paper())?;
        for (i, &pt) in points.iter().enumerate() {
            tree.insert(pt, i as u64)?;
        }
        Ok(tree)
    };
    let tree_p = build(&p.points)?;
    let tree_q = build(&q.points)?;
    println!(
        "built trees: |P| = {} (height {}), |Q| = {} (height {})",
        tree_p.len(),
        tree_p.height(),
        tree_q.len(),
        tree_q.height()
    );

    // The single closest pair (1-CPQ), using the paper's best all-round
    // algorithm.
    let out = closest_pair(&tree_p, &tree_q, Algorithm::Heap, &CpqConfig::paper())?;
    let best = out.best().expect("non-empty data sets");
    println!(
        "closest pair: P#{} {:?} <-> Q#{} {:?}, distance {:.4}",
        best.p.oid,
        best.p.point().coords(),
        best.q.oid,
        best.q.point().coords(),
        best.distance()
    );
    println!(
        "  cost: {} disk accesses, {} node pairs, {} point distances",
        out.stats.disk_accesses(),
        out.stats.node_pairs_processed,
        out.stats.dist_computations
    );

    // The 10 closest pairs (K-CPQ).
    let out = k_closest_pairs(&tree_p, &tree_q, 10, Algorithm::Heap, &CpqConfig::paper())?;
    println!("\n10 closest pairs:");
    for (i, pair) in out.pairs.iter().enumerate() {
        println!(
            "  {:>2}. P#{:<6} <-> Q#{:<6} distance {:.4}",
            i + 1,
            pair.p.oid,
            pair.q.oid,
            pair.distance()
        );
    }
    Ok(())
}
