//! The Semi-CPQ and Self-CPQ extensions (Section 6, future work).
//!
//! * **Semi-CPQ** — for every fire station (set P) find its nearest
//!   hospital (set Q): an "all nearest neighbors" join where each P point
//!   appears exactly once.
//! * **Self-CPQ** — among the hospitals alone, which two are closest? Useful
//!   for detecting redundant coverage.
//!
//! ```sh
//! cargo run --release --example all_nearest
//! ```

use cpq::core::{self_closest_pairs, semi_closest_pairs, Algorithm, CpqConfig};
use cpq::datasets::{clustered, uniform, ClusterSpec};
use cpq::rtree::{RTree, RTreeParams};
use cpq::storage::{BufferPool, MemPageFile, DEFAULT_PAGE_SIZE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stations = uniform(2_000, 99);
    let hospitals = clustered(
        800,
        ClusterSpec {
            clusters: 25,
            spread: 0.03,
            noise: 0.1,
            skew: 0.8,
        },
        100,
    );

    let build = |ds: &cpq::datasets::Dataset| -> Result<RTree<2>, Box<dyn std::error::Error>> {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 128);
        let mut tree = RTree::new(pool, RTreeParams::paper())?;
        for (i, &p) in ds.points.iter().enumerate() {
            tree.insert(p, i as u64)?;
        }
        Ok(tree)
    };
    let t_stations = build(&stations)?;
    let t_hospitals = build(&hospitals)?;

    // Semi-CPQ: nearest hospital for every station.
    let out = semi_closest_pairs(&t_stations, &t_hospitals)?;
    println!(
        "semi-CPQ: matched {} stations to hospitals ({} disk accesses)",
        out.pairs.len(),
        out.stats.disk_accesses()
    );
    let worst = out.pairs.last().expect("non-empty");
    let best = out.pairs.first().expect("non-empty");
    println!(
        "  best-covered station  #{:<5}: {:.2} distance units",
        best.p.oid,
        best.distance()
    );
    println!(
        "  worst-covered station #{:<5}: {:.2} distance units  <- coverage gap",
        worst.p.oid,
        worst.distance()
    );
    let mean: f64 = out.pairs.iter().map(|p| p.distance()).sum::<f64>() / out.pairs.len() as f64;
    println!("  mean station->hospital distance: {mean:.2}");

    // Self-CPQ: the 5 most redundant hospital pairs.
    let out = self_closest_pairs(&t_hospitals, 5, Algorithm::Heap, &CpqConfig::paper())?;
    println!("\nself-CPQ: 5 closest hospital pairs (possible redundant coverage):");
    for (i, pair) in out.pairs.iter().enumerate() {
        println!(
            "  {}. hospital #{:<4} <-> hospital #{:<4}  {:.3} apart",
            i + 1,
            pair.p.oid,
            pair.q.oid,
            pair.distance()
        );
    }
    Ok(())
}
