//! Multi-way closest-tuple queries (the paper's future work (a)):
//! find the K best **triples** across three data sets.
//!
//! Scenario: plan express-delivery routes "supplier → cross-dock → customer
//! hotspot" minimizing total leg distance (a chain query graph), and site a
//! three-party meeting point (a clique query graph).
//!
//! ```sh
//! cargo run --release --example multiway_chain
//! ```

use cpq::core::{k_closest_tuples, TupleMetric};
use cpq::datasets::{clustered, uniform, ClusterSpec};
use cpq::rtree::{RTree, RTreeParams};
use cpq::storage::{BufferPool, MemPageFile, DEFAULT_PAGE_SIZE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suppliers = uniform(4_000, 1);
    let crossdocks = uniform(300, 2);
    let hotspots = clustered(
        2_000,
        ClusterSpec {
            clusters: 30,
            spread: 0.02,
            noise: 0.05,
            skew: 1.0,
        },
        3,
    );

    let build = |ds: &cpq::datasets::Dataset| -> Result<RTree<2>, Box<dyn std::error::Error>> {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 128);
        let mut tree = RTree::new(pool, RTreeParams::paper())?;
        for (i, &p) in ds.points.iter().enumerate() {
            tree.insert(p, i as u64)?;
        }
        Ok(tree)
    };
    let ts = build(&suppliers)?;
    let tc = build(&crossdocks)?;
    let th = build(&hotspots)?;

    // Chain: supplier -> cross-dock -> hotspot, minimizing total route.
    let out = k_closest_tuples(&[&ts, &tc, &th], 5, TupleMetric::Chain)?;
    println!("5 best supplier -> cross-dock -> hotspot routes:");
    for (i, t) in out.tuples.iter().enumerate() {
        println!(
            "  {}. supplier #{:<5} -> dock #{:<4} -> hotspot #{:<5}  total {:.3}",
            i + 1,
            t.items[0].oid,
            t.items[1].oid,
            t.items[2].oid,
            t.distance
        );
    }
    println!(
        "  cost: {} disk accesses, queue peaked at {} tuples\n",
        out.stats.disk_accesses(),
        out.stats.queue_peak
    );

    // Clique: one facility of each kind, all three mutually close.
    let out = k_closest_tuples(&[&ts, &tc, &th], 3, TupleMetric::Clique)?;
    println!("3 tightest supplier/dock/hotspot triangles (clique distance):");
    for (i, t) in out.tuples.iter().enumerate() {
        println!(
            "  {}. #{} / #{} / #{}  perimeter-sum {:.3}",
            i + 1,
            t.items[0].oid,
            t.items[1].oid,
            t.items[2].oid,
            t.distance
        );
    }
    Ok(())
}
