//! The incremental distance join: consume closest pairs lazily, in
//! non-decreasing distance order, stopping whenever a condition is met —
//! the use-case Hjaltason & Samet's algorithms (Section 3.9) were built for,
//! where K is unknown up front.
//!
//! Scenario: pair warehouses with retail stores until the paired distance
//! exceeds a delivery radius.
//!
//! ```sh
//! cargo run --release --example incremental_stream
//! ```

use cpq::core::{distance_join, IncrementalConfig, Traversal};
use cpq::datasets::uniform;
use cpq::rtree::{RTree, RTreeParams};
use cpq::storage::{BufferPool, MemPageFile, DEFAULT_PAGE_SIZE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let warehouses = uniform(3_000, 1);
    let stores = uniform(8_000, 2);

    let build = |ds: &cpq::datasets::Dataset| -> Result<RTree<2>, Box<dyn std::error::Error>> {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 128);
        let mut tree = RTree::new(pool, RTreeParams::paper())?;
        for (i, &p) in ds.points.iter().enumerate() {
            tree.insert(p, i as u64)?;
        }
        Ok(tree)
    };
    let t_wh = build(&warehouses)?;
    let t_st = build(&stores)?;

    let radius = 2.5; // delivery radius in workspace units
    let cfg = IncrementalConfig {
        traversal: Traversal::Simultaneous,
        ..Default::default()
    };
    let mut join = distance_join(&t_wh, &t_st, cfg);

    println!("warehouse/store pairs within radius {radius}, closest first:");
    let mut count = 0usize;
    for result in join.by_ref() {
        let pair = result?;
        if pair.distance() > radius {
            break; // the stream is ordered: nothing closer is left
        }
        count += 1;
        if count <= 12 {
            println!(
                "  {:>3}. warehouse #{:<5} <-> store #{:<5}  {:.3}",
                count,
                pair.p.oid,
                pair.q.oid,
                pair.distance()
            );
        }
    }
    if count > 12 {
        println!("  ... and {} more", count - 12);
    }
    let stats = join.stats();
    println!(
        "\nconsumed {count} pairs with {} disk accesses, queue peaked at {} entries",
        stats.disk_accesses(),
        stats.queue_peak
    );
    println!("(the paper's HEAP stores node/node pairs only; this queue also holds");
    println!(" node/object and object/object items — Section 3.9's size argument.)");
    Ok(())
}
