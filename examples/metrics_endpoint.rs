//! Live `/metrics` demo: boots an observable [`CpqService`], runs a mixed
//! workload, and serves Prometheus exposition over HTTP until killed.
//!
//! ```text
//! cargo run --release --example metrics_endpoint [port] [seconds]
//! # then, from another terminal:
//! curl http://127.0.0.1:9090/metrics
//! curl http://127.0.0.1:9090/healthz
//! ```
//!
//! Defaults: port 9090, 30 seconds. While up, a background client keeps
//! issuing queries so repeated scrapes show the counters moving; queries
//! slower than 5 ms land in the slow-query log, dumped as JSONL on exit.

use cpq::core::Algorithm;
use cpq::datasets::uniform;
use cpq::geo::Point2;
use cpq::rtree::{RTree, RTreeParams};
use cpq::service::{CpqService, ObsConfig, QueryRequest, ServiceConfig, TreePair};
use cpq::storage::{BufferPool, MemPageFile};
use std::time::{Duration, Instant};

fn build_tree(n: usize, seed: u64) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 128);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in uniform(n, seed).points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn main() {
    let mut args = std::env::args().skip(1);
    let port: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(9090);
    let seconds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);

    eprintln!("building two 5000-point trees...");
    let service: CpqService<2, Point2> = CpqService::start(
        TreePair::new(build_tree(5_000, 42), build_tree(5_000, 1337)),
        ServiceConfig {
            workers: 2,
            obs: ObsConfig {
                enabled: true,
                slow_query_threshold: Some(Duration::from_millis(5)),
                slow_log_capacity: 64,
            },
            ..ServiceConfig::default()
        },
    );
    let server = service
        .serve_metrics(("127.0.0.1", port))
        .expect("bind metrics listener");
    println!(
        "serving http://{}/metrics and /healthz for {seconds}s",
        server.addr()
    );

    let mix = [
        (Algorithm::Heap, 100),
        (Algorithm::SortedDistances, 10),
        (Algorithm::Simple, 1),
        (Algorithm::Exhaustive, 100),
    ];
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut i = 0usize;
    while Instant::now() < deadline {
        let (algorithm, k) = mix[i % mix.len()];
        let req = if i.is_multiple_of(3) {
            QueryRequest::self_join(k, algorithm)
        } else {
            QueryRequest::cross(k, algorithm)
        };
        let _ = service.execute(req);
        i += 1;
        std::thread::sleep(Duration::from_millis(100));
    }

    let jsonl = service.drain_slow_queries_jsonl();
    eprintln!(
        "done: {i} queries issued; {} slow-query profiles captured:",
        jsonl.lines().count()
    );
    print!("{jsonl}");
    server.stop();
    service.shutdown();
}
