#!/usr/bin/env sh
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has zero registry dependencies, so every step runs
# without network access.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

# Analyze tier: metrics_lint serves the real service, scrapes /metrics,
# lints the exposition, and writes its diagnostics as a report fragment;
# cpq_analyze runs the pass registry (lock-order, atomics-pairing,
# panic-surface, blocking-section, plus the ported line checks) over the
# workspace source, merges the fragment, and archives one report. Any
# unwaived diagnostic fails the gate.
echo "==> metrics smoke (serve, scrape /metrics, exposition lint, core-series check)"
./target/release/metrics_lint

echo "==> cpq_analyze (multi-pass static analysis + metrics fragment -> analysis_report.json)"
ANALYZE_FLAGS="--merge target/metrics_report.json"
if [ "${1:-}" = "--full" ]; then
    # --full adds the stale-waiver audit and the whole-workspace
    # Relaxed-justification sweep.
    ANALYZE_FLAGS="$ANALYZE_FLAGS --stale --full-atomics"
fi
# shellcheck disable=SC2086  # ANALYZE_FLAGS is a flag list by construction
./target/release/cpq_analyze --root . --out target/analysis_report.json $ANALYZE_FLAGS

# Model-check smoke tier: the concurrency shim is compiled in scheduler mode
# (--cfg cpq_model) and the harnesses run exhaustive/bounded DFS on the small
# models plus 200 seeded PCT schedules on the contended ones. A separate
# target dir keeps both cfg caches warm across CI runs.
echo "==> model-check smoke tier (cfg cpq_model: exhaustive DFS + 200-seed PCT)"
model_test() {
    RUSTFLAGS="--cfg cpq_model" CARGO_TARGET_DIR=target/model \
        cargo test -q "$@"
}
model_test -p cpq-check
model_test -p cpq-service --test model_queue
model_test -p cpq-obs --test model_ring
model_test -p cpq-storage --test model_buffer
model_test -p cpq-storage --lib sched::
model_test -p cpq-core --lib model_tests
model_test -p cpq-shard --lib model_tests
# Sites #7 (epoch publish/reclaim) and #8 (WAL group commit), each with a
# pinned broken twin.
model_test -p cpq-live --lib model_tests

echo "==> bench_service --smoke --profile (service end-to-end + divergence + obs gate)"
./target/release/bench_service --smoke --profile \
    --out /tmp/BENCH_service_smoke.json --obs-out /tmp/BENCH_obs_smoke.json >/dev/null

echo "==> bench_parallel --smoke (parallel descent speedup + zero-divergence gate)"
./target/release/bench_parallel --smoke --out /tmp/BENCH_parallel_smoke.json >/dev/null

# Real files in the OS temp dir: scan gate (scheduler must beat the naive
# per-page path on wall time), K-CPQ prefetch-hit + coalesce gates, and
# the O_DIRECT probe (engaged, or buffered fallback latched — both pass;
# the filesystem decides).
echo "==> bench_io --smoke (I/O scheduler vs naive reads on real files)"
./target/release/bench_io --smoke --out /tmp/BENCH_io_smoke.json >/dev/null

echo "==> bench_parallel --smoke --disk real (real-file descent, zero-divergence gate)"
./target/release/bench_parallel --smoke --disk real \
    --out /tmp/BENCH_parallel_real_smoke.json >/dev/null

# Per-shard disk page files, wire codec armed on every subquery, and the
# bit-identical-vs-unsharded gate on every cell.
echo "==> bench_shard --smoke (scatter-gather K-CPQ, zero-divergence gate)"
./target/release/bench_shard --smoke --out /tmp/BENCH_shard_smoke.json >/dev/null

# Windowed/colored K-CPQ: every cell cross-checks HEAP vs STD bitwise, the
# whole smoke matrix is gated on the O(n²) brute-force oracle, and node
# accesses must shrink monotonically with the window on clustered data.
echo "==> bench_rcp --smoke (range-restricted/colored K-CPQ, oracle zero-divergence gate)"
./target/release/bench_rcp --smoke --out /tmp/BENCH_rcp_smoke.json >/dev/null

# Recovery smoke tier: the crash-injection harness truncates a real WAL at
# every record boundary (plus torn mid-record cuts) and asserts bit-identical
# K-CPQ answers after recovery; the live bench gates the continuous delta
# path at >=5x over per-step recomputation, bit-identity sampled.
echo "==> recovery smoke (crash at every WAL record boundary, bit-identical gate)"
cargo test --release -q -p cpq-live --test crash_recovery

echo "==> bench_live --smoke (continuous K-CPQ delta path >=5x + throughput x readers)"
./target/release/bench_live --smoke --out /tmp/BENCH_live_smoke.json >/dev/null

if [ "${1:-}" = "--full" ]; then
    echo "==> parallel stress: wide seed sweep (release, --include-ignored)"
    cargo test --release -p cpq-core --test parallel_stress -- --include-ignored

    echo "==> rcp parity: multi-seed randomized oracle sweep (release, --include-ignored)"
    cargo test --release -p cpq-core --test rcp_parity -- --include-ignored

    echo "==> model-check full tier: widened PCT sweep (2000 seeds, release)"
    model_full() {
        RUSTFLAGS="--cfg cpq_model" CARGO_TARGET_DIR=target/model \
            CPQ_MODEL_SEEDS=2000 cargo test --release -q "$@"
    }
    model_full -p cpq-obs --test model_ring pct_
    model_full -p cpq-storage --test model_buffer pct_failing
    model_full -p cpq-core --lib model_tests::pct_
fi

echo "==> CI green"
