#!/usr/bin/env sh
# Offline CI gate: formatting, lints, release build, full test suite.
# The workspace has zero registry dependencies, so every step runs
# without network access.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> bench_service --smoke --profile (service end-to-end + divergence + obs gate)"
./target/release/bench_service --smoke --profile \
    --out /tmp/BENCH_service_smoke.json --obs-out /tmp/BENCH_obs_smoke.json >/dev/null

echo "==> metrics smoke (serve, scrape /metrics, exposition lint, core-series check)"
./target/release/metrics_lint

echo "==> bench_parallel --smoke (parallel descent speedup + zero-divergence gate)"
./target/release/bench_parallel --smoke --out /tmp/BENCH_parallel_smoke.json >/dev/null

if [ "${1:-}" = "--full" ]; then
    echo "==> parallel stress: wide seed sweep (release, --include-ignored)"
    cargo test --release -p cpq-core --test parallel_stress -- --include-ignored
fi

echo "==> CI green"
