//! `cpq` — K Closest Pair Queries in Spatial Databases.
//!
//! A from-scratch Rust reproduction of *Corral, Manolopoulos, Theodoridis,
//! Vassilakopoulos: "Closest Pair Queries in Spatial Databases"*
//! (SIGMOD 2000): the EXH / SIM / STD / HEAP closest-pair algorithms over
//! R*-trees, the incremental distance join of Hjaltason & Samet they compare
//! against, and every substrate (paged storage, LRU buffering, the R*-tree
//! itself) needed to reproduce the paper's disk-access experiments.
//!
//! This facade crate re-exports the component crates under stable paths:
//!
//! * [`geo`] — points, MBRs, MINMINDIST / MINMAXDIST / MAXMAXDIST metrics;
//! * [`storage`] — page files, buffer pools, I/O accounting;
//! * [`rtree`] — the R*-tree access method;
//! * [`core`] — the closest-pair query algorithms (the paper's contribution);
//! * [`datasets`] — deterministic workload generators;
//! * [`service`] — the concurrent query-serving subsystem (worker pool,
//!   admission control, deadlines);
//! * [`shard`] — spatially sharded trees with scatter-gather K-CPQ and the
//!   shard-pair wire protocol;
//! * [`live`] — mutable trees: copy-on-write updates behind epoch-pinned
//!   snapshots, WAL crash recovery, continuous K-CPQ over streams;
//! * [`obs`] — observability: metrics registry, per-query work profiles,
//!   slow-query forensics, Prometheus exposition.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shell;

pub use cpq_core as core;
pub use cpq_datasets as datasets;
pub use cpq_geo as geo;
pub use cpq_live as live;
pub use cpq_obs as obs;
pub use cpq_rtree as rtree;
pub use cpq_service as service;
pub use cpq_shard as shard;
pub use cpq_storage as storage;
