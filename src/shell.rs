//! An interactive mini spatial database shell over the `cpq` stack.
//!
//! The command interpreter is a plain function from a command line to a
//! report string, so it is fully unit-testable; `examples/shell.rs` wraps it
//! in a stdin REPL. Every feature of the reproduction is reachable:
//! dataset generation, index construction with any R-tree variant, buffer
//! configuration (including directory pinning), the classical queries, all
//! five CPQ algorithms plus the incremental competitors, self/semi variants,
//! validation and statistics.
//!
//! ```text
//! cpq> create a uniform 10000 1
//! cpq> create b clustered 8000 2
//! cpq> index a
//! cpq> index b quadratic
//! cpq> buffer a 64
//! cpq> cpq a b 5 heap
//! cpq> knn a 500 500 3
//! cpq> stats a
//! ```

use crate::core::{
    k_closest_pairs, k_closest_pairs_incremental, self_closest_pairs, semi_closest_pairs,
    Algorithm, CpqConfig, IncrementalConfig, Traversal,
};
use crate::datasets::{california_surrogate, clustered, uniform, ClusterSpec, Dataset};
use crate::geo::{Point2, Rect2};
use crate::rtree::{RTree, RTreeParams, SplitPolicy};
use crate::storage::{BufferPool, MemPageFile, DEFAULT_PAGE_SIZE};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The shell's mutable state: named datasets and named indexes.
#[derive(Default)]
pub struct Shell {
    datasets: BTreeMap<String, Dataset>,
    trees: BTreeMap<String, RTree<2>>,
}

/// Outcome of one command.
pub type ShellResult = Result<String, String>;

impl Shell {
    /// Creates an empty shell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes one command line and returns its report.
    pub fn execute(&mut self, line: &str) -> ShellResult {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some(&command) = tokens.first() else {
            return Ok(String::new());
        };
        match command {
            "help" => Ok(HELP.trim().to_string()),
            "create" => self.cmd_create(&tokens[1..]),
            "index" => self.cmd_index(&tokens[1..]),
            "list" => self.cmd_list(),
            "buffer" => self.cmd_buffer(&tokens[1..]),
            "pin" => self.cmd_pin(&tokens[1..]),
            "knn" => self.cmd_knn(&tokens[1..]),
            "range" => self.cmd_range(&tokens[1..]),
            "cpq" => self.cmd_cpq(&tokens[1..]),
            "self" => self.cmd_self(&tokens[1..]),
            "semi" => self.cmd_semi(&tokens[1..]),
            "stats" => self.cmd_stats(&tokens[1..]),
            "validate" => self.cmd_validate(&tokens[1..]),
            other => Err(format!("unknown command {other:?}; try `help`")),
        }
    }

    fn dataset(&self, name: &str) -> Result<&Dataset, String> {
        self.datasets
            .get(name)
            .ok_or_else(|| format!("no dataset named {name:?}; `create` one first"))
    }

    fn tree(&self, name: &str) -> Result<&RTree<2>, String> {
        self.trees
            .get(name)
            .ok_or_else(|| format!("no index named {name:?}; `index {name}` first"))
    }

    fn cmd_create(&mut self, args: &[&str]) -> ShellResult {
        let [name, kind, rest @ ..] = args else {
            return Err("usage: create <name> uniform|clustered|real [n] [seed]".into());
        };
        let n: usize = rest.first().map_or(Ok(10_000), |s| {
            s.parse().map_err(|_| format!("bad count {s:?}"))
        })?;
        let seed: u64 = rest
            .get(1)
            .map_or(Ok(1), |s| s.parse().map_err(|_| format!("bad seed {s:?}")))?;
        let ds = match *kind {
            "uniform" => uniform(n, seed),
            "clustered" => clustered(n, ClusterSpec::default(), seed),
            "real" => california_surrogate(),
            other => return Err(format!("unknown dataset kind {other:?}")),
        };
        let detail = format!("{} points in {:?}", ds.len(), ds.workspace);
        self.datasets.insert(name.to_string(), ds);
        Ok(format!("dataset {name}: {detail}"))
    }

    fn cmd_index(&mut self, args: &[&str]) -> ShellResult {
        let [name, rest @ ..] = args else {
            return Err("usage: index <dataset> [rstar|quadratic|linear] [bulk]".into());
        };
        let policy = match rest.first() {
            None | Some(&"rstar") => SplitPolicy::RStar,
            Some(&"quadratic") => SplitPolicy::GuttmanQuadratic,
            Some(&"linear") => SplitPolicy::GuttmanLinear,
            Some(&"bulk") => SplitPolicy::RStar, // `index x bulk`
            Some(other) => return Err(format!("unknown variant {other:?}")),
        };
        let bulk = rest.contains(&"bulk");
        let ds = self.dataset(name)?.clone();
        let params = RTreeParams {
            split_policy: policy,
            ..RTreeParams::paper()
        };
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 512);
        let tree = if bulk {
            RTree::bulk_load(pool, params, &ds.indexed(), 1.0).map_err(|e| e.to_string())?
        } else {
            let mut tree = RTree::new(pool, params).map_err(|e| e.to_string())?;
            for (i, &p) in ds.points.iter().enumerate() {
                tree.insert(p, i as u64).map_err(|e| e.to_string())?;
            }
            tree
        };
        let report = format!(
            "index {name}: {} points, height {}, {} pages, variant {}{}",
            tree.len(),
            tree.height(),
            tree.pool().num_pages(),
            policy.label(),
            if bulk { ", bulk-loaded" } else { "" }
        );
        self.trees.insert(name.to_string(), tree);
        Ok(report)
    }

    fn cmd_list(&self) -> ShellResult {
        let mut out = String::new();
        let _ = writeln!(out, "datasets:");
        for (name, ds) in &self.datasets {
            let _ = writeln!(out, "  {name}: {} points", ds.len());
        }
        let _ = writeln!(out, "indexes:");
        for (name, t) in &self.trees {
            let _ = writeln!(
                out,
                "  {name}: height {}, buffer {} frames, {} pinned",
                t.height(),
                t.pool().capacity(),
                t.pool().pinned_pages()
            );
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_buffer(&mut self, args: &[&str]) -> ShellResult {
        let [name, frames] = args else {
            return Err("usage: buffer <index> <frames>".into());
        };
        let frames: usize = frames
            .parse()
            .map_err(|_| format!("bad frame count {frames:?}"))?;
        let tree = self.tree(name)?;
        tree.pool().set_capacity(frames);
        tree.pool().reset_stats();
        Ok(format!(
            "index {name}: buffer set to {frames} frames, counters reset"
        ))
    }

    fn cmd_pin(&mut self, args: &[&str]) -> ShellResult {
        let [name] = args else {
            return Err("usage: pin <index>   (pins all non-leaf levels)".into());
        };
        let tree = self.tree(name)?;
        let pinned = tree.pin_upper_levels(1).map_err(|e| e.to_string())?;
        Ok(format!("index {name}: pinned {pinned} directory pages"))
    }

    fn cmd_knn(&mut self, args: &[&str]) -> ShellResult {
        let [name, x, y, k] = args else {
            return Err("usage: knn <index> <x> <y> <k>".into());
        };
        let q = Point2::new([
            x.parse().map_err(|_| format!("bad x {x:?}"))?,
            y.parse().map_err(|_| format!("bad y {y:?}"))?,
        ]);
        let k: usize = k.parse().map_err(|_| format!("bad k {k:?}"))?;
        let tree = self.tree(name)?;
        tree.pool().reset_stats();
        let hits = tree.knn(&q, k).map_err(|e| e.to_string())?;
        let mut out = String::new();
        for (i, h) in hits.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>3}. #{:<8} at {:?}  dist {:.4}",
                i + 1,
                h.entry.oid,
                h.entry.point().coords(),
                h.dist2.sqrt()
            );
        }
        let _ = write!(out, "({} disk accesses)", tree.pool().buffer_stats().misses);
        Ok(out)
    }

    fn cmd_range(&mut self, args: &[&str]) -> ShellResult {
        let [name, x1, y1, x2, y2] = args else {
            return Err("usage: range <index> <x1> <y1> <x2> <y2>".into());
        };
        let parse = |s: &str| -> Result<f64, String> {
            s.parse().map_err(|_| format!("bad coordinate {s:?}"))
        };
        let window = Rect2::spanning(
            Point2::new([parse(x1)?, parse(y1)?]),
            Point2::new([parse(x2)?, parse(y2)?]),
        );
        let tree = self.tree(name)?;
        tree.pool().reset_stats();
        let hits = tree.range_query(&window).map_err(|e| e.to_string())?;
        Ok(format!(
            "{} objects in {:?} ({} disk accesses)",
            hits.len(),
            window,
            tree.pool().buffer_stats().misses
        ))
    }

    fn cmd_cpq(&mut self, args: &[&str]) -> ShellResult {
        let [a, b, k, rest @ ..] = args else {
            return Err("usage: cpq <indexA> <indexB> <k> [exh|sim|std|heap|evn|sml|bas]".into());
        };
        let k: usize = k.parse().map_err(|_| format!("bad k {k:?}"))?;
        let ta = self.tree(a)?;
        let tb = self.tree(b)?;
        ta.pool().reset_stats();
        tb.pool().reset_stats();
        let label = rest.first().copied().unwrap_or("heap");
        let out = match label {
            "exh" | "sim" | "std" | "heap" | "naive" => {
                let alg = match label {
                    "exh" => Algorithm::Exhaustive,
                    "sim" => Algorithm::Simple,
                    "std" => Algorithm::SortedDistances,
                    "naive" => Algorithm::Naive,
                    _ => Algorithm::Heap,
                };
                k_closest_pairs(ta, tb, k, alg, &CpqConfig::paper()).map_err(|e| e.to_string())?
            }
            "evn" | "sml" | "bas" => {
                let traversal = match label {
                    "evn" => Traversal::Even,
                    "bas" => Traversal::Basic,
                    _ => Traversal::Simultaneous,
                };
                let cfg = IncrementalConfig {
                    traversal,
                    ..Default::default()
                };
                k_closest_pairs_incremental(ta, tb, k, &cfg).map_err(|e| e.to_string())?
            }
            other => return Err(format!("unknown algorithm {other:?}")),
        };
        let mut text = String::new();
        for (i, pair) in out.pairs.iter().take(10).enumerate() {
            let _ = writeln!(
                text,
                "{:>3}. {a}#{:<8} <-> {b}#{:<8} dist {:.4}",
                i + 1,
                pair.p.oid,
                pair.q.oid,
                pair.distance()
            );
        }
        if out.pairs.len() > 10 {
            let _ = writeln!(text, "  ... and {} more", out.pairs.len() - 10);
        }
        let _ = write!(
            text,
            "{} via {label}: {} disk accesses, {} node pairs, peak queue {}",
            if out.pairs.is_empty() {
                "no pairs"
            } else {
                "done"
            },
            out.stats.disk_accesses(),
            out.stats.node_pairs_processed,
            out.stats.queue_peak
        );
        Ok(text)
    }

    fn cmd_self(&mut self, args: &[&str]) -> ShellResult {
        let [name, k] = args else {
            return Err("usage: self <index> <k>".into());
        };
        let k: usize = k.parse().map_err(|_| format!("bad k {k:?}"))?;
        let tree = self.tree(name)?;
        tree.pool().reset_stats();
        let out = self_closest_pairs(tree, k, Algorithm::Heap, &CpqConfig::paper())
            .map_err(|e| e.to_string())?;
        let best = out
            .pairs
            .first()
            .map(|p| {
                format!(
                    "closest: #{} <-> #{} at {:.4}",
                    p.p.oid,
                    p.q.oid,
                    p.distance()
                )
            })
            .unwrap_or_else(|| "no pairs".into());
        Ok(format!(
            "{} self pairs; {best} ({} disk accesses)",
            out.pairs.len(),
            out.stats.disk_accesses()
        ))
    }

    fn cmd_semi(&mut self, args: &[&str]) -> ShellResult {
        let [a, b] = args else {
            return Err("usage: semi <indexA> <indexB>".into());
        };
        let ta = self.tree(a)?;
        let tb = self.tree(b)?;
        ta.pool().reset_stats();
        tb.pool().reset_stats();
        let out = semi_closest_pairs(ta, tb).map_err(|e| e.to_string())?;
        let mean = if out.pairs.is_empty() {
            0.0
        } else {
            out.pairs.iter().map(|p| p.distance()).sum::<f64>() / out.pairs.len() as f64
        };
        Ok(format!(
            "matched {} objects of {a} to nearest in {b}; mean distance {mean:.4} ({} disk accesses)",
            out.pairs.len(),
            out.stats.disk_accesses()
        ))
    }

    fn cmd_stats(&mut self, args: &[&str]) -> ShellResult {
        let [name] = args else {
            return Err("usage: stats <index>".into());
        };
        let tree = self.tree(name)?;
        let levels = tree.level_stats().map_err(|e| e.to_string())?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "index {name}: {} points, height {}, M = {}, variant {}",
            tree.len(),
            tree.height(),
            tree.params().max_entries,
            tree.params().split_policy.label()
        );
        for s in levels.iter().rev() {
            let _ = writeln!(
                out,
                "  level {}: {:>7} nodes, avg occupancy {:>5.1}, avg extent {:.2} x {:.2}",
                s.level, s.nodes, s.avg_occupancy, s.avg_extent[0], s.avg_extent[1]
            );
        }
        let b = tree.pool().buffer_stats();
        let _ = write!(
            out,
            "  buffer: {} frames, {} pinned, {:.1}% hit rate since last reset",
            tree.pool().capacity(),
            tree.pool().pinned_pages(),
            100.0 * b.hit_rate()
        );
        Ok(out)
    }

    fn cmd_validate(&mut self, args: &[&str]) -> ShellResult {
        let [name] = args else {
            return Err("usage: validate <index>".into());
        };
        let tree = self.tree(name)?;
        let report = tree.validate().map_err(|e| e.to_string())?;
        if report.is_valid() {
            Ok(format!(
                "index {name} valid: {} nodes, {} leaves, {} points",
                report.nodes, report.leaves, report.points
            ))
        } else {
            Err(format!(
                "index {name} INVALID:\n{}",
                report.violations.join("\n")
            ))
        }
    }
}

const HELP: &str = r#"
commands:
  create <name> uniform|clustered|real [n] [seed]   generate a dataset
  index <dataset> [rstar|quadratic|linear] [bulk]   build an R-tree over it
  list                                              show datasets and indexes
  buffer <index> <frames>                           set the LRU buffer size
  pin <index>                                       pin non-leaf levels in the buffer
  knn <index> <x> <y> <k>                           k nearest neighbors
  range <index> <x1> <y1> <x2> <y2>                 window query
  cpq <indexA> <indexB> <k> [exh|sim|std|heap|evn|sml|bas]
                                                    k closest pairs
  self <index> <k>                                  self-CPQ
  semi <indexA> <indexB>                            all nearest neighbors
  stats <index>                                     level statistics + buffer
  validate <index>                                  structural invariant check
  help                                              this text
  quit / exit                                       leave
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn run(shell: &mut Shell, cmd: &str) -> String {
        shell
            .execute(cmd)
            .unwrap_or_else(|e| panic!("{cmd:?} failed: {e}"))
    }

    #[test]
    fn full_session() {
        let mut sh = Shell::new();
        run(&mut sh, "create a uniform 800 1");
        run(&mut sh, "create b clustered 600 2");
        assert!(run(&mut sh, "index a").contains("height"));
        assert!(run(&mut sh, "index b quadratic").contains("quadratic"));
        assert!(run(&mut sh, "list").contains("indexes:"));
        run(&mut sh, "buffer a 32");
        let knn = run(&mut sh, "knn a 500 500 3");
        assert!(knn.contains("1."), "knn output: {knn}");
        let range = run(&mut sh, "range a 0 0 100 100");
        assert!(range.contains("objects in"));
        let cpq = run(&mut sh, "cpq a b 5 heap");
        assert!(cpq.contains("disk accesses"), "{cpq}");
        let cpq = run(&mut sh, "cpq a b 2 sml");
        assert!(cpq.contains("via sml"));
        assert!(run(&mut sh, "self a 3").contains("self pairs"));
        assert!(run(&mut sh, "semi a b").contains("matched 800"));
        assert!(run(&mut sh, "stats a").contains("level"));
        assert!(run(&mut sh, "validate a").contains("valid"));
        assert!(run(&mut sh, "pin a").contains("pinned"));
        assert!(run(&mut sh, "help").contains("commands"));
        assert!(run(&mut sh, "").is_empty());
    }

    #[test]
    fn cpq_results_match_direct_api() {
        let mut sh = Shell::new();
        run(&mut sh, "create a uniform 400 7");
        run(&mut sh, "create b uniform 400 8");
        run(&mut sh, "index a");
        run(&mut sh, "index b");
        let via_shell = run(&mut sh, "cpq a b 1 std");
        // Compute the same pair directly.
        let a = uniform(400, 7);
        let b = uniform(400, 8);
        let best = crate::core::brute::k_closest_pairs_brute(&a.indexed(), &b.indexed(), 1);
        let expect = format!("{:.4}", best[0].distance());
        assert!(
            via_shell.contains(&expect),
            "shell said {via_shell:?}, expected distance {expect}"
        );
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut sh = Shell::new();
        assert!(sh.execute("nonsense").is_err());
        assert!(sh.execute("index missing").is_err());
        assert!(sh.execute("knn missing 0 0 1").is_err());
        assert!(sh.execute("create x uniform notanumber").is_err());
        assert!(sh.execute("cpq a b xyz").is_err());
        sh.execute("create a uniform 50 1").unwrap();
        sh.execute("index a").unwrap();
        assert!(sh.execute("cpq a a 1 bogus").is_err());
    }

    #[test]
    fn variants_and_bulk() {
        let mut sh = Shell::new();
        run(&mut sh, "create a uniform 300 3");
        for v in ["rstar", "quadratic", "linear"] {
            assert!(run(&mut sh, &format!("index a {v}")).contains(v));
            assert!(run(&mut sh, "validate a").contains("valid"));
        }
        assert!(run(&mut sh, "index a bulk").contains("bulk-loaded"));
        assert!(run(&mut sh, "validate a").contains("valid"));
    }
}
