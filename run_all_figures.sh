#!/bin/bash
# Runs every figure and ablation binary at full paper scale, writing CSV to
# results/ and a combined log.
set -u
cd "$(dirname "$0")"
mkdir -p results
for b in fig02_ties fig03_heights fig04_onecp fig05_overlap fig06_buffer \
         fig07_kcp fig08_overlap_k fig09_buffer_k fig10_incremental \
         ablation_kpruning ablation_buffer_policy ablation_tree_build ablation_sorting \
         ablation_rtree_variant ablation_pinning costmodel_validation; do
  echo "=== $b (started $(date +%T)) ==="
  ./target/release/$b "$@" || echo "!!! $b FAILED"
done
echo "=== all figures done $(date +%T) ==="
